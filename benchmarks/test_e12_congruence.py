"""E12 — ablation of the r-congruence deduplication (Section 6's
definition of insertion into ``Q_r``).

With congruence, Prim's queue holds at most one entry per frontier
vertex; without it every derived ``new_g`` fact queues up and must be
popped and rejected individually.  The result is identical; the queue
traffic is not, and on dense graphs the time gap follows.
"""

from __future__ import annotations

import random


from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.core.greedy_engine import GreedyStageEngine
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database
from repro.workloads import random_connected_graph

SIZES = [40, 80, 160, 320]
EDGE_FACTOR = 6  # denser graphs make the queue-traffic gap visible

_PROGRAM = parse_program(texts.PRIM)


def _workload(n: int):
    nodes, edges = random_connected_graph(n, extra_edges=(EDGE_FACTOR - 1) * n, seed=n)
    return nodes, symmetric_edges(edges)


def _run(use_congruence):
    def op(payload):
        nodes, arcs = payload
        engine = GreedyStageEngine(
            _PROGRAM, rng=random.Random(0), use_congruence=use_congruence
        )
        db = Database()
        db.assert_all("g", arcs)
        db.assert_fact("source", (nodes[0],))
        engine.run(db)
        structure = engine.rql_structures[("prm", 4)]
        return (
            sum(f[2] for f in db.facts("prm", 4)),
            structure.stats.retrieved,
        )

    return op


def test_e12_congruence_ablation(benchmark):
    with_congruence = sweep("prim/congruent", SIZES, _workload, _run(True), repeats=1)
    without = sweep("prim/flat-queue", SIZES, _workload, _run(False), repeats=1)
    rows = []
    for w, wo in zip(with_congruence.points, without.points):
        assert w.payload[0] == wo.payload[0], "MSTs differ"
        rows.append(
            [w.size, w.payload[1], wo.payload[1], w.seconds, wo.seconds]
        )
    print_experiment(
        "E12  r-congruence ablation on Prim",
        "congruence bounds pops by ~n; the flat queue pops ~2e entries",
        ["n", "pops (congruent)", "pops (flat)", "s (congruent)", "s (flat)"],
        rows,
    )
    # The congruent queue pops at most n + rejected-per-vertex entries;
    # the flat queue pops every derived new_g fact (~2e = 12n here).
    for row in rows:
        n, pops_congruent, pops_flat = row[0], row[1], row[2]
        assert pops_congruent < pops_flat
        assert pops_flat > 4 * pops_congruent
    payload = _workload(max(SIZES))
    benchmark(lambda: _run(True)(payload))


def test_e12_flat_queue_baseline(benchmark):
    payload = _workload(max(SIZES))
    benchmark(lambda: _run(False)(payload))
