"""E11 — extension: declarative Dijkstra.

Not in the paper, but exactly the family its conclusion invites: the
frontier relation plays Prim's ``new_g``, the r-congruence per target
vertex acts as a declarative decrease-key, and ``choice(Y, I)`` settles
each vertex once.  We check distances against the heap baseline and that
the runtime is near-linear in the edge count.
"""

from __future__ import annotations


from benchmarks.conftest import nlogn, print_experiment, shape_rows
from repro.baselines import dijkstra_distances as procedural_dijkstra
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.workloads import random_connected_graph

SIZES = [50, 100, 200, 400]
EDGE_FACTOR = 3

_COMPILED = compile_program(texts.DIJKSTRA)


def _workload(n: int):
    nodes, edges = random_connected_graph(n, extra_edges=(EDGE_FACTOR - 1) * n, seed=n)
    return nodes, edges, symmetric_edges(edges)


def _declarative(payload):
    nodes, _, arcs = payload
    db = _COMPILED.run(facts={"g": arcs, "source": [(nodes[0],)]}, seed=0)
    return dict((f[0], f[1]) for f in db.facts("dist", 3))


def test_e11_dijkstra_shape(benchmark):
    declarative = sweep("dijkstra/rql", SIZES, _workload, _declarative, repeats=2)
    procedural = sweep(
        "dijkstra/heap",
        SIZES,
        _workload,
        lambda p: procedural_dijkstra(p[1], p[0][0]),
        repeats=2,
    )
    for d, p in zip(declarative.points, procedural.points):
        assert d.payload == p.payload, "distance maps differ"
    headers, rows = shape_rows(declarative, lambda n: nlogn(EDGE_FACTOR * n), "e log e")
    for row, p in zip(rows, procedural.points):
        row.append(p.seconds)
        row.append(row[1] / max(p.seconds, 1e-9))
    print_experiment(
        "E11  Dijkstra (extension)",
        "same frontier congruence as Prim: ~e log e, constant-factor gap",
        headers + ["procedural s", "decl/proc"],
        rows,
    )
    assert declarative.exponent() < 1.7
    payload = _workload(max(SIZES))
    benchmark(lambda: _declarative(payload))


def test_e11_dijkstra_procedural_baseline(benchmark):
    payload = _workload(max(SIZES))
    benchmark(lambda: procedural_dijkstra(payload[1], payload[0][0]))
