"""E3 — Section 6, "Matching: Complexity of Example 7".

Paper claim: ``O(e log e)`` — arcs are stored in a priority queue, the
least arc is popped, checked against the choice conditions, and moved to
``L`` or ``R``.  We sweep the arc count on random bipartite graphs.
"""

from __future__ import annotations


from benchmarks.conftest import nlogn, print_experiment, shape_rows
from repro.baselines import greedy_matching
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.workloads import random_bipartite_arcs

SIZES = [200, 400, 800, 1600]  # arc counts

_COMPILED = compile_program(texts.MATCHING)


def _workload(e: int):
    n_left = max(4, e // 8)
    return random_bipartite_arcs(n_left, n_left, 8, seed=e)


def _declarative(arcs):
    db = _COMPILED.run(facts={"g": arcs}, seed=0)
    return sum(f[2] for f in db.facts("matching", 4))


def test_e3_matching_shape(benchmark):
    declarative = sweep("matching/rql", SIZES, _workload, _declarative, repeats=2)
    procedural = sweep(
        "matching/heap", SIZES, _workload, lambda arcs: greedy_matching(arcs)[1], repeats=2
    )
    for d, p in zip(declarative.points, procedural.points):
        assert d.payload == p.payload, "greedy matchings differ"
    headers, rows = shape_rows(declarative, nlogn, "e log e")
    for row, p in zip(rows, procedural.points):
        row.append(p.seconds)
        row.append(row[1] / max(p.seconds, 1e-9))
    print_experiment(
        "E3  Matching (Example 7)",
        "O(e log e): queue of arcs, pop least, check choice conditions",
        headers + ["procedural s", "decl/proc"],
        rows,
    )
    assert declarative.exponent() < 1.6
    arcs = _workload(max(SIZES))
    benchmark(lambda: _declarative(arcs))


def test_e3_matching_procedural_baseline(benchmark):
    arcs = _workload(max(SIZES))
    benchmark(lambda: greedy_matching(arcs)[1])
