"""E5 — Lemma 2 / Theorem 2: polynomial data complexity of the Choice
Fixpoint.

"The data complexity of computing a stable model for P is polynomial
time" (while computing stable models in general is NP-hard).  We sweep
the ``takes`` relation of Example 1 and fit the exponent: it must be a
small polynomial, not exponential growth.
"""

from __future__ import annotations



from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.workloads import random_takes

SIZES = [8, 16, 32, 64]  # students (and courses)

_COMPILED = compile_program(texts.EXAMPLE1_ASSIGNMENT, engine="choice")


def _workload(n: int):
    return [(s, c) for s, c, _ in random_takes(n, n, 4, seed=n)]


def _solve(takes):
    db = _COMPILED.run(facts={"takes": takes}, seed=0)
    return len(db.relation("a_st", 2))


def test_e5_choice_fixpoint_polynomial(benchmark):
    result = sweep("choice-fixpoint", SIZES, _workload, _solve, repeats=2)
    rows = [
        [p.size, 4 * p.size, p.seconds, p.payload] for p in result.points
    ]
    print_experiment(
        "E5  Choice Fixpoint (Lemma 2)",
        "polynomial data complexity for computing one stable model",
        ["students", "takes facts", "seconds", "assigned"],
        rows,
    )
    exponent = result.exponent()
    assert exponent < 3.5, f"super-polynomial-looking growth: {exponent:.2f}"
    # Doubling input must not explode: consecutive ratios bounded.
    times = result.times
    for a, b in zip(times, times[1:]):
        assert b / max(a, 1e-9) < 16
    takes = _workload(SIZES[-1])
    benchmark(lambda: _solve(takes))
