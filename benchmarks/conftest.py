"""Shared helpers for the benchmark harness.

Every module regenerates one experiment from DESIGN.md's index (the
paper's Section 6 complexity analyses and the semantics-level claims).
Shape assertions use generous brackets: the point is who wins and how the
curves bend, not absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Tables print with ``-s``; without it they are captured but the shape
assertions still run.
"""

from __future__ import annotations

import math

from repro.bench.reporting import format_table
from repro.bench.runner import SweepResult


def print_experiment(
    title: str,
    claim: str,
    headers,
    rows,
) -> None:
    """Emit one paper-style experiment block."""
    print()
    print(f"== {title}")
    print(f"   paper claim: {claim}")
    print(format_table(headers, rows))


def shape_rows(result: SweepResult, normalizer, norm_label: str):
    """Rows: size, time, time/normalizer — flat last column means the
    normaliser matches the complexity."""
    rows = []
    for point in result.points:
        rows.append(
            [point.size, point.seconds, point.seconds / normalizer(point.size)]
        )
    return ["size", "seconds", f"seconds / {norm_label}"], rows


def nlogn(n: int) -> float:
    return n * math.log2(max(n, 2))
