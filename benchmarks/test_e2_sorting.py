"""E2 — Section 6, "Sorting: Complexity of Example 5".

Paper claim: ``O(n log n)`` — "although the program expresses an
'insertion sort' like algorithm, the fixpoint algorithm implements a
'heap-sort'".  We sweep the relation size, check the output is sorted,
and compare against the procedural heap-sort baseline.
"""

from __future__ import annotations


from benchmarks.conftest import nlogn, print_experiment, shape_rows
from repro.baselines import heapsort
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.workloads import random_costed_relation

SIZES = [250, 500, 1000, 2000]

_COMPILED = compile_program(texts.SORTING)


def _declarative(items):
    db = _COMPILED.run(facts={"p": items}, seed=0)
    rows = sorted((f for f in db.facts("sp", 3) if f[2] > 0), key=lambda f: f[2])
    return [f[1] for f in rows]


def test_e2_sorting_shape(benchmark):
    declarative = sweep(
        "sort/rql",
        SIZES,
        lambda n: random_costed_relation(n, seed=n),
        _declarative,
        repeats=2,
    )
    procedural = sweep(
        "sort/heap",
        SIZES,
        lambda n: [c for _, c in random_costed_relation(n, seed=n)],
        heapsort,
        repeats=2,
    )
    for d, p in zip(declarative.points, procedural.points):
        assert d.payload == p.payload, "declarative sort output differs from heapsort"
    headers, rows = shape_rows(declarative, nlogn, "n log n")
    for row, p in zip(rows, procedural.points):
        row.append(p.seconds)
        row.append(row[1] / max(p.seconds, 1e-9))
    print_experiment(
        "E2  Sorting (Example 5)",
        "O(n log n): the fixpoint implements a heap-sort",
        headers + ["procedural s", "decl/proc"],
        rows,
    )
    assert declarative.exponent() < 1.6  # n log n-ish, not quadratic
    items = random_costed_relation(max(SIZES), seed=0)
    benchmark(lambda: _declarative(items))


def test_e2_sorting_procedural_baseline(benchmark):
    values = [c for _, c in random_costed_relation(max(SIZES), seed=0)]
    benchmark(lambda: heapsort(values))
