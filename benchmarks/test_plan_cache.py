"""Plan-cache ablation — cached delta-first plans vs per-call planning.

The E7 transitive-closure sweep fires the recursive rule once per
differential round; with the cache off, every firing re-runs the greedy
planner and recompiles the bound/free splits.  Compilation cost is per
firing (Θ(n) on a chain) instead of per rule, so the cached engine must
win on wall clock, and its ``plans_compiled`` counter must stay constant
while the uncached one grows with input size.
"""

from __future__ import annotations

from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.storage.database import Database

TC = parse_program(
    """
    path(X, Y) <- edge(X, Y).
    path(X, Y) <- path(X, Z), edge(Z, Y).
    """
)

SIZES = [20, 40, 80]


def _chain(n: int):
    return [(i, i + 1) for i in range(n)]


def _run(cache_plans: bool):
    def op(edges):
        db = Database()
        db.assert_all("edge", edges)
        engine = SeminaiveEngine(TC, cache_plans=cache_plans)
        engine.run(db)
        return len(db.relation("path", 2)), engine.stats.plans_compiled

    return op


def test_plan_cache_beats_per_call_planning(benchmark):
    cached = sweep("tc/cached-plans", SIZES, _chain, _run(True), repeats=3)
    uncached = sweep("tc/per-call-plans", SIZES, _chain, _run(False), repeats=3)
    rows = []
    for c, u in zip(cached.points, uncached.points):
        assert c.payload[0] == u.payload[0]  # identical models
        rows.append(
            [c.size, c.seconds, u.seconds, u.seconds / max(c.seconds, 1e-9),
             c.payload[1], u.payload[1]]
        )
    print_experiment(
        "Plan cache ablation (seminaive transitive closure on a path)",
        "compile once per (rule, delta occurrence) vs re-plan every firing",
        ["chain length", "cached s", "uncached s", "speedup",
         "plans (cached)", "plans (uncached)"],
        rows,
    )
    # Shape: cached compilations are a constant of the program (2 rule
    # bodies + 1 delta variant); uncached compilations grow with the
    # rounds, i.e. with input size.
    cached_compiles = [p.payload[1] for p in cached.points]
    uncached_compiles = [p.payload[1] for p in uncached.points]
    assert cached_compiles == [3] * len(SIZES)
    assert uncached_compiles[-1] > uncached_compiles[0] > 3
    # Wall clock: over the whole sweep the cache must win outright.
    # (Per-point margins shrink as evaluation dominates at large n, so
    # the aggregate is the noise-robust assertion.)
    assert sum(cached.times) < sum(uncached.times)
    edges = _chain(max(SIZES))
    benchmark(lambda: _run(True)(edges))
