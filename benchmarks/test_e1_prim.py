"""E1 — Section 6, "Prim's Algorithm: Complexity of Example 4".

Paper claim: the (R, Q, L) implementation of the declarative Prim program
runs in ``O(e log e)``, "comparable to the classical complexity of
``O(e log n)``".  We sweep the edge count on random connected graphs and
check (a) the declarative and procedural trees agree, (b) the fitted
log–log exponent of the declarative runtime is near-linear in ``e`` —
far from the quadratic a naive evaluation would show.
"""

from __future__ import annotations


from benchmarks.conftest import nlogn, print_experiment, shape_rows
from repro.baselines import prim_mst as procedural_prim
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.workloads import random_connected_graph

SIZES = [50, 100, 200, 400]
EDGE_FACTOR = 3

_COMPILED = compile_program(texts.PRIM)


def _workload(n: int):
    nodes, edges = random_connected_graph(n, extra_edges=(EDGE_FACTOR - 1) * n, seed=n)
    return nodes, edges, symmetric_edges(edges)


def _declarative(payload):
    nodes, _, arcs = payload
    db = _COMPILED.run(facts={"g": arcs, "source": [(nodes[0],)]}, seed=0)
    return sum(f[2] for f in db.facts("prm", 4))


def _procedural(payload):
    nodes, edges, _ = payload
    return procedural_prim(edges, nodes[0])[1]


def test_e1_prim_shape(benchmark):
    declarative = sweep("prim/rql", SIZES, _workload, _declarative, repeats=2)
    procedural = sweep("prim/heap", SIZES, _workload, _procedural, repeats=2)
    for d, p in zip(declarative.points, procedural.points):
        assert d.payload == p.payload, "declarative and procedural MSTs differ"
    headers, rows = shape_rows(declarative, lambda n: nlogn(EDGE_FACTOR * n), "e log e")
    for row, p in zip(rows, procedural.points):
        row.append(p.seconds)
        row.append(row[1] / max(p.seconds, 1e-9))
    print_experiment(
        "E1  Prim (Example 4)",
        "declarative O(e log e) ~ procedural O(e log n); same tree",
        headers + ["procedural s", "decl/proc"],
        rows,
    )
    # Shape: near-linear in e (n log n fits < 1.5); naive would be ~2.
    assert declarative.exponent() < 1.7
    payload = _workload(max(SIZES))
    benchmark(lambda: _declarative(payload))


def test_e1_prim_procedural_baseline(benchmark):
    payload = _workload(max(SIZES))
    benchmark(lambda: _procedural(payload))
