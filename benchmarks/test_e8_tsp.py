"""E8 — Section 5, "Computation of Sub-Optimals": the greedy TSP chain.

The paper's point is a fast declarative approximation to an NP-hard
problem: the chain must (a) be produced in low-polynomial time over
complete graphs (e = n(n-1)), (b) be Hamiltonian, (c) match the
procedural nearest-neighbour comparator.
"""

from __future__ import annotations

import itertools
import random


from benchmarks.conftest import print_experiment
from repro.baselines import nearest_neighbor_chain
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts

SIZES = [8, 12, 16, 24]  # vertices; arcs = n(n-1)

_COMPILED = compile_program(texts.TSP_GREEDY)


def _workload(n: int):
    rng = random.Random(n)
    nodes = [f"n{i}" for i in range(n)]
    costs = rng.sample(range(1, 10 * n * n), n * (n - 1))
    return [(a, b, costs.pop()) for a, b in itertools.permutations(nodes, 2)]


def _declarative(arcs):
    db = _COMPILED.run(facts={"g": arcs}, seed=0)
    chain = [f for f in db.facts("tsp_chain", 4)]
    return len(chain), sum(f[2] for f in chain)


def test_e8_tsp_chain(benchmark):
    declarative = sweep("tsp/rql", SIZES, _workload, _declarative, repeats=1)
    rows = []
    for point, n in zip(declarative.points, SIZES):
        arcs = _workload(n)
        length, cost = point.payload
        _, procedural_cost = nearest_neighbor_chain(arcs)
        assert length == n - 1, "not a Hamiltonian path"
        assert cost == procedural_cost
        rows.append([n, n * (n - 1), point.seconds, cost])
    print_experiment(
        "E8  Greedy TSP chain (Section 5)",
        "fast sub-optimal Hamiltonian path; equals nearest-neighbour",
        ["n", "arcs", "seconds", "chain cost"],
        rows,
    )
    # Low-polynomial in the arc count (e = n^2): exponent over n stays
    # well below cubic-in-n.
    assert declarative.exponent() < 3.0
    arcs = _workload(max(SIZES))
    benchmark(lambda: _declarative(arcs))
