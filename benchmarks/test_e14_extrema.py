"""E14 — extrema pushdown vs saturate-then-filter.

The premappable shortest-path program on a layered DAG derives one
distance fact per (node, path-sum) pair under the "post" policy — the
whole dominated fixpoint is saturated before the group-by filter runs —
while the "pushdown" policy keeps only the current-best distance per
node, pruning dominated facts on insert and retracting displaced ones
from the delta.  The dominated fact count grows with graph depth, so the
speedup widens with size; the acceptance floor here is a 2x mean.
"""

from __future__ import annotations

from benchmarks.conftest import print_experiment
from repro.bench.regression import _extrema_graph
from repro.bench.runner import sweep
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.programs import texts
from repro.storage.database import Database

SHORTEST = parse_program(texts.SHORTEST_PATH)

SIZES = [24, 48, 96]


def _run(extrema: str):
    def op(edges):
        db = Database()
        db.assert_all("g", edges)
        db.assert_all("source", [(0,)])
        SeminaiveEngine(SHORTEST, extrema=extrema).run(db)
        return sorted(db.facts("dist", 2))

    return op


def test_e14_pushdown_vs_post(benchmark):
    pushdown = sweep("extrema/pushdown", SIZES, _extrema_graph, _run("pushdown"), repeats=2)
    post = sweep("extrema/post", SIZES, _extrema_graph, _run("post"), repeats=2)
    rows = []
    speedups = []
    for pu, po in zip(pushdown.points, post.points):
        assert pu.payload == po.payload  # model-for-model under both policies
        speedup = po.seconds / max(pu.seconds, 1e-9)
        speedups.append(speedup)
        rows.append([pu.size, pu.seconds, po.seconds, speedup])
    print_experiment(
        "E14 Extrema pushdown (premappable shortest path on a layered DAG)",
        "dominated-fact saturation vs per-group best table; gap widens with depth",
        ["nodes", "pushdown s", "post s", "post/pushdown"],
        rows,
    )
    assert sum(speedups) / len(speedups) >= 2.0
    assert speedups[-1] > speedups[0]
    edges = _extrema_graph(max(SIZES))
    benchmark(lambda: _run("pushdown")(edges))


def test_e14_post_baseline(benchmark):
    edges = _extrema_graph(max(SIZES))
    benchmark(lambda: _run("post")(edges))
