"""E6 — ablation: the (R, Q, L) structure vs candidate recomputation.

The Section 6 structure is the paper's enabling technology: without it,
the Alternating Stage-Choice Fixpoint re-evaluates the ``next`` rule's
body at every stage — ``O(n)`` stages × ``O(n)`` candidates = quadratic,
even with seminaive flat rules.  The sorting program makes the contrast
purest (no graph structure): rql must fit ~``n log n``, basic ~``n²``,
and the rql/basic gap must widen with n.
"""

from __future__ import annotations


from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.workloads import random_costed_relation

SIZES = [50, 100, 200, 400]

_COMPILED = compile_program(texts.SORTING)


def _run(engine):
    def op(items):
        db = _COMPILED.run(facts={"p": items}, seed=0, engine=engine)
        return len(db.relation("sp", 3))

    return op


def test_e6_rql_vs_basic_ablation(benchmark):
    make = lambda n: random_costed_relation(n, seed=n)
    rql = sweep("sort/rql", SIZES, make, _run("rql"), repeats=2)
    basic = sweep("sort/basic", SIZES, make, _run("basic"), repeats=2)
    rows = []
    speedups = []
    for r, b in zip(rql.points, basic.points):
        assert r.payload == b.payload
        speedup = b.seconds / max(r.seconds, 1e-9)
        speedups.append(speedup)
        rows.append([r.size, r.seconds, b.seconds, speedup])
    print_experiment(
        "E6  (R,Q,L) ablation on Example 5",
        "rql ~ n log n, candidate recomputation ~ n^2; gap widens with n",
        ["n", "rql s", "basic s", "basic/rql"],
        rows,
    )
    assert basic.exponent() > rql.exponent() + 0.3
    assert speedups[-1] > speedups[0]
    items = make(max(SIZES))
    benchmark(lambda: _run("rql")(items))


def test_e6_basic_engine_baseline(benchmark):
    items = random_costed_relation(max(SIZES), seed=0)
    benchmark(lambda: _run("basic")(items))
