"""E13 — online maintenance vs recompute-from-scratch.

The paper's conclusion looks toward "deploying [these results] in actual
systems"; a system maintains its greedy solutions as facts arrive.  The
(R, Q, L) state makes each update incremental: absorb the new candidates,
resume the pop loop.  This experiment feeds a stream of edge batches to
an online Prim and compares the total time against re-running from
scratch after every batch.
"""

from __future__ import annotations

import random
import time


from benchmarks.conftest import print_experiment
from repro.core.greedy_engine import GreedyStageEngine
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database
from repro.workloads import random_connected_graph

PROGRAM = parse_program(texts.PRIM)
BATCHES = 20


def _edge_stream(n: int):
    nodes, edges = random_connected_graph(n, extra_edges=n, seed=n)
    base = edges[: len(edges) // 2]
    rest = edges[len(edges) // 2 :]
    step = max(1, len(rest) // BATCHES)
    batches = [rest[i : i + step] for i in range(0, len(rest), step)]
    return nodes, base, batches


def _online(nodes, base, batches):
    engine = GreedyStageEngine(PROGRAM, rng=random.Random(0))
    db = Database()
    db.assert_all("g", symmetric_edges(base))
    db.assert_fact("source", (nodes[0],))
    engine.run(db)
    for batch in batches:
        engine.extend({"g": symmetric_edges(batch)})
    return len(db.relation("prm", 4))


def _from_scratch(nodes, base, batches):
    edges = list(base)
    size = 0
    for batch in batches + [[]]:
        edges.extend(batch)
        engine = GreedyStageEngine(PROGRAM, rng=random.Random(0))
        db = Database()
        db.assert_all("g", symmetric_edges(edges))
        db.assert_fact("source", (nodes[0],))
        engine.run(db)
        size = len(db.relation("prm", 4))
    return size


def test_e13_online_vs_recompute(benchmark):
    rows = []
    for n in (60, 120, 240):
        payload = _edge_stream(n)
        start = time.perf_counter()
        online_size = _online(*payload)
        online_s = time.perf_counter() - start
        start = time.perf_counter()
        scratch_size = _from_scratch(*payload)
        scratch_s = time.perf_counter() - start
        # Both end spanning the full vertex set (sizes include the seed).
        assert online_size >= n  # n-1 edges + exit fact, some vertices late
        assert scratch_size >= n
        rows.append([n, online_s, scratch_s, scratch_s / max(online_s, 1e-9)])
    print_experiment(
        "E13  Online maintenance (extension)",
        f"{BATCHES} edge batches: resume (R,Q,L) state vs full re-runs",
        ["n", "online s", "recompute s", "recompute/online"],
        rows,
    )
    assert all(row[3] > 2 for row in rows), "online should beat recompute clearly"
    payload = _edge_stream(120)
    benchmark(lambda: _online(*payload))
