"""E10 — Example 6: Huffman trees.

The paper gives no complexity analysis for Huffman, but the program is
its most intricate stage-stratified example (function symbols, a
computed stage, two choice FDs).  The experiment checks optimality (the
weighted path length equals the procedural heap Huffman's) across a
sweep of alphabet sizes and records the declarative/procedural gap.
"""

from __future__ import annotations


from benchmarks.conftest import print_experiment
from repro.baselines import huffman_tree as procedural_huffman
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.workloads import random_frequency_table

SIZES = [8, 12, 18, 26]  # alphabet sizes (feasible pairs grow ~k^2)

_COMPILED = compile_program(texts.HUFFMAN)


def _declarative(freqs):
    db = _COMPILED.run(facts={"letter": freqs}, seed=0)
    return sum(f[1] for f in db.facts("h", 3) if f[2] > 0)


def test_e10_huffman_optimality(benchmark):
    make = lambda k: random_frequency_table(k, seed=k)
    declarative = sweep("huffman/rql", SIZES, make, _declarative, repeats=1)
    rows = []
    for point, k in zip(declarative.points, SIZES):
        freqs = dict(make(k))
        _, optimal = procedural_huffman(freqs)
        assert point.payload == optimal, "suboptimal Huffman tree"
        rows.append([k, point.seconds, point.payload])
    print_experiment(
        "E10  Huffman (Example 6)",
        "declarative tree attains the optimal weighted path length",
        ["symbols", "seconds", "weighted path length"],
        rows,
    )
    freqs = make(max(SIZES))
    benchmark(lambda: _declarative(freqs))


def test_e10_huffman_procedural_baseline(benchmark):
    freqs = dict(random_frequency_table(max(SIZES), seed=max(SIZES)))
    benchmark(lambda: procedural_huffman(freqs))
