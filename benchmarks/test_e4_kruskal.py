"""E4 — Example 8's complexity discussion.

Paper claim: the declarative Kruskal costs ``O(e × n)`` against the
classical ``O(e log e)`` — "the difference is due to the fact that the
classical algorithm 'merges' the smallest component into the 'largest'",
while the declarative ``comp`` relation relabels a whole component per
merge.  The reproduction should show the declarative/procedural gap
*growing* with n (not a constant factor, unlike E1–E3).
"""

from __future__ import annotations


from benchmarks.conftest import print_experiment
from repro.baselines import kruskal_mst as procedural_kruskal
from repro.bench.runner import sweep
from repro.core.compiler import compile_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.workloads import random_connected_graph

SIZES = [12, 18, 27, 40]

_COMPILED = compile_program(texts.KRUSKAL)


def _workload(n: int):
    nodes, edges = random_connected_graph(n, extra_edges=n, seed=n)
    return nodes, edges, symmetric_edges(edges)


def _declarative(payload):
    nodes, _, arcs = payload
    db = _COMPILED.run(
        facts={"g": arcs, "node": [(x,) for x in nodes]}, seed=0
    )
    return sum(f[2] for f in db.facts("kruskal", 4))


def _procedural(payload):
    _, edges, _ = payload
    return procedural_kruskal(edges)[1]


def test_e4_kruskal_shape(benchmark):
    declarative = sweep("kruskal/decl", SIZES, _workload, _declarative, repeats=1)
    procedural = sweep("kruskal/uf", SIZES, _workload, _procedural, repeats=1)
    rows = []
    ratios = []
    for d, p in zip(declarative.points, procedural.points):
        assert d.payload == p.payload, "MST costs differ"
        ratio = d.seconds / max(p.seconds, 1e-9)
        ratios.append(ratio)
        rows.append([d.size, d.seconds, p.seconds, ratio])
    print_experiment(
        "E4  Kruskal (Example 8)",
        "declarative O(e·n) vs procedural O(e log e): gap grows with n",
        ["n", "declarative s", "procedural s", "decl/proc"],
        rows,
    )
    # The gap must GROW with n (superlinear declarative vs ~linear proc).
    assert ratios[-1] > ratios[0]
    # Declarative Kruskal is clearly superlinear (component relabelling).
    assert declarative.exponent() > 1.4
    payload = _workload(SIZES[-1])
    benchmark(lambda: _declarative(payload))


def test_e4_kruskal_procedural_baseline(benchmark):
    payload = _workload(SIZES[-1])
    benchmark(lambda: _procedural(payload))
