"""E7 — seminaive vs naive fixpoint (the "seminaive refinements" the
Section 6 bounds presuppose).

On a path graph of length n, transitive closure derives Θ(n²) facts;
naive evaluation re-derives all of them on each of Θ(n) passes (Θ(n³)
work), while the seminaive deltas touch each derivation once (Θ(n²)).
"""

from __future__ import annotations


from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.datalog.naive import NaiveEngine
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.storage.database import Database

TC = parse_program(
    """
    path(X, Y) <- edge(X, Y).
    path(X, Y) <- path(X, Z), edge(Z, Y).
    """
)

SIZES = [20, 40, 80]


def _chain(n: int):
    return [(i, i + 1) for i in range(n)]


def _run(engine_cls):
    def op(edges):
        db = Database()
        db.assert_all("edge", edges)
        engine = engine_cls(TC)
        engine.run(db)
        return len(db.relation("path", 2))

    return op


def test_e7_seminaive_vs_naive(benchmark):
    semi = sweep("tc/seminaive", SIZES, _chain, _run(SeminaiveEngine), repeats=2)
    naive = sweep("tc/naive", SIZES, _chain, _run(NaiveEngine), repeats=2)
    rows = []
    speedups = []
    for s, n in zip(semi.points, naive.points):
        assert s.payload == n.payload
        speedup = n.seconds / max(s.seconds, 1e-9)
        speedups.append(speedup)
        rows.append([s.size, s.seconds, n.seconds, speedup])
    print_experiment(
        "E7  Seminaive refinement (transitive closure on a path)",
        "naive Θ(n^3) vs seminaive Θ(n^2); speedup grows with n",
        ["chain length", "seminaive s", "naive s", "naive/seminaive"],
        rows,
    )
    assert naive.exponent() > semi.exponent() + 0.4
    assert speedups[-1] > speedups[0]
    edges = _chain(max(SIZES))
    benchmark(lambda: _run(SeminaiveEngine)(edges))


def test_e7_naive_baseline(benchmark):
    edges = _chain(max(SIZES))
    benchmark(lambda: _run(NaiveEngine)(edges))
