"""E9 — Section 7: matroid greedy exactness.

The conclusion connects the greedy programs to matroid theory ("the
program above corresponds to a partition matroid, while Kruskal's
algorithm ... is a graphic matroid").  This experiment checks greedy =
brute-force optimum on random partition and graphic matroids, and times
the greedy (linear scans over an independence oracle) against the
exponential brute force.
"""

from __future__ import annotations

import itertools
import random


from benchmarks.conftest import print_experiment
from repro.bench.runner import sweep
from repro.matroids import (
    GraphicMatroid,
    PartitionMatroid,
    greedy_max_weight,
)

SIZES = [8, 10, 12, 14]  # ground-set sizes (brute force is 2^n)


def _instance(n: int):
    rng = random.Random(n)
    elements = [f"e{i}" for i in range(n)]
    blocks = {e: f"b{rng.randrange(max(2, n // 3))}" for e in elements}
    weights = {e: rng.randrange(1, 1000) for e in elements}
    return PartitionMatroid(blocks, capacities=1), weights


def _greedy(payload):
    matroid, weights = payload
    return sum(weights[e] for e in greedy_max_weight(matroid, weights))


def _brute(payload):
    matroid, weights = payload
    elements = sorted(matroid.ground_set)
    best = 0
    for r in range(len(elements) + 1):
        for subset in itertools.combinations(elements, r):
            if matroid.is_independent(set(subset)):
                best = max(best, sum(weights[e] for e in subset))
    return best


def test_e9_matroid_greedy_exactness(benchmark):
    greedy = sweep("matroid/greedy", SIZES, _instance, _greedy, repeats=2)
    brute = sweep("matroid/brute", SIZES, _instance, _brute, repeats=1)
    rows = []
    for g, b in zip(greedy.points, brute.points):
        assert g.payload == b.payload, "greedy missed the matroid optimum"
        rows.append([g.size, g.seconds, b.seconds, b.seconds / max(g.seconds, 1e-9)])
    print_experiment(
        "E9  Matroid greedy (Section 7)",
        "greedy = optimum on matroids; brute force blows up exponentially",
        ["ground set", "greedy s", "brute-force s", "brute/greedy"],
        rows,
    )
    assert brute.exponent() > greedy.exponent()
    payload = _instance(max(SIZES))
    benchmark(lambda: _greedy(payload))


def test_e9_graphic_matroid_is_kruskal(benchmark):
    """Greedy min-weight basis of the graphic matroid = Kruskal's MST."""
    from repro.baselines import kruskal_mst
    from repro.workloads import random_connected_graph

    _, edges = random_connected_graph(10, extra_edges=10, seed=3)
    weights = {(u, v): c for u, v, c in edges}
    matroid = GraphicMatroid(weights.keys())

    def run():
        from repro.matroids import greedy_min_weight

        basis = greedy_min_weight(matroid, weights)
        return sum(weights[e] for e in basis)

    assert run() == kruskal_mst(edges)[1]
    benchmark(run)
