"""Contrast tests between the literal per-rule choice rewriting and the
predicate-wide reading the engines implement.

The paper's formal rewriting ([Saccà-Zaniolo 1990]) scopes each
functional dependency to one rule's firings; its narrative — and its
claim that Example 4 computes a spanning tree — needs the dependency to
range over the whole head predicate.  These tests pin the difference
down so the design decision stays visible.
"""

from __future__ import annotations


from repro.core.rewriting import (
    CHOSEN_PREFIX,
    rewrite_choice,
    rewrite_program,
)
from repro.datalog.parser import parse_program
from repro.programs import texts


class TestRewritingVariants:
    def test_completion_rule_present_by_default(self):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        rewritten = rewrite_choice(program)
        completions = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and not r.negative
        ]
        assert len(completions) == 1
        # Its body is exactly the head predicate.
        assert completions[0].positive[0].pred == "a_st"

    def test_literal_mode_has_no_completion_rule(self):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        rewritten = rewrite_choice(program, predicate_wide_fd=False)
        completions = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and not r.negative
        ]
        assert completions == []

    def test_both_variants_agree_on_single_rule_programs(self):
        """With a single choice rule and no exit facts of the same
        predicate, the two readings coincide: same rule count minus the
        completion rule, and the guarded rules are identical."""
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        wide = rewrite_choice(program)
        literal = rewrite_choice(program, predicate_wide_fd=False)
        assert len(wide) == len(literal) + 1
        wide_guarded = {str(r) for r in wide.rules if r.negative}
        literal_guarded = {str(r) for r in literal.rules if r.negative}
        assert wide_guarded == literal_guarded

    def test_completion_skipped_when_choice_vars_not_in_head(self):
        """The completion rule is only emitted when the head determines
        every choice variable; otherwise the literal rewriting is kept."""
        program = parse_program("p(X) <- q(X, Y), choice(X, Y).")
        rewritten = rewrite_choice(program)
        completions = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and not r.negative
        ]
        assert completions == []

    def test_prim_rewritings_differ_in_exactly_the_completion(self):
        program = parse_program(texts.PRIM)
        wide = rewrite_program(program)
        literal = rewrite_program(program, predicate_wide_fd=False)
        assert len(wide) == len(literal) + 1
