"""Tests for the specification-level optimiser — the Section 7 story.

The paper's conclusion contrasts the *naive* matching specification (the
optimum as a post-condition over all choice models) with the greedy
program of Example 7, and attributes greedy's exactness or failure to
matroid structure.  These tests mechanise both directions.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.programs import texts
from repro.semantics.optimize import model_objective, optimal_choice_models

MATCH_OBJECTIVE = model_objective("matching", 4, 2)


def _greedy_cost(source, arcs, engine="rql"):
    db = solve_program(source, facts={"g": arcs}, seed=0, engine=engine)
    return sum(f[2] for f in db.facts("matching", 4) if f[3] > 0)


class TestObjective:
    def test_sums_cost_column_skipping_exit_facts(self):
        db = solve_program(
            texts.MATCHING, facts={"g": [("a", "x", 5)]}, seed=0
        )
        assert MATCH_OBJECTIVE(db) == 5  # exit fact (nil,nil,0,0) skipped

    def test_objective_required(self):
        with pytest.raises(ValueError):
            optimal_choice_models(texts.NAIVE_MATCHING, facts={"g": []})


class TestPartitionMatroidGreedyIsExact:
    """One FD (sources used once) = partition matroid: Example 7's greedy
    attains the specification optimum."""

    def test_greedy_matches_enumerated_optimum(self):
        arcs = [("a", "x", 4), ("a", "y", 1), ("b", "x", 2), ("b", "z", 7)]
        naive = """
        matching(nil, nil, 0, 0).
        matching(X, Y, C, I) <- next(I), g(X, Y, C), choice(X, Y).
        """
        best, models = optimal_choice_models(
            naive, facts={"g": arcs}, objective=MATCH_OBJECTIVE
        )
        greedy = _greedy_cost(texts.PARTITION_MATCHING, arcs)
        assert greedy == best == 3  # a->y (1) + b->x (2)

    def test_maximize_direction(self):
        arcs = [("a", "x", 4), ("a", "y", 1)]
        naive = """
        matching(nil, nil, 0, 0).
        matching(X, Y, C, I) <- next(I), g(X, Y, C), choice(X, Y).
        """
        best, _ = optimal_choice_models(
            naive, facts={"g": arcs}, objective=MATCH_OBJECTIVE, maximize=True
        )
        assert best == 4


class TestMatroidIntersectionGreedyCanFail:
    """Two FDs (Example 7 proper) = matroid intersection, not a matroid:
    the greedy model need not be a specification optimum."""

    def test_greedy_misses_the_optimum(self):
        # Greedy takes (a,x,1), blocking both endpoints; the optimum
        # pairs (a,y,2)+(b,x,3) = 5... but greedy's matching has cost 1
        # and is maximal yet SMALLER; with a maximization objective over
        # total weight the gap shows directly.
        arcs = [("a", "x", 10), ("a", "y", 9), ("b", "x", 9)]
        best, _ = optimal_choice_models(
            texts.NAIVE_MATCHING,
            facts={"g": arcs},
            objective=MATCH_OBJECTIVE,
            maximize=True,
        )
        assert best == 18  # (a,y) + (b,x)
        greedy_db = solve_program(
            texts.MAX_MATCHING, facts={"g": arcs}, seed=0
        )
        greedy = sum(f[2] for f in greedy_db.facts("matching", 4) if f[3] > 0)
        assert greedy == 10  # heaviest-first takes (a,x) and gets stuck
        assert greedy < best

    def test_every_optimum_is_a_choice_model(self):
        arcs = [("a", "x", 10), ("a", "y", 9), ("b", "x", 9)]
        _, models = optimal_choice_models(
            texts.NAIVE_MATCHING,
            facts={"g": arcs},
            objective=MATCH_OBJECTIVE,
            maximize=True,
        )
        assert models
        for model in models:
            pairs = {(f[0], f[1]) for f in model.facts("matching", 4) if f[3] > 0}
            assert pairs == {("a", "y"), ("b", "x")}
