"""Well-founded semantics: the contrast the paper draws with stable
models for choice programs."""

from __future__ import annotations

from repro.core.rewriting import rewrite_program
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.semantics.wellfounded import well_founded_model
from repro.storage.database import Database


class TestStratifiedPrograms:
    def test_stratified_program_is_total(self):
        program = parse_program(
            """
            path(X, Y) <- edge(X, Y).
            path(X, Y) <- path(X, Z), edge(Z, Y).
            blocked(X) <- node(X), not path(a, X).
            node(X) <- edge(X, _).
            node(Y) <- edge(_, Y).
            """
        )
        edb = Database()
        edb.assert_all("edge", [("a", "b"), ("c", "d")])
        model = well_founded_model(program, edb)
        assert model.is_total
        assert ("c",) in model.true.relation("blocked", 1)


class TestWinMoveGame:
    def test_draw_positions_are_undefined(self):
        """A 2-cycle 1<->2: both win atoms are undefined (a draw); the
        tail position 3 -> 4 is decided."""
        program = parse_program("win(X) <- move(X, Y), not win(Y).")
        edb = Database()
        edb.assert_all("move", [(1, 2), (2, 1), (3, 4)])
        model = well_founded_model(program, edb)
        assert not model.is_total
        undefined = model.undefined_facts()[("win", 1)]
        assert undefined == {(1,), (2,)}
        assert (3,) in model.true.relation("win", 1)


class TestChoiceProgramsAreNotTotal:
    def test_rewritten_choice_program_has_undefined_atoms(self, takes_pairs):
        """The paper's point: chosen/diffChoice negate each other, so the
        well-founded model leaves them undefined — stable models (several)
        are the meaningful semantics for choice."""
        rewritten = rewrite_program(parse_program(texts.EXAMPLE1_ASSIGNMENT))
        edb = Database()
        edb.assert_all("takes", takes_pairs)
        model = well_founded_model(rewritten, edb)
        assert not model.is_total
        undefined_preds = {key[0] for key in model.undefined_facts()}
        assert any(p.startswith("chosen$") for p in undefined_preds)
