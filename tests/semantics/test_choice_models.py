"""Choice-model enumeration: the non-deterministic completeness of the
fixpoint procedures (Lemmas 1–2, Theorem 2) on concrete programs."""

from __future__ import annotations

import pytest

from repro.datalog.parser import parse_program
from repro.errors import EvaluationError
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.semantics.choice_models import enumerate_choice_models
from repro.semantics.stable import verify_engine_output


class TestExample1:
    def test_exactly_the_three_paper_models(self, takes_pairs):
        models = enumerate_choice_models(
            texts.EXAMPLE1_ASSIGNMENT, facts={"takes": takes_pairs}
        )
        assignments = {frozenset(m.facts("a_st", 2)) for m in models}
        assert assignments == {
            frozenset({("andy", "engl"), ("ann", "math")}),
            frozenset({("andy", "engl"), ("mark", "math")}),
            frozenset({("mark", "engl"), ("ann", "math")}),
        }

    def test_every_enumerated_model_is_stable(self, takes_pairs):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        models = enumerate_choice_models(program, facts={"takes": takes_pairs})
        assert all(verify_engine_output(program, m) for m in models)

    def test_limit_short_circuits(self, takes_pairs):
        models = enumerate_choice_models(
            texts.EXAMPLE1_ASSIGNMENT, facts={"takes": takes_pairs}, limit=1
        )
        assert len(models) == 1


class TestBiInjective:
    def test_exactly_the_two_paper_models(self, takes_grades):
        models = enumerate_choice_models(
            texts.BI_INJECTIVE_BOTTOM, facts={"takes": takes_grades}
        )
        results = {frozenset(m.facts("bi_st_c", 3)) for m in models}
        assert results == {
            frozenset({("mark", "engl", 2)}),
            frozenset({("mark", "math", 2)}),
        }


class TestStagePrograms:
    def test_sorting_with_distinct_costs_has_one_model(self):
        models = enumerate_choice_models(
            texts.SORTING, facts={"p": [("a", 3), ("b", 1), ("c", 2)]}
        )
        assert len(models) == 1

    def test_sorting_with_ties_has_multiple_models(self):
        models = enumerate_choice_models(
            texts.SORTING, facts={"p": [("a", 1), ("b", 1)]}
        )
        # Two interleavings of the tied tuples.
        assert len(models) == 2

    def test_prim_with_distinct_costs_has_unique_tree(self, diamond_graph):
        models = enumerate_choice_models(
            texts.PRIM,
            facts={"g": symmetric_edges(diamond_graph), "source": [("a",)]},
        )
        trees = {
            frozenset((f[0], f[1]) for f in m.facts("prm", 4) if f[0] != "nil")
            for m in models
        }
        assert trees == {frozenset({("a", "c"), ("c", "b"), ("b", "d")})}

    def test_matching_models_are_all_stable(self):
        arcs = [("a", "x", 1), ("b", "x", 1), ("a", "y", 1)]
        program = parse_program(texts.MATCHING)
        models = enumerate_choice_models(program, facts={"g": arcs})
        assert len(models) >= 2
        assert all(verify_engine_output(program, m) for m in models)


class TestSafetyValve:
    def test_max_steps_exhaustion_raises(self):
        takes = [(f"s{i}", f"c{j}") for i in range(4) for j in range(4)]
        with pytest.raises(EvaluationError):
            enumerate_choice_models(
                texts.EXAMPLE1_ASSIGNMENT, facts={"takes": takes}, max_steps=5
            )
