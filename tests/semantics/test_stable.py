"""Gelfond–Lifschitz stability tests: Theorem 1 mechanised."""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.semantics.stable import (
    complete_model,
    is_stable_model,
    least_model,
    verify_engine_output,
)
from repro.storage.database import Database


class TestLeastModel:
    def test_positive_fixpoint(self):
        program = parse_program(
            "path(X, Y) <- edge(X, Y). path(X, Y) <- path(X, Z), edge(Z, Y)."
        )
        edb = Database()
        edb.assert_all("edge", [(1, 2), (2, 3)])
        model = least_model(program, edb)
        assert set(model.facts("path", 2)) == {(1, 2), (2, 3), (1, 3)}

    def test_edb_not_mutated(self):
        program = parse_program("p(X) <- q(X).")
        edb = Database()
        edb.assert_all("q", [(1,)])
        least_model(program, edb)
        assert edb.get("p", 1) is None


class TestStableModelCheck:
    WIN = "win(X) <- move(X, Y), not win(Y)."

    def test_win_move_game(self):
        """Classic: positions 1->2->3; win(2) is the unique stable model
        content for the win predicate."""
        program = parse_program(self.WIN)
        model = Database()
        model.assert_all("move", [(1, 2), (2, 3)])
        model.assert_all("win", [(1, 2)][:0])  # start empty, then set below
        model.relation("win", 1).add((2,))
        model.relation("win", 1).add((1,))
        # {win(1), win(2)} is NOT stable: win(1) needs not win(2).
        assert not is_stable_model(program, model)
        correct = Database()
        correct.assert_all("move", [(1, 2), (2, 3)])
        correct.relation("win", 1).add((2,))
        assert is_stable_model(program, correct)

    def test_even_loop_has_two_stable_models(self):
        program = parse_program("p(X) <- n(X), not q(X). q(X) <- n(X), not p(X).")
        base = Database()
        base.assert_all("n", [("a",)])
        model_p = base.copy()
        model_p.relation("p", 1).add(("a",))
        model_q = base.copy()
        model_q.relation("q", 1).add(("a",))
        both = base.copy()
        both.relation("p", 1).add(("a",))
        both.relation("q", 1).add(("a",))
        assert is_stable_model(program, model_p)
        assert is_stable_model(program, model_q)
        assert not is_stable_model(program, both)
        assert not is_stable_model(program, base)

    def test_program_facts_must_be_in_model(self):
        program = parse_program("p(a).")
        assert not is_stable_model(program, Database())


class TestTheorem1:
    """Every engine output is a stable model of the rewritten program."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("engine", ["basic", "rql"])
    def test_prim(self, engine, seed, diamond_graph):
        program = parse_program(texts.PRIM)
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(diamond_graph), "source": [("a",)]},
            seed=seed,
            engine=engine,
        )
        assert verify_engine_output(program, db)

    @pytest.mark.parametrize("engine", ["basic", "rql"])
    def test_sorting(self, engine):
        items = [("a", 3), ("b", 1), ("c", 2)]
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0, engine=engine)
        assert verify_engine_output(parse_program(texts.SORTING), db)

    @pytest.mark.parametrize("engine", ["basic", "rql"])
    def test_matching(self, engine):
        arcs = [("a", "x", 3), ("a", "y", 1), ("b", "x", 2), ("b", "y", 4)]
        db = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0, engine=engine)
        assert verify_engine_output(parse_program(texts.MATCHING), db)

    def test_example1(self, takes_pairs):
        db = solve_program(
            texts.EXAMPLE1_ASSIGNMENT,
            facts={"takes": takes_pairs},
            seed=0,
            engine="choice",
        )
        assert verify_engine_output(parse_program(texts.EXAMPLE1_ASSIGNMENT), db)

    def test_bi_injective(self, takes_grades):
        db = solve_program(
            texts.BI_INJECTIVE_BOTTOM,
            facts={"takes": takes_grades},
            seed=0,
            engine="choice",
        )
        assert verify_engine_output(parse_program(texts.BI_INJECTIVE_BOTTOM), db)


class TestTampering:
    """Perturbed outputs must fail the stability check."""

    def _prim_model(self, diamond_graph):
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(diamond_graph), "source": [("a",)]},
            seed=0,
        )
        return parse_program(texts.PRIM), db

    def test_removing_a_tree_edge_is_unstable(self, diamond_graph):
        program, db = self._prim_model(diamond_graph)
        rel = db.relation("prm", 4)
        rel.discard(max(rel, key=lambda f: f[3]))
        assert not verify_engine_output(program, db)

    def test_adding_a_spurious_edge_is_unstable(self, diamond_graph):
        program, db = self._prim_model(diamond_graph)
        db.relation("prm", 4).add(("c", "d", 8, 9))
        assert not verify_engine_output(program, db)

    def test_swapping_an_edge_for_a_worse_one_is_unstable(self, diamond_graph):
        program, db = self._prim_model(diamond_graph)
        rel = db.relation("prm", 4)
        # Replace the stage-1 selection (a, c, 1) with the worse (a, b, 4).
        victim = [f for f in rel if f[3] == 1][0]
        rel.discard(victim)
        rel.add(("a", "b", 4, 1))
        # Recompute new_g facts to keep the flat rules consistent.
        assert not verify_engine_output(program, db)

    def test_non_maximal_assignment_is_unstable(self, takes_pairs):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        db = solve_program(
            texts.EXAMPLE1_ASSIGNMENT,
            facts={"takes": takes_pairs},
            seed=0,
            engine="choice",
        )
        rel = db.relation("a_st", 2)
        rel.discard(next(iter(rel)))
        assert not verify_engine_output(program, db)


class TestCompleteModel:
    def test_chosen_facts_recovered_from_heads(self, takes_pairs):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        db = solve_program(
            texts.EXAMPLE1_ASSIGNMENT,
            facts={"takes": takes_pairs},
            seed=0,
            engine="choice",
        )
        rewritten, completed = complete_model(program, db)
        chosen = [key for key in completed.predicates() if key[0].startswith("chosen$")]
        assert chosen
        (key,) = chosen
        assert len(list(completed.facts(*key))) == len(list(db.facts("a_st", 2)))

    def test_input_database_not_mutated(self, takes_pairs):
        program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
        db = solve_program(
            texts.EXAMPLE1_ASSIGNMENT,
            facts={"takes": takes_pairs},
            seed=0,
            engine="choice",
        )
        before = db.as_dict()
        complete_model(program, db)
        assert db.as_dict() == before
