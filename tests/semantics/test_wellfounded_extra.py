"""Additional well-founded semantics cases: odd cycles, layered games,
and the interaction with definite parts."""

from __future__ import annotations


from repro.datalog.parser import parse_program
from repro.semantics.wellfounded import well_founded_model
from repro.storage.database import Database

WIN = parse_program("win(X) <- move(X, Y), not win(Y).")


def _wf(program, **facts):
    edb = Database()
    for name, rows in facts.items():
        edb.assert_all(name, rows)
    return well_founded_model(program, edb)


class TestGameGraphs:
    def test_terminal_positions_lose(self):
        # 1 -> 2, 2 has no moves: win(1) true, win(2) false.
        model = _wf(WIN, move=[(1, 2)])
        assert model.is_total
        assert (1,) in model.true.relation("win", 1)
        assert (2,) not in model.possible.relation("win", 1)

    def test_three_cycle_is_all_undefined(self):
        model = _wf(WIN, move=[(1, 2), (2, 3), (3, 1)])
        assert not model.is_total
        assert model.undefined_facts()[("win", 1)] == {(1,), (2,), (3,)}

    def test_cycle_with_escape_is_decided(self):
        # 1 <-> 2, but 2 can also move to a lost position 3: win(2) true,
        # so win(1) false — the draw dissolves.
        model = _wf(WIN, move=[(1, 2), (2, 1), (2, 3)])
        assert model.is_total
        assert (2,) in model.true.relation("win", 1)
        assert (1,) not in model.possible.relation("win", 1)

    def test_chain_alternates(self):
        # 1 -> 2 -> 3 -> 4 (terminal): win alternates false/true backwards.
        model = _wf(WIN, move=[(1, 2), (2, 3), (3, 4)])
        wins = set(model.true.relation("win", 1))
        assert wins == {(3,), (1,)}


class TestMixedPrograms:
    def test_definite_layer_feeds_negation(self):
        program = parse_program(
            """
            reach(X) <- start(X).
            reach(Y) <- reach(X), edge(X, Y).
            isolated(X) <- node(X), not reach(X).
            """
        )
        model = _wf(
            program,
            start=[(1,)],
            edge=[(1, 2)],
            node=[(1,), (2,), (3,)],
        )
        assert model.is_total
        assert set(model.true.relation("isolated", 1)) == {(3,)}

    def test_undefinedness_propagates_through_positive_rules(self):
        program = parse_program(
            """
            win(X) <- move(X, Y), not win(Y).
            happy(X) <- win(X), player(X).
            """
        )
        model = _wf(program, move=[(1, 2), (2, 1)], player=[(1,), (2,)])
        undefined = model.undefined_facts()
        assert ("happy", 1) in undefined

    def test_empty_program(self):
        model = _wf(parse_program("p(X) <- q(X)."), q=[])
        assert model.is_total
