"""Tests for the top-level query helper."""

from __future__ import annotations

import pytest

from repro import query, solve_program
from repro.errors import ParseError


@pytest.fixture
def db():
    return solve_program("p(1). p(2). p(3). q(X, Y) <- p(X), p(Y), X < Y.")


class TestQuery:
    def test_all_variables(self, db):
        rows = query(db, "q(X, Y)")
        assert {(r["X"], r["Y"]) for r in rows} == {(1, 2), (1, 3), (2, 3)}

    def test_constant_filters(self, db):
        rows = query(db, "q(1, Y)")
        assert sorted(r["Y"] for r in rows) == [2, 3]

    def test_wildcard_matches_without_binding(self, db):
        rows = query(db, "q(_, Y)")
        assert all(set(r) == {"Y"} for r in rows)

    def test_repeated_variable_enforces_equality(self, db):
        assert query(db, "q(X, X)") == []

    def test_unknown_predicate_is_empty(self, db):
        assert query(db, "nothing(X)") == []

    def test_bad_syntax_raises(self, db):
        with pytest.raises(ParseError):
            query(db, "q(X,")
