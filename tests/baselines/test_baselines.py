"""Tests for the procedural comparators (they are the ground truth for
the declarative engines, so they must be right)."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import (
    dijkstra_distances,
    greedy_matching,
    heapsort,
    huffman_tree,
    kruskal_mst,
    nearest_neighbor_chain,
    prim_mst,
    select_activities,
)
from repro.workloads import complete_graph, random_connected_graph


class TestMSTBaselines:
    def test_prim_and_kruskal_agree_with_networkx(self):
        for seed in range(5):
            nodes, edges = random_connected_graph(15, extra_edges=25, seed=seed)
            graph = nx.Graph()
            for u, v, c in edges:
                graph.add_edge(u, v, weight=c)
            expected = sum(
                d["weight"]
                for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
            )
            assert prim_mst(edges, nodes[0])[1] == expected
            assert kruskal_mst(edges)[1] == expected

    def test_prim_tree_size(self):
        nodes, edges = random_connected_graph(10, seed=1)
        tree, _ = prim_mst(edges, nodes[0])
        assert len(tree) == 9

    def test_kruskal_on_disconnected_graph_gives_forest(self):
        edges = [("a", "b", 1), ("c", "d", 2)]
        tree, cost = kruskal_mst(edges)
        assert len(tree) == 2
        assert cost == 3


class TestHeapsort:
    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    def test_matches_sorted(self, values):
        assert heapsort(values) == sorted(values)

    def test_mixed_types_use_total_order(self):
        assert heapsort(["b", 1, "a", 2]) == [1, 2, "a", "b"]


class TestHuffmanBaseline:
    def test_clrs_wpl(self, clrs_frequencies):
        _, wpl = huffman_tree(clrs_frequencies)
        assert wpl == 224

    def test_wpl_is_minimal_vs_brute_force(self):
        """Compare against exhaustive search over all binary merge orders
        on a tiny alphabet."""
        freqs = {"a": 3, "b": 5, "c": 7, "d": 11}

        def brute(weights):
            if len(weights) == 1:
                return 0
            best = None
            for i, j in itertools.combinations(range(len(weights)), 2):
                merged = weights[i] + weights[j]
                rest = [w for k, w in enumerate(weights) if k not in (i, j)]
                total = merged + brute(rest + [merged])
                best = total if best is None else min(best, total)
            return best

        _, wpl = huffman_tree(freqs)
        assert wpl == brute(list(freqs.values()))

    def test_rejects_single_symbol(self):
        with pytest.raises(ValueError):
            huffman_tree({"a": 1})


class TestMatchingBaseline:
    def test_greedy_order(self):
        arcs = [("a", "x", 3), ("b", "y", 1), ("a", "y", 2)]
        selected, cost = greedy_matching(arcs)
        assert selected == [("b", "y", 1), ("a", "x", 3)]
        assert cost == 4

    def test_no_shared_endpoints(self):
        rng = random.Random(0)
        arcs = [
            (f"l{rng.randrange(6)}", f"r{rng.randrange(6)}", rng.randrange(100))
            for _ in range(30)
        ]
        selected, _ = greedy_matching(arcs)
        sources = [x for x, _, _ in selected]
        targets = [y for _, y, _ in selected]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)


class TestTSPBaseline:
    def test_empty(self):
        assert nearest_neighbor_chain([]) == ([], 0)

    def test_visits_all_on_complete_graph(self):
        _, edges = complete_graph(6, seed=0)
        arcs = []
        for u, v, c in edges:
            arcs += [(u, v, c), (v, u, c)]
        chain, _ = nearest_neighbor_chain(arcs)
        visited = {chain[0][0]} | {arc[1] for arc in chain}
        assert len(visited) == 6


class TestDijkstraBaseline:
    def test_matches_networkx(self):
        for seed in range(3):
            nodes, edges = random_connected_graph(12, extra_edges=15, seed=seed)
            graph = nx.Graph()
            for u, v, c in edges:
                graph.add_edge(u, v, weight=c)
            expected = nx.single_source_dijkstra_path_length(
                graph, nodes[0], weight="weight"
            )
            assert dijkstra_distances(edges, nodes[0]) == dict(expected)

    def test_directed_mode(self):
        edges = [("a", "b", 1), ("b", "c", 1)]
        distances = dijkstra_distances(edges, "c", directed=True)
        assert distances == {"c": 0}


class TestSchedulingBaseline:
    def test_earliest_finish_first(self):
        jobs = [("long", 0, 10), ("first", 0, 2), ("second", 2, 4)]
        selected = select_activities(jobs)
        assert [j[0] for j in selected] == ["first", "second"]

    def test_empty(self):
        assert select_activities([]) == []
