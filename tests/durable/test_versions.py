"""Checkpoint format versioning through the durable store.

The store keeps checkpoint payloads raw until asked, so version gating
must fire at ``latest_checkpoint``/``resume`` with the checkpoint
layer's clear ``CheckpointError`` — never a ``KeyError`` from a missing
field of an unknown future format.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_program
from repro.durable import CheckpointStore
from repro.errors import BudgetExceeded, CheckpointError
from repro.robust import Budget, RunGovernor
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    SUPPORTED_VERSIONS,
    _to_payload,
)
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(14)]}


def _interrupted_checkpoint():
    compiled = compile_program(SORTING)
    governor = RunGovernor(Budget(max_gamma_steps=3), check_interval=1)
    with pytest.raises(BudgetExceeded) as info:
        compiled.run(dict(SORT_FACTS), seed=0, governor=governor)
    return info.value.partial.checkpoint


def _write_raw_checkpoint(root, rid, payload):
    """Plant a checkpoint record with an arbitrary payload dict, as a
    writer of that format version would have."""
    with CheckpointStore(root) as store:
        store.journal_request(rid, {"program": SORTING})
        record = {"kind": "checkpoint", "rid": rid, "data": payload}
        with store._lock:
            store._append(record)


def _baseline():
    return dumps_facts(compile_program(SORTING).run(dict(SORT_FACTS), seed=0))


class TestVersions:
    def test_v2_checkpoint_loads_and_resumes(self, tmp_path):
        payload = _to_payload(_interrupted_checkpoint())
        assert payload["version"] == CHECKPOINT_VERSION == 2
        _write_raw_checkpoint(tmp_path, "r", payload)
        with CheckpointStore(tmp_path) as store:
            cp = store.latest_checkpoint("r")
            assert cp.version == CHECKPOINT_VERSION
            assert cp.fingerprint
            db = store.resume("r", compile_program(SORTING).program)
        assert dumps_facts(db) == _baseline()

    def test_v1_checkpoint_loads_and_resumes(self, tmp_path):
        """A version-1 payload (no fingerprint) still loads through the
        store; its restore is unchecked, exactly as for file loads."""
        payload = _to_payload(_interrupted_checkpoint())
        payload["version"] = 1
        del payload["fingerprint"]
        _write_raw_checkpoint(tmp_path, "r", payload)
        with CheckpointStore(tmp_path) as store:
            cp = store.latest_checkpoint("r")
            assert cp.fingerprint == ""
            db = store.resume("r", compile_program(SORTING).program)
        assert dumps_facts(db) == _baseline()

    def test_future_version_fails_with_checkpoint_error(self, tmp_path):
        """An unknown future format must fail at the read with a clear
        CheckpointError, not a KeyError from probing missing fields."""
        future = CHECKPOINT_VERSION + 1
        assert future not in SUPPORTED_VERSIONS
        payload = {"version": future, "totally": "different", "shape": True}
        _write_raw_checkpoint(tmp_path, "r", payload)
        with CheckpointStore(tmp_path) as store:
            # Opening the store must succeed: the unreadable payload only
            # fails when someone actually asks for it.
            assert sorted(store.pending()) == ["r"]
            with pytest.raises(CheckpointError) as info:
                store.latest_checkpoint("r")
            message = str(info.value)
            assert f"unsupported checkpoint version {future}" in message
            assert str(SUPPORTED_VERSIONS) in message
            with pytest.raises(CheckpointError):
                store.resume("r", compile_program(SORTING).program)

    def test_missing_version_fails_with_checkpoint_error(self, tmp_path):
        _write_raw_checkpoint(tmp_path, "r", {"no": "version field"})
        with CheckpointStore(tmp_path) as store:
            with pytest.raises(CheckpointError) as info:
                store.latest_checkpoint("r")
        assert "unsupported checkpoint version None" in str(info.value)

    def test_mixed_versions_newest_wins(self, tmp_path):
        v2 = _to_payload(_interrupted_checkpoint())
        v1 = dict(v2, version=1)
        v1.pop("fingerprint")
        with CheckpointStore(tmp_path) as store:
            store.journal_request("r", {"program": SORTING})
            with store._lock:
                store._append({"kind": "checkpoint", "rid": "r", "data": v1})
                store._append({"kind": "checkpoint", "rid": "r", "data": v2})
        with CheckpointStore(tmp_path) as store:
            assert store.latest_checkpoint("r").version == CHECKPOINT_VERSION

    def test_future_records_do_not_block_other_runs(self, tmp_path):
        """One future-format checkpoint must not poison recovery of the
        runs this build *can* read."""
        good = _to_payload(_interrupted_checkpoint())
        _write_raw_checkpoint(tmp_path, "old", good)
        with CheckpointStore(tmp_path) as store:
            store.journal_request("new", {"program": SORTING})
            with store._lock:
                store._append(
                    {
                        "kind": "checkpoint",
                        "rid": "new",
                        "data": {"version": 99},
                    }
                )
        with CheckpointStore(tmp_path) as store:
            assert sorted(store.pending()) == ["new", "old"]
            db = store.resume("old", compile_program(SORTING).program)
            assert dumps_facts(db) == _baseline()
            with pytest.raises(CheckpointError):
                store.latest_checkpoint("new")
