"""QueryService + CheckpointStore: journal, done markers, restart recovery.

These tests model the service side of durability: a service with a store
journals every admitted request before it enters the queue, marks every
terminal delivery done, and a *restarted* service on the same directory
reports and resubmits the survivors — resuming checkpointed runs to the
byte-identical model of an uninterrupted evaluation.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.durable import CheckpointStore, DurabilityPolicy
from repro.serve import DEGRADED, OK, QueryRequest, QueryService
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(14)]}

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

PATH_FACTS = {"edge": [(1, 2), (2, 3), (3, 4), (4, 5)]}


def _baseline(program, facts, seed=0, engine="rql"):
    db = solve_program(
        program, {k: list(v) for k, v in facts.items()}, seed=seed, engine=engine
    )
    return dumps_facts(db)


class TestJournalLifecycle:
    def test_completed_requests_leave_nothing_pending(self, tmp_path):
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=2, store=store)
        try:
            for seed in range(4):
                response = svc.evaluate(
                    QueryRequest(program=SORTING, facts=SORT_FACTS, seed=seed),
                    timeout=30,
                )
                assert response.status == OK
        finally:
            svc.close()
            store.close()
        with CheckpointStore(tmp_path) as reopened:
            assert reopened.pending() == {}

    def test_failed_requests_are_still_marked_done(self, tmp_path):
        """A failure was *delivered* — there is nothing left to recover."""
        from repro.errors import ReproError

        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=1, store=store)
        try:
            with pytest.raises(ReproError):
                svc.evaluate(QueryRequest(program="p(X) :- q(X, ."), timeout=30)
        finally:
            svc.close()
            store.close()
        with CheckpointStore(tmp_path) as reopened:
            assert reopened.pending() == {}

    def test_degraded_requests_are_marked_done(self, tmp_path):
        from repro.robust import Budget

        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=1, store=store)
        try:
            response = svc.evaluate(
                QueryRequest(
                    program=SORTING,
                    facts=SORT_FACTS,
                    seed=3,
                    budget=Budget(max_gamma_steps=4),
                ),
                timeout=30,
            )
            assert response.status == DEGRADED
        finally:
            svc.close()
            store.close()
        with CheckpointStore(tmp_path) as reopened:
            assert reopened.pending() == {}

    def test_request_ids_never_collide_across_restarts(self, tmp_path):
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=1, store=store)
        try:
            ticket = svc.submit(QueryRequest(program=PATH, facts=PATH_FACTS))
            first_id = ticket.request_id
            ticket.response(timeout=30)
        finally:
            svc.close()
            store.close()
        store2 = CheckpointStore(tmp_path)
        svc2 = QueryService(workers=1, store=store2)
        try:
            ticket2 = svc2.submit(QueryRequest(program=PATH, facts=PATH_FACTS))
            assert ticket2.request_id > first_id
            ticket2.response(timeout=30)
        finally:
            svc2.close()
            store2.close()


class TestRestartRecovery:
    def _abandon(self, tmp_path, durability=None):
        """Journal two requests and die before either is delivered.

        The service is never started with workers draining them: we
        journal through the store exactly as submit() would, modelling a
        process that was killed between admission and delivery.
        """
        request = QueryRequest(program=SORTING, facts=SORT_FACTS, seed=7)
        other = QueryRequest(program=PATH, facts=PATH_FACTS, seed=0)
        store = CheckpointStore(tmp_path)
        store.journal_request("0", request.to_payload())
        store.journal_request("1", other.to_payload())
        store._handle.close()  # process death: no clean close

    def test_recover_reports_without_resubmitting(self, tmp_path):
        self._abandon(tmp_path)
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=1, store=store)
        try:
            recovered = svc.recover(resubmit=False)
            assert sorted(recovered) == ["0", "1"]
            request = recovered["0"]
            assert isinstance(request, QueryRequest)
            assert request.seed == 7
            assert dict(request.facts) == {
                "p": list(SORT_FACTS["p"])
            }
            # Nothing was resubmitted: the survivors stay pending.
            assert sorted(store.pending()) == ["0", "1"]
        finally:
            svc.close()
            store.close()

    def test_recover_resubmits_to_the_byte_identical_model(self, tmp_path):
        self._abandon(tmp_path)
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=2, store=store)
        try:
            recovered = svc.recover()
            assert sorted(recovered) == ["0", "1"]
            sorted_response = recovered["0"].response(timeout=30)
            path_response = recovered["1"].response(timeout=30)
            assert sorted_response.status == OK
            assert path_response.status == OK
            assert dumps_facts(sorted_response.database) == _baseline(
                SORTING, SORT_FACTS, seed=7
            )
            assert dumps_facts(path_response.database) == _baseline(
                PATH, PATH_FACTS, seed=0
            )
            assert svc.stats()["counters"]["recovered"] == 2
        finally:
            svc.close()
            store.close()
        # Everything was delivered: a third service finds nothing.
        with CheckpointStore(tmp_path) as final:
            assert final.pending() == {}

    def test_checkpointed_run_recovers_from_its_checkpoint(self, tmp_path):
        """A run that died mid-flight with durable checkpoints resumes
        from the newest one rather than recomputing from scratch — and
        still lands on the byte-identical model."""
        from repro.core.compiler import compile_program
        from repro.durable import DurableWriter
        from repro.robust import RunGovernor, SimulatedCrash, inject

        request = QueryRequest(program=SORTING, facts=SORT_FACTS, seed=2)
        store = CheckpointStore(tmp_path)
        store.journal_request("0", request.to_payload())
        writer = DurableWriter(store, "0", DurabilityPolicy(every_steps=1))
        governor = RunGovernor(durability=writer)
        with pytest.raises(SimulatedCrash):
            with inject(None, crash_after=9):
                compile_program(SORTING).run(
                    {k: list(v) for k, v in SORT_FACTS.items()},
                    seed=2,
                    governor=governor,
                )
        store._handle.close()

        store2 = CheckpointStore(tmp_path)
        svc = QueryService(workers=1, store=store2)
        try:
            recovered = svc.recover(resubmit=False)
            request = recovered["0"]
            assert request.resume_from is not None
            assert request.resume_from.facts  # mid-run state, not empty
            tickets = svc.recover()
            response = tickets["0"].response(timeout=30)
            assert response.status == OK
            assert dumps_facts(response.database) == _baseline(
                SORTING, SORT_FACTS, seed=2
            )
        finally:
            svc.close()
            store2.close()

    def test_recovery_is_idempotent(self, tmp_path):
        self._abandon(tmp_path)
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=2, store=store)
        try:
            first = svc.recover()
            for ticket in first.values():
                assert ticket.response(timeout=30).status == OK
            assert svc.recover() == {}
        finally:
            svc.close()
            store.close()

    def test_service_with_durability_streams_checkpoints(self, tmp_path):
        """An attached cadence makes in-flight service runs durable: the
        store sees checkpoint records even for runs that complete."""
        store = CheckpointStore(tmp_path)
        svc = QueryService(
            workers=1,
            store=store,
            durability=DurabilityPolicy(every_steps=1),
        )
        try:
            response = svc.evaluate(
                QueryRequest(program=SORTING, facts=SORT_FACTS, seed=0), timeout=30
            )
            assert response.status == OK
            assert store.metrics.counter("durable/checkpoints") >= 2
        finally:
            svc.close()
            store.close()

    def test_recover_skips_journal_less_runs(self, tmp_path):
        """Checkpoints written by bare-store writers (the CLI) carry no
        journalled request; service recovery must leave them alone."""
        store = CheckpointStore(tmp_path)
        from repro.core.compiler import compile_program
        from repro.robust.checkpoint import capture

        compiled = compile_program(SORTING)
        db = compiled.run({k: list(v) for k, v in SORT_FACTS.items()}, seed=0)
        store.write_checkpoint("cli-run", capture(_EngineStub(compiled.program), db))
        svc = QueryService(workers=1, store=store)
        try:
            assert svc.recover() == {}
            assert sorted(store.pending()) == ["cli-run"]
        finally:
            svc.close()
            store.close()


class _EngineStub:
    def __init__(self, program):
        self.program = program
