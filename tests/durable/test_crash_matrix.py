"""The crash matrix: simulated process death at every durability boundary.

Every test follows one discipline:

1. run a seeded governed program with a tight durability cadence and an
   injected crash at a WAL boundary (pre-write, torn mid-write,
   pre-fsync, pre-replace) — the run dies with ``SimulatedCrash``;
2. reopen the store exactly as a restarted process would (replay +
   torn-tail truncation);
3. resume from the newest durable checkpoint and assert the finished
   database is **byte-identical** (via ``dumps_facts``) to the model of
   an uninterrupted run with the same seed.

A real (SIGKILL) crash of a separate process lives in
``test_sigkill.py``; this matrix covers every boundary deterministically
in-process.
"""

from __future__ import annotations

import os

import pytest

from repro.core.compiler import compile_program
from repro.durable import CheckpointStore, DurabilityPolicy, DurableWriter
from repro.durable.recovery import RecoveryManager
from repro.robust import (
    FaultInjector,
    FaultPlan,
    RunGovernor,
    SimulatedCrash,
    inject,
)
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(24)]}

ASSIGNMENT = "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs)."

TAKES = {
    "takes": [
        (f"s{i}", f"c{j}") for i in range(10) for j in range(4) if (i + j) % 2 == 0
    ]
}

#: Nightly CI widens the countdown crash-point sweep via
#: REPRO_CRASH_POINTS (every durability-operation index from 2 to N —
#: index 1 dies before the victim's first WAL record exists, so there is
#: nothing to recover); PR CI keeps the hand-picked default boundaries.
_CRASH_POINTS = os.environ.get("REPRO_CRASH_POINTS")
CRASH_POINTS = (
    list(range(2, int(_CRASH_POINTS) + 1)) if _CRASH_POINTS else [3, 7, 12, 20, 33]
)


def _baseline(program, facts, seed=0, engine="rql"):
    compiled = compile_program(program, engine=engine)
    return dumps_facts(compiled.run({k: list(v) for k, v in facts.items()}, seed=seed))


def _run_with_crash(tmp_path, program, facts, injector=None, crash_after=None, seed=0):
    """A governed run that streams checkpoints until the injected crash.

    Returns the store directory; asserts the crash actually fired.
    """
    store = CheckpointStore(tmp_path)
    writer = DurableWriter(store, "victim", DurabilityPolicy(every_steps=1))
    governor = RunGovernor(durability=writer)
    compiled = compile_program(program)
    with pytest.raises(SimulatedCrash):
        with inject(injector, crash_after=crash_after):
            compiled.run(
                {k: list(v) for k, v in facts.items()}, seed=seed, governor=governor
            )
    # The dead process never closes its store; the OS keeps what was
    # written.  Dropping the handle without close() models that.
    store._handle.close()
    return tmp_path


def _recover_and_compare(tmp_path, program, facts, seed=0):
    reopened = CheckpointStore(tmp_path)
    run = reopened.pending()["victim"]
    assert run.checkpoint_payload is not None, "no durable checkpoint survived"
    db = reopened.resume("victim", compile_program(program).program)
    reopened.close()
    assert dumps_facts(db) == _baseline(program, facts, seed=seed)


class TestCrashMatrix:
    """Each seeded crash point, recovered to the byte-identical model."""

    @pytest.mark.parametrize("crash_after", CRASH_POINTS)
    def test_shared_countdown_crash_points(self, tmp_path, crash_after):
        """Die at the N-th durability operation, whatever it is — the
        crash_after countdown spans write/fsync/replace visits."""
        _run_with_crash(tmp_path, SORTING, SORT_FACTS, crash_after=crash_after)
        _recover_and_compare(tmp_path, SORTING, SORT_FACTS)

    @pytest.mark.parametrize("nth", [2, 5, 9])
    def test_crash_before_write(self, tmp_path, nth):
        injector = FaultInjector([FaultPlan("wal.write", mode="crash", nth=nth)])
        _run_with_crash(tmp_path, SORTING, SORT_FACTS, injector=injector)
        _recover_and_compare(tmp_path, SORTING, SORT_FACTS)

    @pytest.mark.parametrize("nth", [2, 6])
    def test_crash_before_fsync(self, tmp_path, nth):
        injector = FaultInjector([FaultPlan("wal.fsync", mode="crash", nth=nth)])
        _run_with_crash(tmp_path, SORTING, SORT_FACTS, injector=injector)
        _recover_and_compare(tmp_path, SORTING, SORT_FACTS)

    @pytest.mark.parametrize("nth", [3, 8])
    def test_torn_write_leaves_truncatable_tail(self, tmp_path, nth):
        injector = FaultInjector([FaultPlan("wal.write", mode="torn", nth=nth)])
        _run_with_crash(tmp_path, SORTING, SORT_FACTS, injector=injector)
        # The torn record is physically on disk: the scan must see it.
        scans = [
            RecoveryManager(tmp_path).segments()[-1],
        ]
        from repro.durable.wal import scan_segment

        assert any(scan_segment(path).torn for path in scans)
        _recover_and_compare(tmp_path, SORTING, SORT_FACTS)
        # Recovery truncated the tail — a rescan is clean.
        assert not any(scan_segment(path).torn for path in scans)

    def test_crash_during_compaction_replace(self, tmp_path):
        """A crash at the os.replace boundary of compaction: the temp
        file is left behind, the old segments survive, reopen replays
        the original state."""
        store = CheckpointStore(tmp_path)
        store.journal_request("victim", {"program": SORTING})
        from repro.robust.checkpoint import capture

        compiled = compile_program(SORTING)
        db = compiled.run({k: list(v) for k, v in SORT_FACTS.items()}, seed=0)
        store.write_checkpoint("victim", capture(_EngineStub(compiled.program), db))
        injector = FaultInjector([FaultPlan("wal.replace", mode="crash", nth=1)])
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                store.compact()
        store._handle = None  # the dead process's handle is gone
        reopened = CheckpointStore(tmp_path)
        assert sorted(reopened.pending()) == ["victim"]
        assert reopened.latest_checkpoint("victim") is not None
        reopened.close()

    def test_crash_matrix_choice_program(self, tmp_path):
        """The matrix holds beyond the sorting program: a choice-heavy
        assignment program recovers byte-identically too."""
        _run_with_crash(tmp_path, ASSIGNMENT, TAKES, crash_after=8)
        _recover_and_compare(tmp_path, ASSIGNMENT, TAKES)

    def test_every_cadence_checkpoint_is_resumable(self, tmp_path):
        """Not just the newest: every checkpoint the store ever wrote
        must resume to the same model (checkpoint validity is monotone,
        so a recovery that picks *any* durable prefix is still correct)."""
        import json

        from repro.durable.wal import scan_segment
        from repro.robust.checkpoint import _from_payload, resume

        _run_with_crash(tmp_path, SORTING, SORT_FACTS, crash_after=25)
        payloads = []
        for path in RecoveryManager(tmp_path).segments():
            for raw in scan_segment(path).payloads:
                record = json.loads(raw)
                if record["kind"] == "checkpoint":
                    payloads.append(record["data"])
        assert len(payloads) >= 2
        expected = _baseline(SORTING, SORT_FACTS)
        program = compile_program(SORTING).program
        for payload in payloads:
            db = resume(_from_payload(payload), program)
            assert dumps_facts(db) == expected


class TestCrashSemantics:
    def test_simulated_crash_is_not_transient(self):
        """SimulatedCrash must not be retry-healable: the retry layer
        treats FaultInjected as transient, and a crash is not that."""
        from repro.robust import FaultInjected, is_transient

        crash = SimulatedCrash("simulated crash at wal.write (crash point 1)")
        assert not isinstance(crash, FaultInjected)
        assert not is_transient(crash)

    def test_crash_after_validation(self):
        with pytest.raises(ValueError):
            with inject(None, crash_after=0):
                pass

    def test_inject_none_with_crash_after_builds_injector(self, tmp_path):
        with inject(None, crash_after=1) as injector:
            assert injector is not None
            store = CheckpointStore(tmp_path)
            with pytest.raises(SimulatedCrash):
                store.journal_request("r", {})
        assert injector.fired and injector.fired[0][1] == "crash"


class _EngineStub:
    def __init__(self, program):
        self.program = program


class TestPromotionWindow:
    """The replication crash windows, deterministically in-process: a
    primary ships every durable record to a :class:`ReplicaWal` as it
    fsyncs, dies at a chosen boundary, and the replica is *promoted* —
    closed, reopened as an exclusive store under a fence token, and
    resumed.  The promoted model must be byte-identical to the
    uninterrupted oracle whichever window the crash landed in:

    * **ship-before-fsync** (``wal.fsync`` crash): the record never hit
      the primary's platter, so the hook never fired and the replica
      holds an exact durable prefix;
    * **ship-after-fsync** (die inside the ship path): the record is on
      the primary's disk but not the replica's — the promoted replica
      re-executes from its newest shipped checkpoint, and the stale
      primary slot is *diverged*, detected, never trusted;
    * **mid-compact** (``wal.replace`` crash): the compacted segment
      never shipped; the replica's pre-compaction stream replays to the
      same state, because compaction changes bytes, not meaning.

    The cross-process version of the same windows (live pipes, SIGKILL,
    a real supervisor promoting) is ``tests/serve/test_replication.py``.
    """

    @staticmethod
    def _replicated(tmp_path, stop_ship_after=None):
        from repro.durable import CheckpointStore, ReplicaWal

        store = CheckpointStore(tmp_path / "primary")
        # fsync="never" keeps the replica's own I/O out of the injected
        # fault-site visit counts: every wal.fsync visit is the primary's.
        replica = ReplicaWal(str(tmp_path / "replica"), fsync="never")
        shipped = [0]

        def on_append(index, payload):
            if stop_ship_after is not None and shipped[0] >= stop_ship_after:
                raise SimulatedCrash(
                    f"simulated crash in the ship path after fsync "
                    f"(record {shipped[0] + 1})"
                )
            replica.append(index, payload)
            shipped[0] += 1

        store.on_append = on_append
        store.on_compact = replica.apply_compact
        return store, replica

    @staticmethod
    def _run_to_crash(store, injector=None, crash_after=None):
        writer = DurableWriter(store, "victim", DurabilityPolicy(every_steps=1))
        governor = RunGovernor(durability=writer)
        compiled = compile_program(SORTING)
        with pytest.raises(SimulatedCrash):
            with inject(injector, crash_after=crash_after):
                compiled.run(
                    {k: list(v) for k, v in SORT_FACTS.items()},
                    seed=0,
                    governor=governor,
                )
        store._handle.close()  # the dead primary closes nothing itself

    @staticmethod
    def _promote_and_compare(replica, token=1):
        """Close the replica log, reopen it as the exclusive store a
        promoted worker would, stamp the fence token, and finish the
        victim run — from its newest shipped checkpoint when one
        shipped, else from scratch (the front door's resend path)."""
        from repro.durable import CheckpointStore

        replica.close()
        promoted = CheckpointStore(replica.root, exclusive=True)
        promoted.write_fence(token)
        run = promoted.pending().get("victim")
        if run is not None and run.checkpoint_payload is not None:
            db = promoted.resume("victim", compile_program(SORTING).program)
        else:
            db = compile_program(SORTING).run(
                {k: list(v) for k, v in SORT_FACTS.items()}, seed=0
            )
            promoted.mark_done("victim")
        assert dumps_facts(db) == _baseline(SORTING, SORT_FACTS)
        return promoted

    @pytest.mark.parametrize("nth", [2, 5, 9])
    def test_ship_before_fsync_promotes_an_exact_prefix(self, tmp_path, nth):
        store, replica = self._replicated(tmp_path)
        self._run_to_crash(
            store, FaultInjector([FaultPlan("wal.fsync", mode="crash", nth=nth)])
        )
        promoted = self._promote_and_compare(replica)
        assert promoted.fence_token == 1
        promoted.close()

    @pytest.mark.parametrize("shipped", [2, 6])
    def test_ship_after_fsync_leaves_a_diverged_stale_slot(self, tmp_path, shipped):
        from repro.durable import ReplicaWal, build_manifest

        store, replica = self._replicated(tmp_path, stop_ship_after=shipped)
        self._run_to_crash(store)
        promoted = self._promote_and_compare(replica)
        # The stale primary slot holds the fsynced-but-unshipped tail:
        # provably not a prefix of the promoted log — anti-entropy must
        # classify it diverged, never silently trust it.
        manifest = build_manifest(promoted.root)
        stale = ReplicaWal(str(tmp_path / "primary"))
        assert stale.plan_sync(manifest).diverged
        stale.close()
        promoted.close()

    def test_crash_mid_compact_promotes_the_unshipped_stream(self, tmp_path):
        store, replica = self._replicated(tmp_path)
        writer = DurableWriter(store, "victim", DurabilityPolicy(every_steps=1))
        governor = RunGovernor(durability=writer)
        compile_program(SORTING).run(
            {k: list(v) for k, v in SORT_FACTS.items()}, seed=0, governor=governor
        )
        injector = FaultInjector([FaultPlan("wal.replace", mode="crash", nth=1)])
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                store.compact()
        store._handle = None
        # The on_compact hook never fired: the replica still holds the
        # pre-compaction stream, which replays to the same state.
        promoted = self._promote_and_compare(replica)
        promoted.close()


class TestRestartDuringCompaction:
    """The sharded service's restart loop can SIGKILL a worker at *any*
    point inside ``compact()`` — not just the final ``os.replace``.  Each
    boundary must leave a state where reopening the same shard directory
    replays every pending request: the old segments stay authoritative
    until the swap is complete."""

    @staticmethod
    def _populated_store(tmp_path):
        store = CheckpointStore(tmp_path)
        compiled = compile_program(SORTING)
        for rid in ("r1", "r2", "r3"):
            store.journal_request(rid, {"program": SORTING})
        db = compiled.run({k: list(v) for k, v in SORT_FACTS.items()}, seed=0)
        from repro.robust.checkpoint import capture

        store.write_checkpoint("r2", capture(_EngineStub(compiled.program), db))
        store.mark_done("r3")
        return store

    def _crash_compact_and_recover(self, tmp_path, injector):
        store = self._populated_store(tmp_path)
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                store.compact()
        store._handle = None  # the dead process never closes anything
        reopened = CheckpointStore(tmp_path)
        # Both live runs survived; the done one stayed done.
        assert sorted(reopened.pending()) == ["r1", "r2"]
        assert reopened.latest_checkpoint("r2") is not None
        db = reopened.resume("r2", compile_program(SORTING).program)
        reopened.close()
        assert dumps_facts(db) == _baseline(SORTING, SORT_FACTS)

    def test_crash_writing_the_first_compacted_record(self, tmp_path):
        self._crash_compact_and_recover(
            tmp_path,
            # The injector arms inside compact(), so write visit 1 is the
            # first record of the tmp file.
            FaultInjector([FaultPlan("wal.write", mode="crash", nth=1)]),
        )

    def test_crash_mid_way_through_the_tmp_file(self, tmp_path):
        self._crash_compact_and_recover(
            tmp_path,
            FaultInjector([FaultPlan("wal.write", mode="crash", nth=3)]),
        )

    def test_crash_at_the_tmp_fsync(self, tmp_path):
        self._crash_compact_and_recover(
            tmp_path,
            # fsync visit 1 is the pre-compaction sync of the live
            # segment; visit 2 is the fully written tmp file.
            FaultInjector([FaultPlan("wal.fsync", mode="crash", nth=2)]),
        )

    def test_leftover_tmp_file_is_inert_after_recovery(self, tmp_path):
        store = self._populated_store(tmp_path)
        injector = FaultInjector([FaultPlan("wal.replace", mode="crash", nth=1)])
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                store.compact()
        store._handle = None
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers, "the crash should strand the half-published tmp file"
        reopened = CheckpointStore(tmp_path)
        assert sorted(reopened.pending()) == ["r1", "r2"]
        # A second compaction on the recovered store succeeds and the
        # next reopen still agrees — the stranded tmp never resurrects.
        reopened.compact()
        reopened.close()
        final = CheckpointStore(tmp_path)
        assert sorted(final.pending()) == ["r1", "r2"]
        final.close()
