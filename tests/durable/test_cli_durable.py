"""CLI durability: ``--durable-dir``/``--durable-every`` and ``repro recover``.

The CLI is the bare-store writer: it journals the run, streams
checkpoints at the cadence, and on a budget stop points the operator at
``repro recover``.  These tests drive the whole loop in-process; the
out-of-process SIGKILL variant is ``test_sigkill.py``.
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.durable import CheckpointStore
from repro.durable.recovery import RecoveryManager

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

DIVERGENT = "nat(0).\nnat(Y) <- nat(X), Y = X + 1.\n"


@pytest.fixture
def sorting_files(tmp_path):
    program = tmp_path / "sorting.dl"
    program.write_text(SORTING)
    facts = tmp_path / "p.csv"
    facts.write_text("".join(f"v{i},{(37 * i) % 101}\n" for i in range(12)))
    return program, facts


def _run_durable(program, facts, store_dir, *extra):
    return cli.main(
        [
            str(program),
            "--facts",
            f"p={facts}",
            "--seed",
            "0",
            "--durable-dir",
            str(store_dir),
            "--durable-every",
            "1",
            *extra,
        ]
    )


class TestDurableFlags:
    def test_completed_run_leaves_nothing_pending(self, sorting_files, tmp_path, capsys):
        program, facts = sorting_files
        store_dir = tmp_path / "store"
        code = _run_durable(program, facts, store_dir)
        assert code == 0
        assert "sp(" in capsys.readouterr().out
        state = RecoveryManager(store_dir).recover()
        assert state.pending == {}
        assert state.records > 0  # journal + checkpoints + done all landed

    def test_durable_every_requires_durable_dir(self, sorting_files, capsys):
        program, facts = sorting_files
        code = cli.main(
            [str(program), "--facts", f"p={facts}", "--durable-every", "4"]
        )
        assert code == 1
        assert "--durable-every requires --durable-dir" in capsys.readouterr().err

    def test_budget_stop_checkpoints_and_advertises_recover(
        self, sorting_files, tmp_path, capsys
    ):
        program, facts = sorting_files
        store_dir = tmp_path / "store"
        code = _run_durable(program, facts, store_dir, "--max-steps", "4")
        assert code == 3
        err = capsys.readouterr().err
        assert "% durable: run 0 checkpointed; resume with:" in err
        assert f"repro recover {store_dir} --resume" in err
        run = RecoveryManager(store_dir).recover().pending["0"]
        assert run.request is not None
        assert run.checkpoint_payload is not None

    def test_default_cadence_without_durable_every(self, sorting_files, tmp_path):
        program, facts = sorting_files
        store_dir = tmp_path / "store"
        code = cli.main(
            [
                str(program),
                "--facts",
                f"p={facts}",
                "--seed",
                "0",
                "--durable-dir",
                str(store_dir),
            ]
        )
        assert code == 0
        assert RecoveryManager(store_dir).recover().pending == {}


class TestRecoverCommand:
    def _interrupt(self, sorting_files, tmp_path):
        program, facts = sorting_files
        store_dir = tmp_path / "store"
        assert _run_durable(program, facts, store_dir, "--max-steps", "4") == 3
        return program, facts, store_dir

    def test_list_mode_is_read_only(self, sorting_files, tmp_path, capsys):
        _, _, store_dir = self._interrupt(sorting_files, tmp_path)
        capsys.readouterr()
        assert cli.main(["recover", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "0: request," in out
        assert "(resumable)" in out
        # listing must not consume the run
        assert cli.main(["recover", str(store_dir)]) == 0
        assert "0: request," in capsys.readouterr().out

    def test_resume_matches_uninterrupted_run(self, sorting_files, tmp_path, capsys):
        from repro.core.compiler import solve_program
        from repro.storage.io import dumps_facts, load_facts

        program, facts, store_dir = self._interrupt(sorting_files, tmp_path)
        capsys.readouterr()
        save_dir = tmp_path / "out"
        assert (
            cli.main(
                ["recover", str(store_dir), "--resume", "--save", str(save_dir)]
            )
            == 0
        )
        assert "resumed from checkpoint" in capsys.readouterr().out
        baseline = solve_program(
            SORTING,
            {"p": [(f"v{i}", (37 * i) % 101) for i in range(12)]},
            seed=0,
        )
        resumed = load_facts(save_dir / "0.facts")
        assert dumps_facts(resumed) == dumps_facts(baseline)

    def test_resume_marks_runs_done(self, sorting_files, tmp_path, capsys):
        _, _, store_dir = self._interrupt(sorting_files, tmp_path)
        assert cli.main(["recover", str(store_dir), "--resume"]) == 0
        capsys.readouterr()
        assert cli.main(["recover", str(store_dir)]) == 0
        assert "no recoverable runs" in capsys.readouterr().out

    def test_resume_specific_id(self, sorting_files, tmp_path, capsys):
        _, _, store_dir = self._interrupt(sorting_files, tmp_path)
        assert cli.main(["recover", str(store_dir), "--resume", "--id", "0"]) == 0

    def test_unknown_id_exits_2(self, sorting_files, tmp_path, capsys):
        _, _, store_dir = self._interrupt(sorting_files, tmp_path)
        code = cli.main(["recover", str(store_dir), "--resume", "--id", "ghost"])
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_corrupt_store_exits_2(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        with CheckpointStore(store_dir) as store:
            store.journal_request("0", {"program": SORTING})
        segment = RecoveryManager(store_dir).segments()[0]
        from repro.durable.wal import frame

        damaged = bytearray(frame(b'{"kind":"done","rid":"x"}'))
        damaged[-1] ^= 0xFF  # CRC mismatch ...
        with open(segment, "ab") as handle:
            handle.write(bytes(damaged))
            handle.write(frame(b'{"kind":"done","rid":"0"}'))  # ... mid-log
        code = cli.main(["recover", str(store_dir)])
        assert code == 2
        assert "corrupt" in capsys.readouterr().err.lower()

    def test_empty_store_lists_nothing(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        assert cli.main(["recover", str(store_dir)]) == 0
        assert "no recoverable runs" in capsys.readouterr().out

    def test_journal_only_run_reruns_from_request(self, sorting_files, tmp_path, capsys):
        """A run that died before its first checkpoint still recovers:
        the journalled request is re-run from scratch."""
        program, facts, store_dir = self._interrupt(sorting_files, tmp_path)
        # strip the checkpoints by planting a journal-only second run
        with CheckpointStore(store_dir) as store:
            store.mark_done("0")
            pending = store.pending()
            assert pending == {}
            store.journal_request(
                "1",
                {
                    "program": SORTING,
                    "facts": {
                        "p": [[f"v{i}", (37 * i) % 101] for i in range(12)]
                    },
                    "seed": 0,
                },
            )
        capsys.readouterr()
        assert cli.main(["recover", str(store_dir), "--resume"]) == 0
        assert "re-run from journal" in capsys.readouterr().out
        assert RecoveryManager(store_dir).recover().pending == {}
