"""The real thing: SIGKILL a mid-run worker process and recover its work.

The crash matrix (``test_crash_matrix.py``) covers every durability
boundary deterministically with injected crashes; this test closes the
loop with an actual ``SIGKILL`` — no Python cleanup, no atexit, no
flushed buffers — delivered to a separate interpreter running the CLI
with ``--durable-dir``.  The parent polls the store read-only until the
child has streamed durable checkpoints, kills it, then recovers through
the public ``repro recover`` entry point and checks the resumed model is
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import csv
import os
import signal
import subprocess
import sys
import time

from repro.cli import main
from repro.core.compiler import compile_program
from repro.durable.recovery import RecoveryManager
from repro.storage.io import dumps_facts, load_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

N_ITEMS = 400
ITEMS = [(f"v{i}", (37 * i) % 4099) for i in range(N_ITEMS)]

KILL_DEADLINE_S = 120.0
MIN_CHECKPOINTS = 3


def _spawn_worker(tmp_path):
    program = tmp_path / "sort.dl"
    program.write_text(SORTING)
    facts_csv = tmp_path / "items.csv"
    with open(facts_csv, "w", newline="") as handle:
        csv.writer(handle).writerows(ITEMS)
    store_dir = tmp_path / "store"
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            str(program),
            "--facts",
            f"p={facts_csv}",
            "--seed",
            "0",
            "--engine",
            "basic",
            "--durable-dir",
            str(store_dir),
            "--durable-every",
            "1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=tmp_path,
    )
    return process, store_dir


def _wait_for_checkpoints(process, store_dir, minimum=MIN_CHECKPOINTS):
    """Poll the live store read-only until the child has written at
    least *minimum* durable checkpoints."""
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                "worker finished before it could be killed — grow N_ITEMS "
                f"(exit code {process.returncode})"
            )
        if store_dir.is_dir():
            state = RecoveryManager(store_dir).recover()
            run = state.pending.get("0")
            if run is not None and run.checkpoints_seen >= minimum:
                return run.checkpoints_seen
        time.sleep(0.05)
    raise AssertionError(f"no durable checkpoints after {KILL_DEADLINE_S}s")


def _baseline():
    compiled = compile_program(SORTING, engine="basic")
    return dumps_facts(compiled.run({"p": list(ITEMS)}, seed=0))


class TestSigkill:
    def test_sigkilled_worker_recovers_byte_identical(self, tmp_path):
        process, store_dir = _spawn_worker(tmp_path)
        try:
            seen = _wait_for_checkpoints(process, store_dir)
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL
        assert seen >= MIN_CHECKPOINTS

        # The kill left a mid-run store: the run is still pending, with
        # every checkpoint that reached the disk.
        state = RecoveryManager(store_dir).recover()
        run = state.pending["0"]
        assert run.request is not None
        assert run.checkpoint_payload is not None

        # Recover through the public CLI and land on the exact model an
        # uninterrupted process would have produced.
        out_dir = tmp_path / "recovered"
        code = main(
            ["recover", str(store_dir), "--resume", "--save", str(out_dir)]
        )
        assert code == 0
        recovered = load_facts(out_dir / "0.facts")
        assert dumps_facts(recovered) == _baseline()

        # The resume marked the run done: a second recovery is a no-op.
        assert RecoveryManager(store_dir).recover().pending == {}
        assert main(["recover", str(store_dir)]) == 0
