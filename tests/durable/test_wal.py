"""WAL framing unit tests: record layout, scanning, damage taxonomy.

The crash-driven paths (torn writes from injected faults, recovery of a
killed process) live in ``test_crash_matrix.py`` and ``test_sigkill.py``;
this file pins down the byte-level format and the torn-tail vs mid-log
corruption distinction with hand-built files.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.durable.wal import (
    HEADER,
    MAX_RECORD_BYTES,
    append_record,
    frame,
    replace_file,
    scan_segment,
)
from repro.errors import WalCorruptionError
from repro.storage.io import atomic_write_text


def _write_segment(path, payloads):
    with open(path, "wb") as handle:
        for payload in payloads:
            append_record(handle, payload)


class TestFraming:
    def test_frame_layout(self):
        payload = b'{"kind":"done","rid":"7"}'
        record = frame(payload)
        length, crc = HEADER.unpack_from(record)
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        assert record[HEADER.size :] == payload

    def test_round_trip_many_records(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        payloads = [f"payload-{i}".encode() * (i + 1) for i in range(50)]
        _write_segment(path, payloads)
        scan = scan_segment(path)
        assert scan.payloads == payloads
        assert not scan.torn
        assert scan.good_length == os.path.getsize(path)

    def test_empty_segment_scans_clean(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"")
        scan = scan_segment(path)
        assert scan.payloads == []
        assert scan.good_length == 0
        assert not scan.torn


class TestDamage:
    """Every damage shape at the tail is torn (truncatable); the same
    damage followed by more data is corruption (an error)."""

    def _segment(self, tmp_path, payloads):
        path = tmp_path / "wal-00000001.log"
        _write_segment(path, payloads)
        return path

    def test_truncated_header_is_torn(self, tmp_path):
        path = self._segment(tmp_path, [b"alpha", b"beta"])
        good = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x05\x00")  # 2 of 8 header bytes
        scan = scan_segment(path)
        assert scan.torn
        assert scan.good_length == good
        assert scan.payloads == [b"alpha", b"beta"]
        assert "truncated header" in scan.damage

    def test_truncated_payload_is_torn(self, tmp_path):
        path = self._segment(tmp_path, [b"alpha"])
        good = os.path.getsize(path)
        partial = frame(b"a-longer-payload")[:-4]
        with open(path, "ab") as handle:
            handle.write(partial)
        scan = scan_segment(path)
        assert scan.torn
        assert scan.good_length == good
        assert "truncated payload" in scan.damage

    def test_crc_mismatch_at_tail_is_torn(self, tmp_path):
        path = self._segment(tmp_path, [b"alpha"])
        good = os.path.getsize(path)
        record = bytearray(frame(b"damaged-record"))
        record[-1] ^= 0xFF
        with open(path, "ab") as handle:
            handle.write(bytes(record))
        scan = scan_segment(path)
        assert scan.torn
        assert scan.good_length == good
        assert "CRC mismatch" in scan.damage

    def test_crc_mismatch_mid_log_raises(self, tmp_path):
        path = self._segment(tmp_path, [b"alpha"])
        record = bytearray(frame(b"damaged-record"))
        record[-1] ^= 0xFF
        with open(path, "ab") as handle:
            handle.write(bytes(record))
            handle.write(frame(b"a-valid-record-after-the-damage"))
        with pytest.raises(WalCorruptionError) as info:
            scan_segment(path)
        message = str(info.value)
        assert "wal-00000001.log" in message
        assert "CRC mismatch" in message
        assert "more bytes follow" in message

    def test_impossible_length_is_torn_at_tail(self, tmp_path):
        path = self._segment(tmp_path, [b"alpha"])
        good = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
            handle.write(b"x" * 32)
        scan = scan_segment(path)
        # The header itself is garbage, so the damaged region extends to
        # EOF — classified torn, truncatable at the last good record.
        assert scan.torn
        assert scan.good_length == good
        assert "impossible record length" in scan.damage


class TestAtomicWrite:
    def test_replace_file_publishes_atomically(self, tmp_path):
        final = tmp_path / "wal-00000002.log"
        tmp = tmp_path / "wal-00000002.log.tmp"
        tmp.write_bytes(frame(b"compacted"))
        replace_file(str(tmp), str(final))
        assert not tmp.exists()
        assert scan_segment(final).payloads == [b"compacted"]

    def test_atomic_write_text_replaces_content(self, tmp_path):
        target = tmp_path / "checkpoint.json"
        atomic_write_text(target, "first\n")
        atomic_write_text(target, "second\n")
        assert target.read_text() == "second\n"
        assert list(tmp_path.iterdir()) == [target]  # no temp residue
