"""CheckpointStore unit tests: journal, rotation, compaction, recovery.

Crash-point behaviour is in ``test_crash_matrix.py``; this file covers
the store's happy-path mechanics and its reopen semantics.
"""

from __future__ import annotations

import os

import pytest

from repro.core.compiler import compile_program
from repro.durable import (
    CheckpointStore,
    DurabilityPolicy,
    DurableWriter,
    RecoveryManager,
)
from repro.errors import BudgetExceeded, RecoveryError, WalCorruptionError
from repro.obs.metrics import MetricsRegistry
from repro.robust import Budget, RunGovernor

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(14)]}


def _interrupted_checkpoint(max_steps=3):
    compiled = compile_program(SORTING)
    governor = RunGovernor(Budget(max_gamma_steps=max_steps), check_interval=1)
    with pytest.raises(BudgetExceeded) as info:
        compiled.run(dict(SORT_FACTS), seed=0, governor=governor)
    return info.value.partial.checkpoint


class TestJournal:
    def test_request_checkpoint_done_lifecycle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("a", {"program": SORTING})
        assert sorted(store.pending()) == ["a"]
        store.write_checkpoint("a", _interrupted_checkpoint())
        assert store.pending()["a"].checkpoints_seen == 1
        store.mark_done("a")
        assert store.pending() == {}
        store.close()
        reopened = CheckpointStore(tmp_path)
        assert reopened.pending() == {}
        reopened.close()

    def test_reopen_reconstructs_newest_checkpoint(self, tmp_path):
        older = _interrupted_checkpoint(max_steps=2)
        newer = _interrupted_checkpoint(max_steps=5)
        store = CheckpointStore(tmp_path)
        store.journal_request("run", {"program": SORTING})
        store.write_checkpoint("run", older)
        store.write_checkpoint("run", newer)
        store.close()
        reopened = CheckpointStore(tmp_path)
        assert reopened.pending()["run"].checkpoints_seen == 2
        latest = reopened.latest_checkpoint("run")
        assert latest.facts == newer.facts
        assert latest.rng_state == newer.rng_state
        reopened.close()

    def test_latest_checkpoint_none_before_first(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.journal_request("r", {})
            assert store.latest_checkpoint("r") is None
            assert store.latest_checkpoint("unknown") is None

    def test_closed_store_refuses_appends(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.close()
        with pytest.raises(ValueError):
            store.journal_request("r", {})

    def test_next_numeric_rid_spans_pending_and_done(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            assert store.next_numeric_rid() == 0
            store.journal_request("3", {})
            store.journal_request("7", {})
            store.mark_done("7")
            store.journal_request("not-a-number", {})
            assert store.next_numeric_rid() == 8
        with CheckpointStore(tmp_path) as reopened:
            assert reopened.next_numeric_rid() == 8

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, segment_bytes=0)


class TestRotation:
    def test_appends_rotate_segments(self, tmp_path):
        store = CheckpointStore(tmp_path, segment_bytes=256, fsync="rotate")
        for i in range(20):
            store.journal_request(str(i), {"payload": "x" * 64})
        store.close()
        segments = RecoveryManager(tmp_path).segments()
        assert len(segments) > 1
        assert store.metrics.counter("durable/rotations") == len(segments) - 1
        reopened = CheckpointStore(tmp_path)
        assert sorted(reopened.pending()) == sorted(str(i) for i in range(20))
        reopened.close()

    def test_new_segment_after_reopen_not_old_tail(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("a", {})
        store.close()
        reopened = CheckpointStore(tmp_path)
        reopened.journal_request("b", {})
        reopened.close()
        # Both records must replay, whichever segments they landed in.
        final = CheckpointStore(tmp_path)
        assert sorted(final.pending()) == ["a", "b"]
        final.close()


class TestCompaction:
    def test_compact_drops_dead_records(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cp = _interrupted_checkpoint()
        for i in range(10):
            store.journal_request(str(i), {"program": SORTING})
            store.write_checkpoint(str(i), cp)
            if i % 2 == 0:
                store.mark_done(str(i))
        before = sum(
            os.path.getsize(p) for p in RecoveryManager(tmp_path).segments()
        )
        reclaimed = store.compact()
        after = sum(
            os.path.getsize(p) for p in RecoveryManager(tmp_path).segments()
        )
        assert reclaimed > 0
        assert after < before
        assert sorted(store.pending()) == [str(i) for i in range(10) if i % 2]
        store.close()
        reopened = CheckpointStore(tmp_path)
        assert sorted(reopened.pending()) == [str(i) for i in range(10) if i % 2]
        assert reopened.latest_checkpoint("1").facts == cp.facts
        reopened.close()

    def test_compact_keeps_only_newest_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("r", {"program": SORTING})
        store.write_checkpoint("r", _interrupted_checkpoint(2))
        newest = _interrupted_checkpoint(5)
        store.write_checkpoint("r", newest)
        store.compact()
        store.close()
        reopened = CheckpointStore(tmp_path)
        run = reopened.pending()["r"]
        assert run.checkpoints_seen == 1  # compaction kept one
        assert reopened.latest_checkpoint("r").facts == newest.facts
        reopened.close()


class TestTornTail:
    def test_open_truncates_torn_tail(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("keep", {})
        store.close()
        segment = RecoveryManager(tmp_path).segments()[-1]
        good = os.path.getsize(segment)
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe")
        reopened = CheckpointStore(tmp_path)
        assert os.path.getsize(segment) == good
        assert sorted(reopened.pending()) == ["keep"]
        assert reopened.metrics.counter("durable/torn_tails") == 1
        reopened.close()

    def test_torn_tail_on_non_final_segment_is_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path, segment_bytes=64)
        for i in range(6):
            store.journal_request(str(i), {"pad": "y" * 32})
        store.close()
        first, *_ = RecoveryManager(tmp_path).segments()
        with open(first, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        with pytest.raises(WalCorruptionError) as info:
            CheckpointStore(tmp_path)
        assert "not the final segment" in str(info.value)

    def test_foreign_record_is_corruption(self, tmp_path):
        from repro.durable.wal import frame

        store = CheckpointStore(tmp_path)
        store.close()
        segment = RecoveryManager(tmp_path).segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(frame(b"this is not a JSON store record"))
        with pytest.raises(WalCorruptionError) as info:
            CheckpointStore(tmp_path)
        assert "written by something else" in str(info.value)

    def test_unknown_record_kind_is_skipped(self, tmp_path):
        from repro.durable.wal import frame

        store = CheckpointStore(tmp_path)
        store.journal_request("a", {})
        store.close()
        segment = RecoveryManager(tmp_path).segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(frame(b'{"kind":"lease","rid":"a","data":1}'))
        reopened = CheckpointStore(tmp_path)
        assert reopened.recovered.unknown_records == 1
        assert sorted(reopened.pending()) == ["a"]
        reopened.close()


class TestResume:
    def test_resume_unknown_rid_raises_recovery_error(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.journal_request("real", {})
            with pytest.raises(RecoveryError) as info:
                store.resume("ghost", compile_program(SORTING).program)
        message = str(info.value)
        assert "'ghost'" in message and "'real'" in message

    def test_resume_without_checkpoint_raises_recovery_error(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.journal_request("early", {})
            with pytest.raises(RecoveryError) as info:
                store.resume("early", compile_program(SORTING).program)
        assert "before its first" in str(info.value)


class TestMetricsAndWriter:
    def test_durable_namespace_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = CheckpointStore(tmp_path, metrics=registry)
        store.journal_request("r", {})
        store.write_checkpoint("r", _interrupted_checkpoint())
        store.mark_done("r")
        store.compact()
        store.close()
        assert registry.counter("durable/records") == 3
        assert registry.counter("durable/checkpoints") == 1
        assert registry.counter("durable/compactions") == 1
        assert registry.counter("durable/bytes_written") > 0
        assert registry.counter("durable/fsyncs") > 0
        stats = store.stats()
        assert stats["pending"] == 0
        assert stats["counters"]["records"] == 3

    def test_durable_writer_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path)
        writer = DurableWriter(store, "run", DurabilityPolicy(every_steps=4))
        governor = RunGovernor(durability=writer)
        compiled = compile_program(SORTING)
        compiled.run(dict(SORT_FACTS), seed=0, governor=governor)
        assert writer.checkpoints_written >= 2
        # cadence 4 means one checkpoint per 4 ticks, give or take start
        assert store.pending()["run"].checkpoints_seen == writer.checkpoints_written
        writer.complete()
        assert store.pending() == {}
        store.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DurabilityPolicy(every_steps=0)
        with pytest.raises(ValueError):
            DurabilityPolicy(every_steps=None, every_seconds=None)
        with pytest.raises(ValueError):
            DurabilityPolicy(every_seconds=-1.0)

    def test_time_cadence_fires(self, tmp_path):
        clock_value = [0.0]
        store = CheckpointStore(tmp_path)
        writer = DurableWriter(
            store,
            "run",
            DurabilityPolicy(every_steps=None, every_seconds=0.5),
            clock=lambda: clock_value[0],
        )
        compiled = compile_program(SORTING)
        db = compiled.run(dict(SORT_FACTS), seed=0)
        # Drive ticks directly: advance the clock past the cadence, then
        # tick through a clock-check boundary.
        writer.start(_EngineStub(compiled.program), db)
        clock_value[0] = 1.0
        for _ in range(64):
            writer.tick()
        assert writer.checkpoints_written >= 1
        store.close()

    def test_tick_before_start_is_harmless(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            writer = DurableWriter(store, "r", DurabilityPolicy(every_steps=1))
            writer.tick()  # not bound to an engine yet — must not write
            assert writer.checkpoints_written == 0


class _EngineStub:
    """Minimal engine shape for capture(): a program plus getattr
    defaults for everything else."""

    def __init__(self, program):
        self.program = program


class TestExclusiveOwnership:
    """flock-based single-writer WAL shards for the sharded service.

    The lock is advisory and held by an open file handle, so a SIGKILLed
    owner releases it automatically — exactly the property the
    supervisor's restart-with-same-shard loop relies on.
    """

    def test_exclusive_store_blocks_a_second_owner(self, tmp_path):
        from repro.errors import StoreLocked

        first = CheckpointStore(str(tmp_path), exclusive=True)
        try:
            with pytest.raises(StoreLocked) as excinfo:
                CheckpointStore(str(tmp_path), exclusive=True)
            assert "LOCK" in str(excinfo.value) or "owned" in str(excinfo.value)
        finally:
            first.close()
        # close() released the flock: ownership is transferable again.
        second = CheckpointStore(str(tmp_path), exclusive=True)
        second.close()

    def test_non_exclusive_open_still_works_alongside_an_owner(self, tmp_path):
        # The recovery manager reads shard WALs without claiming them.
        owner = CheckpointStore(str(tmp_path), exclusive=True)
        try:
            reader = CheckpointStore(str(tmp_path))
            reader.close()
        finally:
            owner.close()

    def test_for_shard_layout_and_shard_roots_round_trip(self, tmp_path):
        stores = [
            CheckpointStore.for_shard(str(tmp_path), k) for k in range(3)
        ]
        try:
            roots = CheckpointStore.shard_roots(str(tmp_path))
            assert set(roots) == {0, 1, 2}
            for k, path in roots.items():
                assert path.endswith(f"shard-{k}")
                assert os.path.isdir(path)
        finally:
            for store in stores:
                store.close()

    def test_shard_roots_ignores_foreign_directories(self, tmp_path):
        os.makedirs(tmp_path / "shard-0")
        os.makedirs(tmp_path / "shard-x")
        os.makedirs(tmp_path / "other")
        (tmp_path / "shard-7").write_text("a file, not a dir")
        roots = CheckpointStore.shard_roots(str(tmp_path))
        assert set(roots) == {0}

    def test_shard_roots_of_a_missing_root_is_empty(self, tmp_path):
        assert CheckpointStore.shard_roots(str(tmp_path / "nope")) == {}

    def test_close_reopen_close_reopen_in_one_process(self, tmp_path):
        """Regression: close() must release the flock deterministically
        (explicit LOCK_UN, not just handle close), so the same process
        can cycle ownership — exactly what a promotion does when it
        closes the replica log and reopens the directory exclusively."""
        for _ in range(3):
            store = CheckpointStore(str(tmp_path), exclusive=True)
            store.journal_request("r", {})
            store.close()
        final = CheckpointStore(str(tmp_path), exclusive=True)
        assert sorted(final.pending()) == ["r"]
        final.close()

    def test_replica_to_exclusive_store_handoff(self, tmp_path):
        from repro.durable import ReplicaWal

        replica = ReplicaWal(str(tmp_path))
        replica.close()
        store = CheckpointStore(str(tmp_path), exclusive=True)
        store.close()
        # And back: the released exclusive store frees the replica path.
        again = ReplicaWal(str(tmp_path))
        again.close()


class TestFencing:
    """The ``fence`` WAL record: monotonic promotion tokens that survive
    reopen and compaction."""

    def test_write_fence_round_trips_through_recovery(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.fence_token == 0
        store.write_fence(3)
        assert store.fence_token == 3
        store.close()
        reopened = CheckpointStore(tmp_path)
        assert reopened.fence_token == 3
        assert reopened.recovered.fence_token == 3
        reopened.close()

    def test_fence_tokens_are_monotonic(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.write_fence(2)
            with pytest.raises(ValueError):
                store.write_fence(2)
            with pytest.raises(ValueError):
                store.write_fence(1)
            store.write_fence(5)
            assert store.fence_token == 5

    def test_fence_is_durable_under_lazy_fsync_policies(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync="never")
        fsyncs = store.metrics.counter("durable/fsyncs")
        store.write_fence(1)
        # write_fence forces the sync whatever the policy: a promotion
        # is not real until its token is on the platter.
        assert store.metrics.counter("durable/fsyncs") > fsyncs
        store.close()

    def test_fence_survives_compaction(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("r", {"program": SORTING})
        store.write_fence(4)
        store.mark_done("r")
        store.compact()
        store.close()
        reopened = CheckpointStore(tmp_path)
        assert reopened.fence_token == 4
        reopened.close()

    def test_malformed_fence_record_counts_as_unknown(self, tmp_path):
        from repro.durable.wal import frame

        store = CheckpointStore(tmp_path)
        store.close()
        segment = RecoveryManager(tmp_path).segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(frame(b'{"kind":"fence","rid":"shard","data":{}}'))
        reopened = CheckpointStore(tmp_path)
        assert reopened.fence_token == 0
        assert reopened.recovered.unknown_records == 1
        reopened.close()
