"""Replication primitives: manifests, fence files, and the ReplicaWal.

The serving-layer integration (live shipping, standby promotion,
anti-entropy over the pipe protocol) lives in
``tests/serve/test_replication.py``; this file proves the durable
mechanism underneath it in-process — manifest pinning, verified segment
installs, divergence classification, fence monotonicity, and the
lock handoff a promotion performs (replica log → exclusive store).
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.durable import (
    CheckpointStore,
    RecoveryManager,
    ReplicaWal,
    build_manifest,
    fence_path,
    read_fence_token,
    read_segment,
    write_fence_token,
)
from repro.durable.wal import frame, scan_segment
from repro.errors import StoreLocked, WalCorruptionError


def _segment_bytes(root, index):
    with open(os.path.join(root, f"wal-{index:08d}.log"), "rb") as handle:
        return handle.read()


class TestManifest:
    def test_manifest_catalogues_every_segment(self, tmp_path):
        store = CheckpointStore(tmp_path, segment_bytes=128)
        for i in range(8):
            store.journal_request(str(i), {"pad": "x" * 48})
        store.close()
        manifest = build_manifest(str(tmp_path))
        segments = RecoveryManager(str(tmp_path)).segments()
        assert len(manifest) == len(segments) > 1
        for entry in manifest:
            data = _segment_bytes(str(tmp_path), entry["index"])
            assert entry["length"] == len(data)
            assert entry["crc"] == zlib.crc32(data)

    def test_read_segment_returns_the_pinned_prefix_after_growth(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("a", {})
        manifest = build_manifest(str(tmp_path))
        (entry,) = manifest
        store.journal_request("b", {})  # the live segment grows past the pin
        data = read_segment(str(tmp_path), entry["index"], entry["length"])
        assert len(data) == entry["length"]
        assert zlib.crc32(data) == entry["crc"]
        store.close()

    def test_read_segment_refuses_a_shrunken_log(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.journal_request("a", {})
        (entry,) = build_manifest(str(tmp_path))
        store.close()
        with pytest.raises(WalCorruptionError):
            read_segment(str(tmp_path), entry["index"], entry["length"] + 1)


class TestFenceFile:
    def test_round_trip_and_overwrite(self, tmp_path):
        path = fence_path(str(tmp_path), 3)
        assert path.endswith("shard-3.fence")
        assert read_fence_token(path) == 0  # absent fails open
        write_fence_token(path, 1)
        assert read_fence_token(path) == 1
        write_fence_token(path, 2)
        assert read_fence_token(path) == 2

    def test_garbage_fence_file_fails_open(self, tmp_path):
        path = fence_path(str(tmp_path), 0)
        with open(path, "w") as handle:
            handle.write("not json at all")
        assert read_fence_token(path) == 0
        with open(path, "w") as handle:
            handle.write('{"token": "seven"}')
        assert read_fence_token(path) == 0


class TestPlanSync:
    def test_lagging_replica_fetches_without_divergence(self, tmp_path):
        primary = tmp_path / "p"
        store = CheckpointStore(primary, segment_bytes=128)
        for i in range(8):
            store.journal_request(str(i), {"pad": "x" * 48})
        manifest = build_manifest(str(primary))
        store.close()
        replica = ReplicaWal(str(tmp_path / "r"))
        plan = replica.plan_sync(manifest)
        assert [e["index"] for e in plan.fetch] == [e["index"] for e in manifest]
        assert plan.matched == [] and plan.delete == []
        assert not plan.diverged  # missing everything is lag, not divergence
        replica.close()

    def test_matched_segments_are_not_refetched(self, tmp_path):
        primary = tmp_path / "p"
        store = CheckpointStore(primary)
        store.journal_request("a", {})
        manifest = build_manifest(str(primary))
        store.close()
        replica = ReplicaWal(str(tmp_path / "r"))
        for entry in manifest:
            replica.write_segment(
                entry, read_segment(str(primary), entry["index"], entry["length"])
            )
        plan = replica.plan_sync(manifest)
        assert plan.fetch == [] and plan.delete == []
        assert [e["index"] for e in plan.matched] == [e["index"] for e in manifest]
        assert not plan.diverged
        replica.close()

    def test_mismatched_and_extra_segments_are_divergence(self, tmp_path):
        primary = tmp_path / "p"
        store = CheckpointStore(primary)
        store.journal_request("a", {})
        manifest = build_manifest(str(primary))
        store.close()
        root = str(tmp_path / "r")
        os.makedirs(root)
        # Same index, different bytes: provably not the primary's prefix.
        live = manifest[0]["index"]
        with open(os.path.join(root, f"wal-{live:08d}.log"), "wb") as handle:
            handle.write(frame(b'{"kind":"done","rid":"ghost"}'))
        # An index the manifest does not know at all.
        with open(os.path.join(root, "wal-00000005.log"), "wb") as handle:
            handle.write(frame(b'{"kind":"done","rid":"stale"}'))
        replica = ReplicaWal(root)
        plan = replica.plan_sync(manifest)
        assert [e["index"] for e in plan.fetch] == [manifest[0]["index"]]
        assert plan.delete == [5]
        assert plan.diverged
        replica.close()

    def test_empty_stale_segments_do_not_count_as_divergence(self, tmp_path):
        primary = tmp_path / "p"
        CheckpointStore(primary).close()
        manifest = build_manifest(str(primary))
        root = str(tmp_path / "r")
        os.makedirs(root)
        open(os.path.join(root, "wal-00000009.log"), "wb").close()
        replica = ReplicaWal(root)
        plan = replica.plan_sync(manifest)
        assert plan.delete == [9]
        assert not plan.diverged  # zero bytes carry no wrong history
        replica.close()


class TestReplicaWal:
    def test_write_segment_rejects_unverified_bytes(self, tmp_path):
        replica = ReplicaWal(str(tmp_path / "r"))
        entry = {"index": 0, "length": 4, "crc": zlib.crc32(b"good")}
        with pytest.raises(WalCorruptionError):
            replica.write_segment(entry, b"evil")
        assert replica.segments_fetched == 0
        replica.close()

    def test_write_segment_rejects_checksummed_garbage(self, tmp_path):
        # Matches length and CRC but does not frame as WAL records.
        replica = ReplicaWal(str(tmp_path / "r"))
        blob = b"\xff" * 32
        entry = {"index": 0, "length": len(blob), "crc": zlib.crc32(blob)}
        with pytest.raises(WalCorruptionError):
            replica.write_segment(entry, blob)
        replica.close()

    def test_two_replicas_cannot_own_one_directory(self, tmp_path):
        replica = ReplicaWal(str(tmp_path))
        with pytest.raises(StoreLocked):
            ReplicaWal(str(tmp_path))
        replica.close()

    def test_appended_stream_reopens_as_a_real_store(self, tmp_path):
        """The promotion handoff: a replica built purely from shipped
        records closes, and the same directory opens as an exclusive
        CheckpointStore that recovered the shipped state."""
        primary = tmp_path / "p"
        store = CheckpointStore(primary)
        shipped = []
        store.on_append = lambda index, payload: shipped.append((index, payload))
        store.journal_request("r1", {"program": "x"})
        store.journal_request("r2", {})
        store.mark_done("r2")
        store.close()
        replica = ReplicaWal(str(tmp_path / "r"))
        for index, payload in shipped:
            replica.append(index, payload)
        assert replica.records_applied == len(shipped) == 3
        replica.close()
        promoted = CheckpointStore(str(tmp_path / "r"), exclusive=True)
        assert sorted(promoted.pending()) == ["r1"]
        promoted.close()

    def test_append_rotates_when_the_primary_does(self, tmp_path):
        primary = tmp_path / "p"
        store = CheckpointStore(primary, segment_bytes=128)
        shipped = []
        store.on_append = lambda index, payload: shipped.append((index, payload))
        for i in range(8):
            store.journal_request(str(i), {"pad": "x" * 48})
        store.close()
        assert len({index for index, _ in shipped}) > 1
        replica = ReplicaWal(str(tmp_path / "r"))
        for index, payload in shipped:
            replica.append(index, payload)
        replica.close()
        for index in {index for index, _ in shipped}:
            local = _segment_bytes(str(tmp_path / "r"), index)
            remote = _segment_bytes(str(primary), index)
            assert local == remote
        # Every local segment frames cleanly.
        for path in RecoveryManager(str(tmp_path / "r")).segments():
            assert not scan_segment(path).torn

    def test_apply_compact_replaces_the_whole_log(self, tmp_path):
        primary = tmp_path / "p"
        store = CheckpointStore(primary, segment_bytes=128)
        shipped = []
        compacted = []
        store.on_append = lambda index, payload: shipped.append((index, payload))
        store.on_compact = lambda index, data: compacted.append((index, data))
        for i in range(8):
            store.journal_request(str(i), {"pad": "x" * 48})
            if i % 2 == 0:
                store.mark_done(str(i))
        replica = ReplicaWal(str(tmp_path / "r"))
        for index, payload in shipped:
            replica.append(index, payload)
        store.compact()
        assert len(compacted) == 1
        replica.apply_compact(*compacted[0])
        store.close()
        replica.close()
        local = RecoveryManager(str(tmp_path / "r")).segments()
        assert len(local) == 1
        promoted = CheckpointStore(str(tmp_path / "r"), exclusive=True)
        assert sorted(promoted.pending()) == [str(i) for i in range(8) if i % 2]
        promoted.close()

    def test_close_is_idempotent_and_releases_the_lock(self, tmp_path):
        replica = ReplicaWal(str(tmp_path))
        replica.close()
        replica.close()
        with pytest.raises(ValueError):
            replica.append(0, b"{}")
        # The lock is free for the next owner, in this same process.
        second = ReplicaWal(str(tmp_path))
        second.close()
