"""Torn-tail semantics for the WAL's ``update`` record kind.

A kill mid-append can leave a partial update record at the end of the
final segment.  That is a *torn tail* — expected damage — and the store
must truncate it on reopen, not raise :class:`WalCorruptionError`.  The
batch whose record was torn was never acknowledged, so losing it is
correct; everything journaled before it must survive intact.
"""

from __future__ import annotations

import pytest

from repro.durable import CheckpointStore
from repro.incremental import LiveView, UpdateBatch, UpdateOp
from repro.robust.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    TornWrite,
    inject,
)

from .conftest import assert_matches_oracle

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


def _live(tmp_path):
    store = CheckpointStore(tmp_path / "store")
    live = LiveView.open(store, "v", source=PATH, seed=0)
    live.apply(
        UpdateBatch.of(
            [UpdateOp("+", "edge", ("a", "b")), UpdateOp("+", "edge", ("b", "c"))],
            batch_id="init",
        )
    )
    return store, live


class TestTornUpdateRecord:
    def test_torn_tail_truncated_batch_lost_cleanly(self, tmp_path):
        store, live = _live(tmp_path)
        injector = FaultInjector(
            plans=[FaultPlan(site="wal.write", mode="torn", nth=1)]
        )
        with pytest.raises(TornWrite):
            with inject(injector):
                live.apply(
                    UpdateBatch.of(
                        [UpdateOp("+", "edge", ("c", "d"))], batch_id="torn"
                    )
                )
        # Never acked, never applied in memory.
        assert "torn" not in live._applied_ids
        assert ("c", "d") not in set(live.db.facts("edge", 2))
        store.close()

        # Reopen: the partial record is truncated, not a corruption
        # error; the earlier batch survives; the view is consistent at
        # the pre-batch state.
        store = CheckpointStore(tmp_path / "store")
        assert store.recovered.torn_tail is not None
        assert store.metrics.counter("durable/torn_tails") == 1
        recovered = LiveView.open(store, "v")
        assert "init" in recovered._applied_ids
        assert "torn" not in recovered._applied_ids
        assert ("c", "d") not in set(recovered.db.facts("edge", 2))
        assert_matches_oracle(recovered.view, "after torn-tail truncation")
        store.close()

    def test_lost_batch_is_resubmittable_after_truncation(self, tmp_path):
        store, live = _live(tmp_path)
        with pytest.raises(TornWrite):
            with inject(
                FaultInjector(plans=[FaultPlan(site="wal.write", mode="torn")])
            ):
                live.apply(
                    UpdateBatch.of(
                        [UpdateOp("+", "edge", ("c", "d"))], batch_id="b1"
                    )
                )
        store.close()

        store = CheckpointStore(tmp_path / "store")
        recovered = LiveView.open(store, "v")
        # The id was never journaled, so the resubmission is a real
        # apply, not a dedupe skip — exactly-once from the client's view.
        result = recovered.apply(
            UpdateBatch.of([UpdateOp("+", "edge", ("c", "d"))], batch_id="b1")
        )
        assert result is not None
        assert ("c", "d") in set(recovered.db.facts("edge", 2))
        assert_matches_oracle(recovered.view, "after resubmitting the lost batch")
        store.close()


class TestCrashAroundFsync:
    def test_crash_before_write_loses_the_batch(self, tmp_path):
        store, live = _live(tmp_path)
        injector = FaultInjector(
            plans=[FaultPlan(site="wal.write", mode="crash", nth=1)]
        )
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                live.apply(
                    UpdateBatch.of(
                        [UpdateOp("+", "edge", ("c", "d"))], batch_id="b1"
                    )
                )
        store.close()

        store = CheckpointStore(tmp_path / "store")
        # Nothing was written at all: clean log, batch absent.
        assert store.recovered.torn_tail is None
        recovered = LiveView.open(store, "v")
        assert "b1" not in recovered._applied_ids
        assert_matches_oracle(recovered.view, "after a pre-write crash")
        store.close()

    def test_crash_between_write_and_fsync_keeps_the_batch(self, tmp_path):
        store, live = _live(tmp_path)
        injector = FaultInjector(
            plans=[FaultPlan(site="wal.fsync", mode="crash", nth=1)]
        )
        with pytest.raises(SimulatedCrash):
            with inject(injector):
                live.apply(
                    UpdateBatch.of(
                        [UpdateOp("+", "edge", ("c", "d"))], batch_id="b1"
                    )
                )
        store.close()

        # The record hit the file before the crash (the fsync was only a
        # durability barrier, and the same-process file write is visible
        # on reopen): the batch replays exactly once.
        store = CheckpointStore(tmp_path / "store")
        recovered = LiveView.open(store, "v")
        assert "b1" in recovered._applied_ids
        assert ("c", "d") in set(recovered.db.facts("edge", 2))
        assert_matches_oracle(recovered.view, "after a pre-fsync crash")
        assert (
            recovered.apply(
                UpdateBatch.of([UpdateOp("+", "edge", ("c", "d"))], batch_id="b1")
            )
            is None
        ), "the journaled batch must dedupe, not double-apply"
        store.close()
