"""Long-stream soak: hundreds of random insert/delete batches against a
maintained view, differentially checked against the from-scratch oracle.

The default sizing keeps the suite fast; the nightly job widens it via
``REPRO_STREAM_OPS`` (total operations per stream), the same env-knob
pattern as ``REPRO_CRASH_POINTS`` / ``REPRO_CHAOS_SEEDS``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.incremental import MaterializedView, UpdateBatch, UpdateOp

from .conftest import assert_matches_oracle, random_op

#: Operations per soak stream; nightly exports e.g. REPRO_STREAM_OPS=600.
STREAM_OPS = int(os.environ.get("REPRO_STREAM_OPS", "120"))
#: Full oracle comparisons are O(model); amortize them over the stream.
CHECK_EVERY = max(1, STREAM_OPS // 24)

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

DIST = """
dist(S, 0) <- source(S).
dist(Y, D) <- dist(X, DX), g(X, Y, C), D = DX + C, least(D, Y).
"""

NODES = [f"n{i}" for i in range(12)]


def _soak(view, pred, make_fact, stream_seed, batch_size=2):
    rng = random.Random(stream_seed)
    steps = max(1, STREAM_OPS // batch_size)
    for step in range(steps):
        ops = [random_op(rng, view, pred, make_fact) for _ in range(batch_size)]
        view.apply(UpdateBatch.of(ops, batch_id=f"soak-{step}"))
        if step % CHECK_EVERY == 0:
            assert_matches_oracle(view, f"at step {step}")
    assert_matches_oracle(view, f"after {steps} batches of {batch_size}")


class TestSoakStreams:
    @pytest.mark.parametrize("engine,seed", [("rql", 0), ("naive", 1)])
    def test_recursive_reachability_stream(self, engine, seed):
        view = MaterializedView(PATH, engine=engine, seed=seed)
        view.apply(
            UpdateBatch.of(
                [UpdateOp("+", "edge", ("n0", "n1")), UpdateOp("+", "edge", ("n1", "n2"))],
                batch_id="init",
            )
        )
        _soak(
            view,
            "edge",
            lambda rng: (rng.choice(NODES), rng.choice(NODES)),
            stream_seed=100 + seed,
        )

    @pytest.mark.parametrize("engine,seed", [("rql", 3), ("basic", 4)])
    def test_choice_clique_stream(self, engine, seed):
        view = MaterializedView(SORTING, engine=engine, seed=seed)
        view.apply(
            UpdateBatch.of(
                [UpdateOp("+", "p", (f"i{k}", (37 * k) % 53)) for k in range(10)],
                batch_id="init",
            )
        )
        _soak(
            view,
            "p",
            lambda rng: (f"i{rng.randrange(40)}", rng.randrange(1, 60)),
            stream_seed=200 + seed,
            batch_size=1,
        )

    @pytest.mark.parametrize("engine,seed", [("rql", 7), ("choice", 8)])
    def test_premappable_extrema_stream(self, engine, seed):
        view = MaterializedView(DIST, engine=engine, seed=seed)
        view.apply(
            UpdateBatch.of(
                [
                    UpdateOp("+", "source", ("n0",)),
                    UpdateOp("+", "g", ("n0", "n1", 3)),
                    UpdateOp("+", "g", ("n1", "n2", 2)),
                ],
                batch_id="init",
            )
        )
        _soak(
            view,
            "g",
            lambda rng: (
                rng.choice(NODES[:8]),
                rng.choice(NODES[:8]),
                rng.randrange(1, 12),
            ),
            stream_seed=300 + seed,
        )
