"""LiveView durability mechanics: reopen, snapshot compaction, dedupe,
and the guard rails around the journaled program text.
"""

from __future__ import annotations

import pytest

from repro.durable import CheckpointStore
from repro.errors import RecoveryError
from repro.incremental import LiveView, UpdateBatch, UpdateOp

from .conftest import assert_matches_oracle

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

OTHER = """
link(X, Y) :- edge(X, Y).
"""


def _batch(i, op, fact):
    return UpdateBatch.of([UpdateOp(op, "edge", fact)], batch_id=f"b{i}")


class TestReopen:
    def test_reopen_replays_base_and_batches(self, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH, seed=3)
        live.apply(_batch(0, "+", ("a", "b")))
        live.apply(_batch(1, "+", ("b", "c")))
        live.apply(_batch(2, "-", ("a", "b")))
        expected = live.db.as_dict()
        store.close()

        store = CheckpointStore(tmp_path)
        recovered = LiveView.open(store, "v")
        assert recovered.db.as_dict() == expected
        assert recovered.view.seed == 3
        assert recovered._applied_ids == {"b0", "b1", "b2"}
        assert_matches_oracle(recovered.view, "after reopen")
        store.close()

    def test_missing_view_without_source_is_a_recovery_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(RecoveryError, match="no program"):
            LiveView.open(store, "ghost")
        store.close()

    def test_program_mismatch_is_a_recovery_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        LiveView.open(store, "v", source=PATH, seed=0)
        store.close()
        store = CheckpointStore(tmp_path)
        with pytest.raises(RecoveryError, match="different program"):
            LiveView.open(store, "v", source=OTHER, seed=0)
        store.close()

    def test_matching_source_on_reopen_is_fine(self, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH, seed=0)
        live.apply(_batch(0, "+", ("a", "b")))
        store.close()
        store = CheckpointStore(tmp_path)
        recovered = LiveView.open(store, "v", source=PATH, seed=0)
        assert ("a", "b") in set(recovered.db.facts("edge", 2))
        store.close()


class TestDedupe:
    def test_resubmitted_batch_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH, seed=0)
        assert live.apply(_batch(0, "+", ("a", "b"))) is not None
        assert live.apply(_batch(0, "+", ("a", "b"))) is None
        # The dup was not journaled twice and not applied twice.
        assert len(set(live.db.facts("edge", 2))) == 1
        store.close()

    def test_dedupe_survives_reopen(self, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH, seed=0)
        live.apply(_batch(0, "+", ("a", "b")))
        store.close()
        store = CheckpointStore(tmp_path)
        recovered = LiveView.open(store, "v")
        assert recovered.apply(_batch(0, "+", ("x", "y"))) is None
        assert ("x", "y") not in set(recovered.db.facts("edge", 2))
        store.close()


class TestSnapshotAndCompaction:
    def test_snapshot_then_compact_preserves_the_view(self, tmp_path):
        store = CheckpointStore(tmp_path, segment_bytes=512)
        live = LiveView.open(store, "v", source=PATH, seed=0)
        for i in range(12):
            live.apply(_batch(i, "+", (f"n{i}", f"n{i + 1}")))
        expected = live.db.as_dict()
        live.snapshot()
        removed = store.compact()
        assert removed >= 1, "snapshot should make old segments compactable"
        store.close()

        store = CheckpointStore(tmp_path)
        recovered = LiveView.open(store, "v")
        assert recovered.db.as_dict() == expected
        # Snapshot folds the history; applied ids are superseded by the
        # base but fresh batches keep flowing.
        recovered.apply(_batch(99, "-", ("n0", "n1")))
        assert_matches_oracle(recovered.view, "after compaction + a delete")
        store.close()


class TestClose:
    def test_close_discard_drops_the_journal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH, seed=0)
        live.apply(_batch(0, "+", ("a", "b")))
        live.close(discard=True)
        assert store.view_log("v") is None
        store.close()
        store = CheckpointStore(tmp_path)
        with pytest.raises(RecoveryError):
            LiveView.open(store, "v")
        store.close()
