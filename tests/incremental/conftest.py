"""Shared machinery for the incremental-maintenance suite.

The one invariant every test here leans on: after any sequence of
applied batches, the maintained view equals the from-scratch oracle —
``solve_program`` over the view's *current* extensional facts with the
same engine and seed.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.core.compiler import solve_program
from repro.incremental import MaterializedView, UpdateBatch, UpdateOp


def oracle_db(view) -> "object":
    """The from-scratch model over the view's current EDB."""
    facts = {}
    for (name, _arity), rows in view.edb_facts().items():
        facts.setdefault(name, []).extend(rows)
    return solve_program(
        view.program,
        facts=facts,
        seed=view.seed,
        engine=view.engine,
        order=view.order,
        extrema=view.extrema,
    )


def assert_matches_oracle(view, context="") -> None:
    got = view.db.as_dict()
    want = oracle_db(view).as_dict()
    assert got == want, (
        f"view diverged from the from-scratch oracle {context}\n"
        f"  extra:   { {k: sorted(v - want.get(k, frozenset()), key=repr) for k, v in got.items() if v - want.get(k, frozenset())} }\n"
        f"  missing: { {k: sorted(v - got.get(k, frozenset()), key=repr) for k, v in want.items() if v - got.get(k, frozenset())} }"
    )


def random_op(rng: random.Random, view, pred: str, make_fact) -> UpdateOp:
    """Delete a present fact with probability ~0.45, else insert a fresh
    (or colliding — set semantics) one."""
    arity = len(make_fact(rng))
    present = sorted(set(view.db.facts(pred, arity)), key=repr)
    deletable = [f for f in present if f not in view._ground.get((pred, arity), ())]
    if deletable and rng.random() < 0.45:
        return UpdateOp("-", pred, rng.choice(deletable))
    return UpdateOp("+", pred, make_fact(rng))


def drive_stream(
    source: str,
    engine: str,
    seed: int,
    stream_seed: int,
    pred: str,
    make_fact,
    initial: Iterable[Tuple],
    steps: int = 14,
    batch_size: int = 1,
    check_every: int = 1,
) -> "MaterializedView":
    """Build a view, seed it with *initial* facts, then drive a seeded
    random insert/delete stream, differentially checking against the
    oracle every *check_every* steps (and always at the end)."""
    view = MaterializedView(source, engine=engine, seed=seed)
    init_ops: List[UpdateOp] = [UpdateOp("+", pred, tuple(f)) for f in initial]
    if init_ops:
        view.apply(UpdateBatch.of(init_ops, batch_id="init"))
        assert_matches_oracle(view, "after the initial load")
    rng = random.Random(stream_seed)
    for step in range(steps):
        ops = [random_op(rng, view, pred, make_fact) for _ in range(batch_size)]
        view.apply(UpdateBatch.of(ops, batch_id=f"s{step}"))
        if step % check_every == 0 or step == steps - 1:
            assert_matches_oracle(view, f"at step {step} ({ops})")
    return view
