"""The differential battery: incremental maintenance ≡ from-scratch.

Every test drives a seeded random insert/delete stream through a
:class:`MaterializedView` and checks, step by step, that the maintained
model equals ``solve_program`` over the view's current extensional facts
with the same engine and seed.  The parametrization spans all five
engines and every unit kind — plain recursion (DRed + counting),
choice/stage cliques (Prim, sorting), premappable recursive extrema
(shortest distances), non-recursive extrema, and negation — for 50+
distinct streams in total.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import UpdateError
from repro.incremental import MaterializedView, UpdateBatch, UpdateOp

from .conftest import assert_matches_oracle, drive_stream

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

PRIM = """
prm(nil, S, 0, 0) <- source(S).
prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
"""

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

DIST = """
dist(S, 0) <- source(S).
dist(Y, D) <- dist(X, DX), g(X, Y, C), D = DX + C, least(D, Y).
"""

BEST_OFFER = """
best(X, C) <- offer(X, C), least(C, X).
pick(X) <- best(X, C), C < 100.
"""

UNREACHABLE = """
reach(X) <- source(X).
reach(Y) <- reach(X), edge(X, Y).
unreach(X) <- node(X), not reach(X).
"""

NODES = ["a", "b", "c", "d", "e", "f"]


def _edge2(rng: random.Random):
    return (rng.choice(NODES), rng.choice(NODES))


def _edge3(rng: random.Random):
    x, y = rng.sample(NODES, 2)
    return (x, y, rng.randint(1, 9))


def _item(rng: random.Random):
    return (f"i{rng.randint(0, 40)}", rng.randint(1, 50))


def _offer(rng: random.Random):
    return (rng.choice(["x", "y", "z"]), rng.randint(1, 300))


class TestPlainRecursion:
    """DRed over the delta-specialized plan cache, all five engines."""

    @pytest.mark.parametrize("engine", ["rql", "basic", "choice", "naive", "seminaive"])
    @pytest.mark.parametrize("stream_seed", [1, 2, 3, 4])
    def test_path_stream(self, engine, stream_seed):
        drive_stream(
            PATH,
            engine,
            seed=0,
            stream_seed=stream_seed,
            pred="edge",
            make_fact=_edge2,
            initial=[("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"), ("d", "a")],
        )

    def test_batched_ops_including_cross_terms(self):
        # Multi-op batches force the non-simple counting/DRed paths
        # (several changed facts in one rule instantiation).
        drive_stream(
            PATH,
            "rql",
            seed=0,
            stream_seed=9,
            pred="edge",
            make_fact=_edge2,
            initial=[("a", "b"), ("b", "c")],
            steps=10,
            batch_size=4,
        )


class TestChoiceCliques:
    """Targeted invalidation of choice/stage cliques (Prim's MST)."""

    # The choice engine rejects ``next`` goals outright, identically in
    # the view and the oracle — covered by the plain-choice program in
    # TestChoiceOnly below.
    @pytest.mark.parametrize("engine", ["rql", "basic"])
    @pytest.mark.parametrize("stream_seed", [5, 6, 7])
    def test_prim_stream(self, engine, stream_seed):
        view = MaterializedView(PRIM, engine=engine, seed=3)
        edges = [("a", "b", 3), ("b", "c", 1), ("a", "c", 5), ("c", "d", 2)]
        ops = [UpdateOp("+", "g", e) for e in edges]
        ops += [UpdateOp("+", "g", (y, x, c)) for (x, y, c) in edges]
        ops.append(UpdateOp("+", "source", ("a",)))
        view.apply(UpdateBatch.of(ops, batch_id="init"))
        assert_matches_oracle(view, "after the initial load")
        rng = random.Random(stream_seed)
        for step in range(12):
            present = sorted(set(view.db.facts("g", 3)))
            if present and rng.random() < 0.4:
                op = UpdateOp("-", "g", rng.choice(present))
            else:
                op = UpdateOp("+", "g", _edge3(rng))
            view.apply(UpdateBatch.of([op], batch_id=f"s{step}"))
            assert_matches_oracle(view, f"at step {step} ({op})")

    @pytest.mark.parametrize("engine", ["rql", "basic", "choice"])
    @pytest.mark.parametrize("stream_seed", [51, 52])
    def test_assignment_stream(self, engine, stream_seed):
        """A pure choice clique (no stages) runs on the choice engine too."""
        view = MaterializedView(
            "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).",
            engine=engine,
            seed=1,
        )
        rng = random.Random(stream_seed)
        students = [f"s{i}" for i in range(5)]
        courses = [f"c{j}" for j in range(3)]
        view.apply(
            UpdateBatch.of(
                [
                    UpdateOp("+", "takes", (s, c))
                    for s in students
                    for c in courses
                    if rng.random() < 0.6
                ],
                batch_id="init",
            )
        )
        assert_matches_oracle(view, "after the initial load")
        for step in range(10):
            present = sorted(set(view.db.facts("takes", 2)))
            if present and rng.random() < 0.45:
                op = UpdateOp("-", "takes", rng.choice(present))
            else:
                op = UpdateOp(
                    "+", "takes", (rng.choice(students), rng.choice(courses))
                )
            view.apply(UpdateBatch.of([op], batch_id=f"s{step}"))
            assert_matches_oracle(view, f"at step {step} ({op})")

    @pytest.mark.parametrize("stream_seed", [11, 12])
    def test_sorting_stream(self, stream_seed):
        drive_stream(
            SORTING,
            "rql",
            seed=0,
            stream_seed=stream_seed,
            pred="p",
            make_fact=_item,
            initial=[(f"i{k}", c) for k, c in enumerate([5, 3, 8, 1, 9, 2, 7])],
        )

    def test_untouched_clique_is_skipped(self):
        view = MaterializedView(SORTING, engine="rql", seed=0)
        view.apply(
            UpdateBatch.of(
                [UpdateOp("+", "p", ("a", 2)), UpdateOp("+", "p", ("b", 1))],
                batch_id="init",
            )
        )
        # An op that nets to nothing touches no unit at all.
        result = view.apply(
            UpdateBatch.of([UpdateOp("+", "p", ("a", 2))], batch_id="dup")
        )
        assert result.units_touched == 0
        assert result.units_recomputed == 0
        assert_matches_oracle(view)


class TestExtrema:
    """Premappable recursive extrema repaired via the runner-up ledger."""

    @pytest.mark.parametrize("engine", ["rql", "basic", "choice"])
    @pytest.mark.parametrize("stream_seed", [21, 22, 23])
    def test_shortest_distance_stream(self, engine, stream_seed):
        view = MaterializedView(DIST, engine=engine, seed=0)
        edges = [("a", "b", 3), ("b", "c", 1), ("a", "c", 5), ("c", "d", 2), ("a", "d", 9)]
        view.apply(
            UpdateBatch.of(
                [UpdateOp("+", "g", e) for e in edges]
                + [UpdateOp("+", "source", ("a",))],
                batch_id="init",
            )
        )
        assert_matches_oracle(view, "after the initial load")
        rng = random.Random(stream_seed)
        for step in range(16):
            present = sorted(set(view.db.facts("g", 3)))
            if present and rng.random() < 0.45:
                op = UpdateOp("-", "g", rng.choice(present))
            else:
                op = UpdateOp("+", "g", _edge3(rng))
            view.apply(UpdateBatch.of([op], batch_id=f"s{step}"))
            assert_matches_oracle(view, f"at step {step} ({op})")

    def test_deleted_best_repairs_from_runner_up(self):
        view = MaterializedView(DIST, engine="rql", seed=0)
        view.apply(
            UpdateBatch.of(
                [
                    UpdateOp("+", "source", ("a",)),
                    UpdateOp("+", "g", ("a", "b", 2)),
                    UpdateOp("+", "g", ("a", "b", 7)),
                ],
                batch_id="init",
            )
        )
        assert set(view.db.facts("dist", 2)) == {("a", 0), ("b", 2)}
        # Killing the best leaves the runner-up derivation; the repair
        # promotes it without a from-scratch recompute.
        result = view.apply(
            UpdateBatch.of([UpdateOp("-", "g", ("a", "b", 2))], batch_id="kill")
        )
        assert set(view.db.facts("dist", 2)) == {("a", 0), ("b", 7)}
        assert result.units_recomputed == 0
        assert_matches_oracle(view)

    @pytest.mark.parametrize("engine", ["rql", "basic"])
    @pytest.mark.parametrize("stream_seed", [31, 32])
    def test_nonrecursive_extrema_stream(self, engine, stream_seed):
        drive_stream(
            BEST_OFFER,
            engine,
            seed=0,
            stream_seed=stream_seed,
            pred="offer",
            make_fact=_offer,
            initial=[("x", 5), ("x", 9), ("y", 200)],
        )


class TestNegation:
    """A changed input under negation forces the sound full-recompute."""

    @pytest.mark.parametrize("engine", ["rql", "naive", "seminaive"])
    @pytest.mark.parametrize("stream_seed", [41, 42])
    def test_unreachable_stream(self, engine, stream_seed):
        view = MaterializedView(UNREACHABLE, engine=engine, seed=0)
        view.apply(
            UpdateBatch.of(
                [UpdateOp("+", "node", (n,)) for n in NODES]
                + [UpdateOp("+", "source", ("a",)), UpdateOp("+", "edge", ("a", "b"))],
                batch_id="init",
            )
        )
        assert_matches_oracle(view, "after the initial load")
        rng = random.Random(stream_seed)
        for step in range(12):
            present = sorted(set(view.db.facts("edge", 2)))
            if present and rng.random() < 0.45:
                op = UpdateOp("-", "edge", rng.choice(present))
            else:
                op = UpdateOp("+", "edge", _edge2(rng))
            view.apply(UpdateBatch.of([op], batch_id=f"s{step}"))
            assert_matches_oracle(view, f"at step {step} ({op})")


class TestValidation:
    """Bad batches are rejected before any mutation."""

    def test_idb_update_rejected(self):
        view = MaterializedView(PATH, engine="rql", seed=0)
        view.apply(UpdateBatch.of([UpdateOp("+", "edge", ("a", "b"))], batch_id="i"))
        before = view.db.as_dict()
        with pytest.raises(UpdateError, match="derived"):
            view.apply(
                UpdateBatch.of([UpdateOp("+", "path", ("a", "z"))], batch_id="bad")
            )
        assert view.db.as_dict() == before

    def test_arity_mismatch_rejected(self):
        view = MaterializedView(PATH, engine="rql", seed=0)
        with pytest.raises(UpdateError, match="arity"):
            view.apply(
                UpdateBatch.of([UpdateOp("+", "edge", ("a", "b", "c"))], batch_id="bad")
            )

    def test_program_text_facts_are_permanent(self):
        view = MaterializedView(
            "e(a, b). p(X, Y) :- e(X, Y).", engine="rql", seed=0
        )
        with pytest.raises(UpdateError, match="program text"):
            view.apply(UpdateBatch.of([UpdateOp("-", "e", ("a", "b"))], batch_id="bad"))

    def test_rejected_batch_is_atomic(self):
        view = MaterializedView(PATH, engine="rql", seed=0)
        view.apply(UpdateBatch.of([UpdateOp("+", "edge", ("a", "b"))], batch_id="i"))
        before = view.db.as_dict()
        # The first op alone would be fine; the second poisons the batch.
        with pytest.raises(UpdateError):
            view.apply(
                UpdateBatch.of(
                    [
                        UpdateOp("+", "edge", ("b", "c")),
                        UpdateOp("+", "path", ("x", "y")),
                    ],
                    batch_id="bad",
                )
            )
        assert view.db.as_dict() == before


class TestMetrics:
    def test_apply_populates_the_incremental_registry(self):
        view = MaterializedView(PATH, engine="rql", seed=0)
        view.apply(UpdateBatch.of([UpdateOp("+", "edge", ("a", "b"))], batch_id="i"))
        view.apply(UpdateBatch.of([UpdateOp("-", "edge", ("a", "b"))], batch_id="d"))
        registry = view.tracer.registry
        assert registry.counter("incremental/batches") == 2
        series = registry.snapshot().get("series", {})
        assert series.get("incremental/apply_seconds", {}).get("count") == 2
