"""The stage-checkpoint fast path: deletion-only repairs resume from a
mid-run governor checkpoint instead of re-running the clique.

Soundness gates are exercised both ways: streams where the fast path
fires must still match the from-scratch oracle, and every guard that
makes it ineligible (insertions, non-candidate touches, candidate inside
the clique, used/sibling congruence classes) must fall back to the full
recompute — correctly, never silently wrong.
"""

from __future__ import annotations

import random

from repro.incremental import MaterializedView, UpdateBatch, UpdateOp

from .conftest import assert_matches_oracle

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

PRIM = """
prm(nil, S, 0, 0) <- source(S).
prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
"""

ITEMS = [(f"i{k}", c) for k, c in enumerate(
    [5, 3, 8, 1, 9, 2, 7, 4, 6, 10, 12, 11, 14, 13, 15, 16, 18, 17, 20, 19,
     22, 21, 24, 23, 26, 25, 28, 27, 30, 29, 32, 31, 34, 33, 36, 35]
)]


def _loaded_sorting_view():
    view = MaterializedView(SORTING, engine="rql", seed=0)
    view.apply(
        UpdateBatch.of([UpdateOp("+", "p", it) for it in ITEMS], batch_id="init")
    )
    return view


class TestFastPathFires:
    def test_deletions_resume_from_checkpoints(self):
        view = _loaded_sorting_view()
        rng = random.Random(5)
        resumed = 0
        for step in range(25):
            present = sorted(set(view.db.facts("p", 2)))
            result = view.apply(
                UpdateBatch.of(
                    [UpdateOp("-", "p", rng.choice(present))], batch_id=f"s{step}"
                )
            )
            resumed += result.fast_path_resumes
            assert_matches_oracle(view, f"at step {step}")
        # With 36 items and checkpoint interval 16 the tape is populated;
        # a healthy majority of the tail deletions resume mid-run.
        assert resumed >= 5

    def test_resume_repopulates_the_tape(self):
        view = _loaded_sorting_view()
        # Delete the final item (largest cost): the newest checkpoint is
        # eligible, and the resumed run records a fresh tape so the NEXT
        # deletion can fast-path again.
        result1 = view.apply(
            UpdateBatch.of([UpdateOp("-", "p", ("i35", 35))], batch_id="d1")
        )
        assert result1.fast_path_resumes == 1
        assert_matches_oracle(view)
        result2 = view.apply(
            UpdateBatch.of([UpdateOp("-", "p", ("i33", 33))], batch_id="d2")
        )
        assert result2.fast_path_resumes == 1
        assert_matches_oracle(view)


class TestFastPathGuards:
    def test_insertion_falls_back(self):
        view = _loaded_sorting_view()
        result = view.apply(
            UpdateBatch.of([UpdateOp("+", "p", ("zz", 100))], batch_id="ins")
        )
        assert result.fast_path_resumes == 0
        assert result.units_recomputed == 1
        assert_matches_oracle(view)

    def test_mixed_batch_falls_back(self):
        view = _loaded_sorting_view()
        result = view.apply(
            UpdateBatch.of(
                [UpdateOp("-", "p", ("i35", 35)), UpdateOp("+", "p", ("zz", 100))],
                batch_id="mix",
            )
        )
        assert result.fast_path_resumes == 0
        assert_matches_oracle(view)

    def test_candidate_inside_the_clique_never_fast_paths(self):
        # Prim's candidate relation (new_g) is derived inside the
        # clique, so deletions of g can never resume mid-run.
        view = MaterializedView(PRIM, engine="rql", seed=3)
        edges = [("a", "b", 3), ("b", "c", 1), ("a", "c", 5), ("c", "d", 2)]
        ops = [UpdateOp("+", "g", e) for e in edges]
        ops.append(UpdateOp("+", "source", ("a",)))
        view.apply(UpdateBatch.of(ops, batch_id="init"))
        result = view.apply(
            UpdateBatch.of([UpdateOp("-", "g", ("a", "c", 5))], batch_id="del")
        )
        assert result.fast_path_resumes == 0
        assert_matches_oracle(view)

    def test_early_deletion_skips_poisoned_checkpoints(self):
        view = _loaded_sorting_view()
        # Deleting the *cheapest* item invalidates every checkpoint
        # taken after it was used; the repair must fall back (or pick a
        # checkpoint from before the use) and still match the oracle.
        result = view.apply(
            UpdateBatch.of([UpdateOp("-", "p", ("i3", 1))], batch_id="cheap")
        )
        assert result.fast_path_resumes == 0
        assert result.units_recomputed == 1
        assert_matches_oracle(view)

    def test_fast_path_counter_lands_in_the_registry(self):
        view = _loaded_sorting_view()
        view.apply(UpdateBatch.of([UpdateOp("-", "p", ("i35", 35))], batch_id="d"))
        assert view.tracer.registry.counter("incremental/fast_path_resumes") == 1
