"""The incremental chaos matrix: faults at every repair phase, crashes
at every WAL boundary of the update journal, and a real SIGKILL.

The contract: a fault mid-repair may wreck the in-memory derived state,
but recovery — ``rebuild()`` for the plain view, the journal reopen for
:class:`LiveView` — always lands on exactly the from-scratch oracle over
the surviving extensional facts, with zero lost and zero double-applied
update batches.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.compiler import solve_program
from repro.durable import CheckpointStore
from repro.incremental import LiveView, MaterializedView, UpdateBatch, UpdateOp
from repro.robust.faults import (
    INCREMENTAL_SITES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    inject,
)

from .conftest import assert_matches_oracle

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

DIST = """
dist(S, 0) <- source(S).
dist(Y, D) <- dist(X, DX), g(X, Y, C), D = DX + C, least(D, Y).
"""

# Non-recursive, extrema-free: a counting unit, so the
# ``incremental.count`` site actually fires in the mixed program.
HOPS = """
hop2(X, Z) <- edge(X, Y), edge(Y, Z).
"""

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""


def _mixed_view():
    """One view whose applies traverse all three repair phases:
    counting/DRed (path), extrema repair (dist), rng repair (sp)."""
    source = PATH + HOPS + DIST + SORTING
    view = MaterializedView(source, engine="rql", seed=0)
    view.apply(
        UpdateBatch.of(
            [
                UpdateOp("+", "edge", ("a", "b")),
                UpdateOp("+", "edge", ("b", "c")),
                UpdateOp("+", "g", ("a", "b", 2)),
                UpdateOp("+", "g", ("b", "c", 3)),
                UpdateOp("+", "source", ("a",)),
                UpdateOp("+", "p", ("x", 4)),
                UpdateOp("+", "p", ("y", 1)),
            ],
            batch_id="init",
        )
    )
    return view


MIXED_BATCH = [
    UpdateOp("-", "edge", ("b", "c")),
    UpdateOp("+", "edge", ("a", "c")),
    UpdateOp("-", "g", ("a", "b", 2)),
    UpdateOp("+", "g", ("a", "c", 1)),
    UpdateOp("-", "p", ("y", 1)),
    UpdateOp("+", "p", ("z", 9)),
]


class TestRepairPhaseFaults:
    """Injected errors at each repair phase; rebuild() recovers."""

    @pytest.mark.parametrize("site", INCREMENTAL_SITES)
    def test_fault_then_rebuild_matches_oracle(self, site):
        view = _mixed_view()
        injector = FaultInjector(plans=[FaultPlan(site=site, mode="error")])
        with pytest.raises(FaultInjected):
            with inject(injector):
                view.apply(UpdateBatch.of(MIXED_BATCH, batch_id="chaos"))
        assert injector.fired, f"no visit reached {site}"
        # The EDB mutations landed before the repair died; rebuild
        # recovers the derived state over exactly that EDB.
        view.rebuild()
        assert_matches_oracle(view, f"after rebuild from a {site} fault")

    @pytest.mark.parametrize("site", INCREMENTAL_SITES)
    @pytest.mark.parametrize("nth", [1, 2])
    def test_wake_mode_is_benign(self, site, nth):
        view = _mixed_view()
        injector = FaultInjector(
            plans=[FaultPlan(site=site, mode="wake", nth=nth)]
        )
        with inject(injector):
            view.apply(UpdateBatch.of(MIXED_BATCH, batch_id="wake"))
        assert_matches_oracle(view, f"after a benign {site} visit")


class TestLiveViewFaults:
    """A fault mid-apply on a durable view: the journal is the truth."""

    @pytest.mark.parametrize("site", INCREMENTAL_SITES)
    def test_reopened_view_still_applies_the_batch(self, site, tmp_path):
        store = CheckpointStore(tmp_path)
        live = LiveView.open(store, "v", source=PATH + HOPS + DIST + SORTING, seed=0)
        live.apply(
            UpdateBatch.of(
                [
                    UpdateOp("+", "edge", ("a", "b")),
                    UpdateOp("+", "g", ("a", "b", 2)),
                    UpdateOp("+", "source", ("a",)),
                    UpdateOp("+", "p", ("x", 4)),
                ],
                batch_id="init",
            )
        )
        injector = FaultInjector(plans=[FaultPlan(site=site, mode="error")])
        with pytest.raises(FaultInjected):
            with inject(injector):
                live.apply(UpdateBatch.of(MIXED_BATCH[:4], batch_id="chaos"))
        # The batch was journaled before the repair died, so the
        # self-reopened view (and any later recovery) includes it —
        # exactly once.
        assert "chaos" in live._applied_ids
        assert_matches_oracle(live.view, f"after self-reopen from {site}")
        assert live.apply(UpdateBatch.of(MIXED_BATCH[:4], batch_id="chaos")) is None
        store.close()


class TestJournalCrashes:
    """Simulated process death inside the update-journal append."""

    @pytest.mark.parametrize("crash_after", [1, 2, 3])
    def test_crash_during_journal_keeps_acked_batches(self, crash_after, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        live = LiveView.open(store, "v", source=PATH, seed=0)
        acked = []
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"), ("d", "e")]
        crashed = False
        with inject(FaultInjector(), crash_after=crash_after):
            for i, edge in enumerate(edges):
                batch = UpdateBatch.of(
                    [UpdateOp("+", "edge", edge)], batch_id=f"b{i}"
                )
                try:
                    live.apply(batch)
                    acked.append(batch.batch_id)
                except SimulatedCrash:
                    crashed = True
                    break
        assert crashed, "the crash countdown never fired"
        store.close()

        # "Restart": every acked batch survives; the model equals the
        # oracle over the recovered EDB; nothing applied twice.
        store = CheckpointStore(tmp_path / "store")
        recovered = LiveView.open(store, "v")
        assert set(acked) <= recovered._applied_ids, "an acked batch was lost"
        assert_matches_oracle(recovered.view, "after crash recovery")
        for batch_id in acked:
            assert (
                recovered.apply(
                    UpdateBatch.of([UpdateOp("+", "edge", ("z", "z"))], batch_id=batch_id)
                )
                is None
            ), "an acked batch was not recognized (double-apply risk)"
        store.close()


class TestRealSigkill:
    """SIGKILL a live-view worker process mid-stream; recover in-process."""

    CHILD = r"""
import sys
from repro.durable import CheckpointStore
from repro.incremental import LiveView, UpdateBatch, UpdateOp

PATH = '''
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
'''
NODES = ["a", "b", "c", "d", "e", "f", "g", "h"]
store = CheckpointStore(sys.argv[1])
live = LiveView.open(store, "v", source=PATH, seed=0)
for i in range(2000):
    x = NODES[(7 * i) % len(NODES)]
    y = NODES[(3 * i + 1) % len(NODES)]
    op = "-" if (i % 5 == 4) else "+"
    batch = UpdateBatch.of([UpdateOp(op, "edge", (x, y))], batch_id=f"b{i}")
    try:
        live.apply(batch)
    except Exception:
        # deleting an absent fact nets to nothing; only real repair
        # errors matter here
        raise
    print(f"acked b{i}", flush=True)
"""

    def test_killed_stream_recovers_exactly_once(self, tmp_path):
        store_dir = tmp_path / "store"
        src = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
        )
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD, str(store_dir)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        acked = []
        deadline = time.monotonic() + 120.0
        try:
            while len(acked) < 25 and time.monotonic() < deadline:
                line = child.stdout.readline()
                if not line:
                    raise AssertionError(
                        f"child exited early (rc={child.poll()})"
                    )
                if line.startswith("acked "):
                    acked.append(line.split()[1])
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL
        assert len(acked) >= 25

        store = CheckpointStore(store_dir)
        recovered = LiveView.open(store, "v")
        # Zero lost: every acked batch is journaled and applied.
        missing = [b for b in acked if b not in recovered._applied_ids]
        assert not missing, f"acked batches lost by the crash: {missing}"
        # Zero double-applied / full consistency: the recovered model is
        # the from-scratch oracle over the recovered EDB.
        facts = {}
        for (name, _a), rows in recovered.view.edb_facts().items():
            facts.setdefault(name, []).extend(rows)
        oracle = solve_program(PATH, facts=facts, seed=0, engine="rql")
        assert recovered.db.as_dict() == oracle.as_dict()
        # Resubmitting an acked batch is recognized and skipped.
        assert (
            recovered.apply(
                UpdateBatch.of([UpdateOp("+", "edge", ("q", "q"))], batch_id=acked[0])
            )
            is None
        )
        store.close()
