"""The serving layer's live-update path: ``QueryRequest.updates`` routed
through a maintained view instead of a from-scratch evaluation.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.durable import CheckpointStore
from repro.errors import UpdateError
from repro.serve import OK, FAILED, QueryRequest, QueryService

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""


@pytest.fixture()
def service():
    svc = QueryService(workers=2, reset_timeout=60.0)
    yield svc
    svc.close()


def _oracle(program, facts, seed=0, engine="rql"):
    return solve_program(
        program, {k: list(v) for k, v in facts.items()}, seed=seed, engine=engine
    ).as_dict()


class TestLiveRequests:
    def test_insert_batches_accumulate_in_the_view(self, service):
        first = service.evaluate(
            QueryRequest(program=PATH, facts={"edge": [("a", "b")]}, updates=[]),
            timeout=30,
        )
        assert first.status == OK
        second = service.evaluate(
            QueryRequest(program=PATH, updates=['+ edge(b, c)']),
            timeout=30,
        )
        assert second.status == OK
        want = _oracle(PATH, {"edge": [("a", "b"), ("b", "c")]})
        assert second.database.as_dict() == want

    def test_deletes_repair_the_view(self, service):
        service.evaluate(
            QueryRequest(
                program=PATH,
                facts={"edge": [("a", "b"), ("b", "c"), ("c", "d")]},
                updates=[],
            ),
            timeout=30,
        )
        response = service.evaluate(
            QueryRequest(program=PATH, updates=['- edge(b, c)']),
            timeout=30,
        )
        assert response.status == OK
        want = _oracle(PATH, {"edge": [("a", "b"), ("c", "d")]})
        assert response.database.as_dict() == want

    def test_empty_updates_is_a_pure_read(self, service):
        service.evaluate(
            QueryRequest(program=PATH, facts={"edge": [("a", "b")]}, updates=[]),
            timeout=30,
        )
        read = service.evaluate(
            QueryRequest(program=PATH, updates=[]), timeout=30
        )
        assert read.status == OK
        assert read.database.as_dict() == _oracle(PATH, {"edge": [("a", "b")]})

    def test_views_are_keyed_by_engine_program_seed(self, service):
        service.evaluate(
            QueryRequest(program=PATH, facts={"edge": [("a", "b")]}, updates=[]),
            timeout=30,
        )
        other = service.evaluate(
            QueryRequest(
                program=PATH, facts={"edge": [("x", "y")]}, updates=[], seed=7
            ),
            timeout=30,
        )
        assert other.status == OK
        # Seed 7's view never saw seed 0's facts.
        assert other.database.as_dict() == _oracle(PATH, {"edge": [("x", "y")]})

    def test_choice_program_stays_live(self, service):
        items = [(f"i{k}", c) for k, c in enumerate([5, 3, 8, 1, 9, 2, 7])]
        service.evaluate(
            QueryRequest(program=SORTING, facts={"p": items}, updates=[], seed=3),
            timeout=30,
        )
        response = service.evaluate(
            QueryRequest(program=SORTING, updates=['- p(i3, 1)'], seed=3),
            timeout=30,
        )
        assert response.status == OK
        survivors = [it for it in items if it != ("i3", 1)]
        assert response.database.as_dict() == _oracle(
            SORTING, {"p": survivors}, seed=3
        )

    def test_bad_update_fails_without_poisoning_the_view(self, service):
        service.evaluate(
            QueryRequest(program=PATH, facts={"edge": [("a", "b")]}, updates=[]),
            timeout=30,
        )
        with pytest.raises(UpdateError):
            service.evaluate(
                QueryRequest(program=PATH, updates=['+ path(x, y)']),
                timeout=30,
            )
        ticket = service.submit(
            QueryRequest(program=PATH, updates=['+ path(x, y)'])
        )
        assert ticket.response(timeout=30).status == FAILED
        # The view is still healthy and unchanged.
        read = service.evaluate(QueryRequest(program=PATH, updates=[]), timeout=30)
        assert read.database.as_dict() == _oracle(PATH, {"edge": [("a", "b")]})

    def test_live_batches_metric_counts_applies(self, service):
        service.evaluate(
            QueryRequest(program=PATH, facts={"edge": [("a", "b")]}, updates=[]),
            timeout=30,
        )
        service.evaluate(
            QueryRequest(program=PATH, updates=['+ edge(b, c)']), timeout=30
        )
        assert service.metrics.counter("live_batches") >= 2


class TestDurableLiveRequests:
    def test_views_survive_a_service_restart(self, tmp_path):
        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=2, reset_timeout=60.0, store=store)
        try:
            svc.evaluate(
                QueryRequest(
                    program=PATH, facts={"edge": [("a", "b")]}, updates=[]
                ),
                timeout=30,
            )
            svc.evaluate(
                QueryRequest(program=PATH, updates=['+ edge(b, c)']),
                timeout=30,
            )
        finally:
            svc.close()
        store.close()

        store = CheckpointStore(tmp_path)
        svc = QueryService(workers=2, reset_timeout=60.0, store=store)
        try:
            read = svc.evaluate(
                QueryRequest(program=PATH, updates=[]), timeout=30
            )
            assert read.status == OK
            assert read.database.as_dict() == _oracle(
                PATH, {"edge": [("a", "b"), ("b", "c")]}
            )
        finally:
            svc.close()
        store.close()
