"""Engine-level tracing: golden traces, reconciliation, zero overhead.

The golden files pin the *structure* of the trace — span names, nesting,
phases, attributes — while stripping wall-clock fields, so they are
stable across machines.  All constants in the traced programs are
integers: unlike strings, integer hashing is not randomised per process,
so set iteration order (and hence candidate enumeration) is reproducible.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.compiler import compile_program
from repro.obs.export import trace_rows
from repro.obs.tracer import Tracer
from repro.programs import texts

GOLDEN_DIR = Path(__file__).parent / "golden"

CHOICE_FACTS = {"takes": [(1, 101), (1, 102), (2, 101), (2, 102)]}
SORT_FACTS = {"p": [(10, 3), (20, 1), (30, 2)]}

VOLATILE_FIELDS = ("t_start", "t_end", "duration")


def normalized_rows(tracer):
    """Trace rows with wall-clock fields stripped (golden-comparable)."""
    rows = []
    for row in trace_rows(tracer):
        row = dict(row)
        for field in VOLATILE_FIELDS:
            row.pop(field, None)
        rows.append(row)
    return rows


def run_traced(source, facts, engine, seed=0):
    tracer = Tracer(enabled=True)
    compiled = compile_program(source, engine=engine)
    compiled.run(facts=facts, seed=seed, tracer=tracer)
    return tracer, compiled.last_engine


def _golden(name):
    path = GOLDEN_DIR / name
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestGoldenTraces:
    def test_choice_clique_trace(self):
        tracer, _ = run_traced(texts.EXAMPLE1_ASSIGNMENT, CHOICE_FACTS, "choice")
        assert normalized_rows(tracer) == _golden("choice_clique.jsonl")

    def test_stage_clique_trace(self):
        tracer, _ = run_traced(texts.SORTING, SORT_FACTS, "rql")
        assert normalized_rows(tracer) == _golden("stage_sorting.jsonl")


class TestTraceStructure:
    def test_gamma_steps_nest_under_the_clique_span(self):
        tracer, _ = run_traced(texts.SORTING, SORT_FACTS, "rql")
        cliques = tracer.spans("clique")
        stage_clique = [s for s in cliques if s.attrs.get("kind") == "stage"]
        assert len(stage_clique) == 1
        clique_id = stage_clique[0].span_id
        steps = tracer.spans("gamma-step")
        assert steps and all(s.parent_id == clique_id for s in steps)
        assert all(s.phase == "gamma" for s in steps)

    def test_choose_events_carry_the_chosen_fact(self):
        tracer, _ = run_traced(texts.SORTING, SORT_FACTS, "rql")
        chosen = [e.attrs["fact"] for e in tracer.events("choose")]
        # sorting by least cost: 1, then 2, then 3
        assert [fact[1] for fact in chosen] == [1, 2, 3]

    def test_every_span_is_closed(self):
        tracer, _ = run_traced(texts.SORTING, SORT_FACTS, "rql")
        assert all(span.end is not None for span in tracer.spans())


class TestReconciliation:
    def test_trace_phase_totals_match_stats_phase_seconds(self):
        """The acceptance bound: per-phase span totals reconcile with
        ``EngineRunStats.phase_seconds`` within 5% (they are the same
        measurement by construction, so this holds exactly)."""
        for source, facts, engine in [
            (texts.SORTING, SORT_FACTS, "rql"),
            (texts.EXAMPLE1_ASSIGNMENT, CHOICE_FACTS, "choice"),
            (texts.PRIM, None, "basic"),
        ]:
            if facts is None:
                facts = {
                    "g": [(1, 2, 10), (2, 1, 10), (1, 3, 5), (3, 1, 5), (2, 3, 2), (3, 2, 2)],
                    "source": [(1,)],
                }
            tracer, engine_obj = run_traced(source, facts, engine)
            stats_phases = engine_obj.stats.phase_seconds
            for phase, total in tracer.phase_totals().items():
                assert abs(total - stats_phases[phase]) <= 0.05 * max(
                    stats_phases[phase], 1e-12
                ), f"{engine}: phase {phase} diverged"


class TestZeroOverheadWhenDisabled:
    def test_disabled_run_records_nothing(self):
        tracer = Tracer(enabled=False)
        compiled = compile_program(texts.SORTING, engine="rql")
        compiled.run(facts=SORT_FACTS, seed=0, tracer=tracer)
        assert tracer.records == []

    def test_disabled_run_binds_no_storage_metrics(self):
        tc = """
        path(X, Y) <- edge(X, Y).
        path(X, Y) <- path(X, Z), edge(Z, Y).
        """
        tracer = Tracer(enabled=False)
        compiled = compile_program(tc, engine="seminaive")
        compiled.run(facts={"edge": [(1, 2), (2, 3)]}, tracer=tracer)
        relation_keys = [
            k for k in tracer.registry.counters if k.startswith("relation/")
        ]
        assert relation_keys == []

    def test_default_engine_has_a_disabled_tracer(self):
        compiled = compile_program(texts.SORTING, engine="rql")
        compiled.run(facts=SORT_FACTS, seed=0)
        engine = compiled.last_engine
        assert engine.tracer.enabled is False
        assert engine.tracer.records == []
        # phase metering stays on even without tracing
        assert "gamma" in engine.stats.phase_seconds

    def test_phase_metering_identical_enabled_or_disabled(self):
        keys = []
        for enabled in (False, True):
            tracer = Tracer(enabled=enabled)
            compiled = compile_program(texts.SORTING, engine="rql")
            compiled.run(facts=SORT_FACTS, seed=0, tracer=tracer)
            keys.append(sorted(tracer.registry.phase_seconds()))
        assert keys[0] == keys[1]
