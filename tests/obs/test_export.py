"""Tests for the JSONL / table exporters."""

from __future__ import annotations

import io
import itertools
import json

from repro.obs.export import (
    format_metrics_table,
    format_trace_tree,
    metrics_snapshot,
    trace_rows,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.tracer import Tracer


def _traced_tracer() -> Tracer:
    counter = itertools.count()
    tracer = Tracer(enabled=True, clock=lambda: next(counter) * 1.0)
    with tracer.span("clique", phase="clique", predicates="p/2"):
        with tracer.span("gamma-step", phase="gamma") as step:
            step.note(fact=(1, "a"))
            tracer.event("choose", fact=(1, "a"))
    return tracer


class TestTraceRows:
    def test_schema_and_epoch_relative_times(self):
        rows = trace_rows(_traced_tracer())
        assert [r["name"] for r in rows] == ["clique", "gamma-step", "choose"]
        for row in rows:
            assert set(row) == {
                "kind",
                "name",
                "phase",
                "span_id",
                "parent_id",
                "depth",
                "t_start",
                "t_end",
                "duration",
                "attrs",
            }
        # epoch was tick 0; the first span started at tick 1
        assert rows[0]["t_start"] == 1.0
        event = rows[2]
        assert event["kind"] == "event"
        assert event["duration"] == 0.0

    def test_non_json_values_are_stringified(self):
        rows = trace_rows(_traced_tracer())
        gamma = rows[1]
        assert gamma["attrs"]["fact"] == [1, "a"]
        for row in rows:
            json.dumps(row)  # must never raise

    def test_write_jsonl_roundtrip(self):
        tracer = _traced_tracer()
        buffer = io.StringIO()
        count = write_trace_jsonl(tracer, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert count == len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed == trace_rows(tracer)

    def test_write_jsonl_to_path(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        write_trace_jsonl(_traced_tracer(), str(target))
        assert len(target.read_text().strip().splitlines()) == 3


class TestHumanRenderings:
    def test_trace_tree_indents_by_depth(self):
        tree = format_trace_tree(_traced_tracer())
        lines = tree.splitlines()
        assert lines[0].startswith("clique")
        assert lines[1].startswith("  gamma-step")
        assert lines[2].startswith("    * choose")

    def test_metrics_table_lists_counters_and_timers(self):
        tracer = _traced_tracer()
        tracer.registry.inc("engine/gamma_firings", 3)
        table = format_metrics_table(tracer.registry)
        assert "engine/gamma_firings" in table
        assert "phase/gamma" in table


class TestMetricsExport:
    def test_snapshot_includes_phase_view(self):
        tracer = _traced_tracer()
        snap = metrics_snapshot(tracer.registry)
        assert set(snap) == {"counters", "timers", "phase_seconds"}
        assert snap["phase_seconds"]["gamma"] == snap["timers"]["phase/gamma"]

    def test_write_metrics_json(self, tmp_path):
        target = tmp_path / "metrics.json"
        write_metrics_json(_traced_tracer().registry, str(target))
        data = json.loads(target.read_text())
        assert "phase_seconds" in data
