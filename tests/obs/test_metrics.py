"""Tests for the unified metrics registry and the stats facades."""

from __future__ import annotations

from repro.datalog.naive import EngineStats
from repro.obs.metrics import MetricsRegistry, RegistryBackedStats


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("engine/x")
        registry.inc("engine/x", 4)
        assert registry.counter("engine/x") == 5
        assert registry.counter("engine/missing") == 0

    def test_set_counter_is_a_gauge(self):
        registry = MetricsRegistry()
        registry.inc("rql/p/queue_depth", 9)
        registry.set_counter("rql/p/queue_depth", 2)
        assert registry.counter("rql/p/queue_depth") == 2

    def test_timers_accumulate(self):
        registry = MetricsRegistry()
        registry.add_time("phase/gamma", 0.25)
        registry.add_time("phase/gamma", 0.5)
        assert registry.time("phase/gamma") == 0.75

    def test_phase_seconds_strips_prefix(self):
        registry = MetricsRegistry()
        registry.add_time("phase/gamma", 1.0)
        registry.add_time("phase/saturate", 2.0)
        registry.add_time("other/thing", 3.0)
        assert registry.phase_seconds() == {"gamma": 1.0, "saturate": 2.0}

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("engine/x")
        snap = registry.snapshot()
        registry.inc("engine/x")
        assert snap["counters"]["engine/x"] == 1
        assert registry.counter("engine/x") == 2

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.add_time("b", 1.0)
        registry.clear()
        assert len(registry) == 0


class _DemoStats(RegistryBackedStats):
    _COUNTERS = ("widgets", "gadgets")


class TestRegistryBackedStats:
    def test_attributes_delegate_to_registry(self):
        stats = _DemoStats()
        stats.widgets += 1
        stats.widgets += 2
        assert stats.widgets == 3
        assert stats.registry.counter("engine/widgets") == 3

    def test_shared_registry_shares_counters(self):
        registry = MetricsRegistry()
        a = _DemoStats(registry=registry)
        b = _DemoStats(registry=registry)
        a.gadgets = 7
        assert b.gadgets == 7

    def test_duck_typed_setattr_getattr(self):
        # The PlanCache bumps counters with setattr/getattr; the
        # property facade must keep that working.
        stats = _DemoStats()
        setattr(stats, "widgets", getattr(stats, "widgets", 0) + 1)
        assert stats.widgets == 1

    def test_phase_seconds_view(self):
        stats = _DemoStats()
        stats.add_phase_time("plan", 0.5)
        stats.add_phase_time("plan", 0.25)
        assert stats.phase_seconds == {"plan": 0.75}
        assert stats.phase_seconds["plan"] == 0.75

    def test_as_dict(self):
        stats = _DemoStats()
        stats.widgets = 2
        data = stats.as_dict()
        assert data["widgets"] == 2
        assert data["gadgets"] == 0
        assert data["phase_seconds"] == {}

    def test_engine_stats_is_registry_backed(self):
        stats = EngineStats()
        assert isinstance(stats, RegistryBackedStats)
        stats.iterations += 1
        stats.facts_derived += 10
        assert stats.registry.counter("engine/iterations") == 1
        assert stats.registry.counter("engine/facts_derived") == 10
