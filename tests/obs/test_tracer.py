"""Tests for the span/event tracer and its cost discipline."""

from __future__ import annotations

import itertools

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_SPAN, Tracer


def _fake_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


class TestSpans:
    def test_nesting_parents_and_depth(self):
        tracer = Tracer(enabled=True, clock=_fake_clock())
        with tracer.span("clique", phase="clique"):
            with tracer.span("gamma-step", phase="gamma"):
                tracer.event("choose", fact=(1, 2))
        clique, gamma = tracer.spans("clique")[0], tracer.spans("gamma-step")[0]
        event = tracer.events("choose")[0]
        assert clique.parent_id is None and clique.depth == 0
        assert gamma.parent_id == clique.span_id and gamma.depth == 1
        assert event.parent_id == gamma.span_id and event.depth == 2

    def test_span_ids_in_start_order(self):
        tracer = Tracer(enabled=True, clock=_fake_clock())
        with tracer.span("a", phase="p"):
            pass
        with tracer.span("b", phase="p"):
            pass
        ids = [r.span_id for r in tracer.records]
        assert ids == sorted(ids)

    def test_durations_from_injected_clock(self):
        tracer = Tracer(enabled=True, clock=_fake_clock(step=0.5))
        with tracer.span("work", phase="eval"):
            pass
        (record,) = tracer.spans("work")
        assert record.duration == 0.5
        assert tracer.registry.time("phase/eval") == 0.5

    def test_note_attaches_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("rule-firing", head="p(X)") as span:
            span.note(new_facts=3)
        (record,) = tracer.spans("rule-firing")
        assert record.attrs == {"head": "p(X)", "new_facts": 3}

    def test_phase_totals_match_registry(self):
        tracer = Tracer(enabled=True, clock=_fake_clock())
        with tracer.span("a", phase="gamma"):
            pass
        with tracer.span("b", phase="gamma"):
            pass
        assert tracer.phase_totals()["gamma"] == tracer.registry.time("phase/gamma")

    def test_clear_resets_records_not_registry(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", phase="gamma"):
            pass
        tracer.clear()
        assert tracer.records == []
        assert tracer.registry.time("phase/gamma") > 0


class TestDisabledCostDiscipline:
    def test_unphased_span_is_the_shared_null_handle(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("rule-firing") is NULL_SPAN
        assert tracer.span("anything", attr=1) is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_SPAN as span:
            span.note(anything="goes")

    def test_events_record_nothing_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.event("choose", fact=(1,))
        assert tracer.records == []

    def test_phased_span_still_times_when_disabled(self):
        tracer = Tracer(enabled=False, clock=_fake_clock())
        with tracer.span("gamma-step", phase="gamma") as span:
            span.note(discarded=True)
        assert tracer.records == []
        assert tracer.registry.time("phase/gamma") > 0

    def test_shared_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, enabled=True)
        with tracer.span("a", phase="gamma"):
            pass
        assert registry.time("phase/gamma") > 0
