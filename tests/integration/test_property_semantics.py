"""Property-based semantics tests: random workloads through the full
pipeline, with the Gelfond–Lifschitz verifier as the oracle.

These are the heaviest-duty correctness checks in the suite: for random
inputs and seeds, every engine output must be a stable model of the
rewritten program, and the two stage engines must produce equally good
greedy solutions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import solve_program
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.semantics.stable import verify_engine_output
from repro.workloads import random_bipartite_arcs, random_connected_graph

MATCHING_PROGRAM = parse_program(texts.MATCHING)
SORTING_PROGRAM = parse_program(texts.SORTING)
PRIM_PROGRAM = parse_program(texts.PRIM)


class TestStabilityUnderRandomInputs:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_matching_outputs_are_stable(self, workload_seed, engine_seed):
        arcs = random_bipartite_arcs(3, 3, 2, seed=workload_seed)
        db = solve_program(
            texts.MATCHING, facts={"g": arcs}, seed=engine_seed, engine="rql"
        )
        assert verify_engine_output(MATCHING_PROGRAM, db)

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(0, 9)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    def test_sorting_outputs_are_stable_even_with_ties(self, items):
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0)
        assert verify_engine_output(SORTING_PROGRAM, db)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_prim_outputs_are_stable(self, seed):
        nodes, edges = random_connected_graph(5, extra_edges=3, seed=seed)
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(edges), "source": [(nodes[0],)]},
            seed=0,
        )
        assert verify_engine_output(PRIM_PROGRAM, db)


class TestEngineAgreementUnderRandomInputs:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_prim_engines_agree_on_cost(self, seed):
        nodes, edges = random_connected_graph(8, extra_edges=6, seed=seed)
        facts = {"g": symmetric_edges(edges), "source": [(nodes[0],)]}
        basic = solve_program(texts.PRIM, facts=dict(facts), seed=0, engine="basic")
        rql = solve_program(texts.PRIM, facts=dict(facts), seed=0, engine="rql")
        assert sum(f[2] for f in basic.facts("prm", 4)) == sum(
            f[2] for f in rql.facts("prm", 4)
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matching_engines_agree_on_cost(self, seed):
        arcs = random_bipartite_arcs(4, 4, 2, seed=seed)
        basic = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0, engine="basic")
        rql = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0, engine="rql")
        assert sum(f[2] for f in basic.facts("matching", 4)) == sum(
            f[2] for f in rql.facts("matching", 4)
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dijkstra_engines_agree_exactly(self, seed):
        nodes, edges = random_connected_graph(7, extra_edges=5, seed=seed)
        facts = {"g": symmetric_edges(edges), "source": [(nodes[0],)]}
        basic = solve_program(texts.DIJKSTRA, facts=dict(facts), seed=0, engine="basic")
        rql = solve_program(texts.DIJKSTRA, facts=dict(facts), seed=0, engine="rql")
        basic_map = {f[0]: f[1] for f in basic.facts("dist", 3)}
        rql_map = {f[0]: f[1] for f in rql.facts("dist", 3)}
        assert basic_map == rql_map
