"""Minimal repros of bugs found (and fixed) while building this
reproduction.  Each test failed against the implementation that preceded
its fix; together they form the project's changelog-in-executable-form.
"""

from __future__ import annotations

import random


from repro.core.compiler import solve_program
from repro.datalog.evaluation import plan_body
from repro.datalog.parser import parse_program, parse_rule
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.semantics.stable import verify_engine_output


class TestPlannerArithmeticInversion:
    """An `=` assignment whose expression side had unbound variables was
    scheduled too early and matched `+(J, 1)` structurally against an
    integer — silently failing the join."""

    def test_assignment_defers_until_expression_inputs_bound(self):
        rule = parse_rule("p(X, I) <- c(I), I = J + 1, r(J), q(X).")
        plan = plan_body(list(zip(rule.body, range(len(rule.body)))))
        order = [str(lit) for lit, _ in plan]
        assert order.index("I = (J + 1)") > order.index("r(J)")

    def test_reduct_derives_through_stage_arithmetic(self):
        """Symptom: Prim's engine output failed the Gelfond–Lifschitz
        check because the reduct never derived stage-1 facts."""
        db = solve_program(
            texts.PRIM,
            facts={
                "g": symmetric_edges([("a", "b", 2), ("b", "c", 1)]),
                "source": [("a",)],
            },
            seed=0,
        )
        assert verify_engine_output(parse_program(texts.PRIM), db)


class TestPredicateWideFDs:
    """Without absorbing exit facts into the choice memos, Prim re-entered
    the root through a back-edge (a '5-edge spanning tree' on 4 nodes)."""

    def test_root_is_not_reentered(self):
        edges = [("a", "b", 4), ("a", "c", 1), ("b", "c", 2), ("b", "d", 5)]
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(edges), "source": [("a",)]},
            seed=1,
        )
        tree = [f for f in db.facts("prm", 4) if f[0] != "nil"]
        assert len(tree) == 3
        assert all(f[1] != "a" for f in tree)


class TestWitnessRankedExtrema:
    """`least` in a stage-less choice rule must rank candidates against
    already-chosen witnesses; ranking only the *new* candidates made
    `bi_st_c` grow past the paper's one-fact models."""

    def test_bi_injective_model_has_exactly_one_fact(self, takes_grades):
        for seed in range(6):
            db = solve_program(
                texts.BI_INJECTIVE_BOTTOM,
                facts={"takes": takes_grades},
                seed=seed,
                engine="choice",
            )
            assert len(db.relation("bi_st_c", 3)) == 1


class TestCongruenceSoundness:
    """Three refinements of the r-congruence signature, each with the
    input that broke the naive version."""

    def test_sorting_shared_names_with_distinct_costs(self):
        # Cost must join the signature without a licensing FD: both
        # ('a', 0) and ('a', 1) are selected.
        db = solve_program(texts.SORTING, facts={"p": [("a", 0), ("a", 1)]}, seed=0)
        assert len(db.relation("sp", 3)) == 3
        assert verify_engine_output(parse_program(texts.SORTING), db)

    def test_tsp_stale_frontier_entries_must_not_shadow(self):
        # With I = J + 1, a cheap arc from an old tail must not replace
        # the current tail's arc to the same target: the chain must stay
        # Hamiltonian.
        import itertools

        rng = random.Random(3)
        nodes = [f"n{i}" for i in range(6)]
        costs = rng.sample(range(1, 100), len(nodes) * (len(nodes) - 1))
        arcs = [(a, b, costs.pop()) for a, b in itertools.permutations(nodes, 2)]
        db = solve_program(texts.TSP_GREEDY, facts={"g": arcs}, seed=0)
        chain = sorted(db.facts("tsp_chain", 4), key=lambda f: f[3])
        visited = [chain[0][0]] + [f[1] for f in chain]
        assert len(visited) == len(set(visited)) == 6

    def test_determined_variable_used_by_a_guard_stays_in_signature(self):
        # Convex hull: Q is choice-determined but consulted by the
        # cw_witness guard; collapsing per (P, J) kept an arbitrary Q and
        # broke the wrap.
        from repro.programs import convex_hull

        points = [(0, 0), (10, 0), (10, 10), (0, 10), (5, 5)]
        hull = convex_hull(points, seed=0)
        assert set(hull) == {(0, 0), (10, 0), (10, 10), (0, 10)}


class TestOneFactOneFiring:
    """A head variable bound by a non-candidate goal means one candidate
    fact can fire at many stages — the RQL plan must refuse (coin change
    is the canonical case)."""

    def test_coin_change_is_correct_on_the_default_engine(self):
        db = solve_program(
            texts.COIN_CHANGE,
            facts={"coin": [(1,), (5,), (10,), (25,)], "amount": [(68,)]},
            seed=0,
        )
        coins = [f[0] for f in db.facts("change", 3) if f[2] > 0]
        assert sorted(coins, reverse=True) == [25, 25, 10, 5, 1, 1, 1]


class TestLiteralProgramAdjustments:
    """Places where the paper's literal rules mis-execute; the library
    programs adjust them and DEVIATIONS documents why."""

    def test_spanning_tree_needs_the_connectivity_goal(self):
        # The library program keeps the new_g frontier: every tree, under
        # every seed, is connected to the source.
        edges = [("a", "b", 1), ("b", "c", 1), ("c", "d", 1), ("d", "a", 1)]
        for seed in range(5):
            db = solve_program(
                texts.SPANNING_TREE,
                facts={"g": symmetric_edges(edges), "source": [("a",)]},
                seed=seed,
                engine="basic",
            )
            tree = [f for f in db.facts("st", 4) if f[0] != "nil"]
            reached = {"a"}
            for _ in tree:
                for u, v, _c, _i in tree:
                    if u in reached:
                        reached.add(v)
            assert reached == {"a", "b", "c", "d"}

    def test_huffman_guards_at_selection_stage_terminate(self, clrs_frequencies):
        db = solve_program(
            texts.HUFFMAN, facts={"letter": list(clrs_frequencies.items())}, seed=0
        )
        merges = [f for f in db.facts("h", 3) if f[2] > 0]
        assert len(merges) == len(clrs_frequencies) - 1
