"""The interrupt/resume determinism property, across the program battery.

For the deterministic-choice engines (``rql`` and ``basic`` under a fixed
seed), interrupting a governed run at an arbitrary γ-step boundary and
resuming from the checkpoint must produce **the identical stable model**
as the uninterrupted run — bit for bit, through a JSON serialization
round-trip of the checkpoint.

This is the strongest statement of governor non-interference: ticks fire
at the top of each hot loop, *before* any rng draw, so the captured rng
state is exactly the uninterrupted run's state at the same boundary."""

from __future__ import annotations

import random

import pytest

from repro.core.compiler import compile_program
from repro.errors import BudgetExceeded
from repro.robust import Budget, RunGovernor, restore
from repro.robust.checkpoint import dumps, loads
from tests.integration.test_cross_engine_battery import BATTERY

# The battery rows whose γ loops run long enough to interrupt mid-flight.
PROGRAMS = {
    name: (source, builder)
    for name, source, builder, _result, _cost in BATTERY
    if name in ("sorting", "prim", "kruskal", "tsp", "huffman", "activities")
}


def _run_full(source, facts, engine, seed):
    compiled = compile_program(source, engine=engine)
    return compiled.run({k: list(v) for k, v in facts.items()}, seed=seed)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("engine", ["rql", "basic"])
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_interrupted_plus_resumed_equals_uninterrupted(name, engine, seed):
    source, builder = PROGRAMS[name]
    facts = builder(seed)
    expected = _run_full(source, facts, engine, seed).as_dict()

    # Interrupt at a battery-seeded "random" γ-step; if the program
    # finishes before the cap the run is its own (trivial) witness.
    k = random.Random(f"{name}:{engine}:{seed}").randint(1, 12)
    compiled = compile_program(source, engine=engine)
    governor = RunGovernor(Budget(max_gamma_steps=k), check_interval=1)
    try:
        db = compiled.run(
            {key: list(v) for key, v in facts.items()}, seed=seed, governor=governor
        )
    except BudgetExceeded as exc:
        checkpoint = exc.partial.checkpoint
        assert checkpoint is not None, f"{name}/{engine}: no checkpoint captured"
        # Serialization round-trip: what resumes is what was written out.
        checkpoint = loads(dumps(checkpoint))
        instance, db = restore(checkpoint, compile_program(source, engine=engine).program)
        db = instance.run(db)
    assert db.as_dict() == expected, f"{name}/{engine}/seed={seed} @ γ-step {k}"


@pytest.mark.parametrize("engine", ["rql", "basic"])
def test_chained_interruptions_still_converge(engine):
    """Interrupt every 2 γ-steps, resuming each time: an arbitrarily
    fragmented run still lands on the exact uninterrupted model."""
    source, builder = PROGRAMS["sorting"]
    facts = builder(0)
    expected = _run_full(source, facts, engine, 0).as_dict()

    compiled = compile_program(source, engine=engine)
    governor = RunGovernor(Budget(max_gamma_steps=2), check_interval=1)
    try:
        db = compiled.run(
            {key: list(v) for key, v in facts.items()}, seed=0, governor=governor
        )
    except BudgetExceeded as exc:
        checkpoint = exc.partial.checkpoint
        for _ in range(200):  # far more resumes than the run needs
            instance, db = restore(
                loads(dumps(checkpoint)), compiled.program,
                governor=RunGovernor(Budget(max_gamma_steps=2), check_interval=1),
            )
            try:
                db = instance.run(db)
                break
            except BudgetExceeded as again:
                checkpoint = again.partial.checkpoint
        else:  # pragma: no cover
            raise AssertionError("run never completed across 200 resumes")
    assert db.as_dict() == expected
