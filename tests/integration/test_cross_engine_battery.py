"""Cross-engine battery: every program in the library, run on both stage
engines over seeded random workloads, compared on the solution metric —
plus a differential battery of seeded random stratified programs run
through the naive engine, the seminaive engine, and a bare compiled-plan
fixpoint, compared on the full model.

This is the broad regression net: any divergence between the basic
alternating fixpoint and the (R, Q, L) engine on any program shows up
here first, and any divergence between the three meta-goal-free
evaluation paths (including the delta-specialized plans only the
seminaive engine exercises) shows up in the random battery.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compiler import ENGINES, compile_program, solve_program
from repro.datalog.dependency import DependencyGraph
from repro.datalog.naive import NaiveEngine
from repro.datalog.parser import parse_program
from repro.datalog.plans import EXTREMA_POLICIES, ORDER_POLICIES, PlanCache
from repro.datalog.seminaive import SeminaiveEngine
from repro.storage.database import Database
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.workloads import (
    complete_graph,
    random_bipartite_arcs,
    random_connected_graph,
    random_costed_relation,
    random_frequency_table,
    random_jobs,
    random_points,
)


def _graph_facts(seed):
    nodes, edges = random_connected_graph(9, extra_edges=8, seed=seed)
    return {"g": symmetric_edges(edges), "source": [(nodes[0],)]}


def _kruskal_facts(seed):
    nodes, edges = random_connected_graph(7, extra_edges=5, seed=seed)
    return {"g": symmetric_edges(edges), "node": [(n,) for n in nodes]}


def _tsp_facts(seed):
    _, edges = complete_graph(6, seed=seed)
    return {"g": symmetric_edges(edges)}


def _hull_facts(seed):
    return {"pt": [(f"p{i}", x, y) for i, (x, y) in enumerate(random_points(8, span=300, seed=seed))]}


BATTERY = [
    # (name, source, facts builder, result predicate/arity, cost position)
    ("sorting", texts.SORTING, lambda s: {"p": random_costed_relation(12, seed=s)}, ("sp", 3), 1),
    ("prim", texts.PRIM, _graph_facts, ("prm", 4), 2),
    ("dijkstra", texts.DIJKSTRA, _graph_facts, ("dist", 3), 1),
    ("spanning", texts.SPANNING_TREE, _graph_facts, ("st", 4), None),
    ("matching", texts.MATCHING, lambda s: {"g": random_bipartite_arcs(4, 4, 3, seed=s)}, ("matching", 4), 2),
    ("max_matching", texts.MAX_MATCHING, lambda s: {"g": random_bipartite_arcs(4, 4, 3, seed=s)}, ("matching", 4), 2),
    ("huffman", texts.HUFFMAN, lambda s: {"letter": random_frequency_table(7, seed=s)}, ("h", 3), 1),
    ("kruskal", texts.KRUSKAL, _kruskal_facts, ("kruskal", 4), 2),
    ("tsp", texts.TSP_GREEDY, _tsp_facts, ("tsp_chain", 4), 2),
    ("activities", texts.ACTIVITY_SELECTION, lambda s: {"job": random_jobs(10, horizon=40, seed=s)}, ("sched", 4), None),
    ("knapsack", texts.GREEDY_KNAPSACK, lambda s: {"item": [(f"i{k}", k + 1, (k * 7) % 13 + 1) for k in range(6)], "capacity": [(12,)]}, ("take", 4), 2),
    ("hull", texts.CONVEX_HULL, _hull_facts, ("hull", 3), None),
    ("coins", texts.COIN_CHANGE, lambda s: {"coin": [(1,), (5,), (10,)], "amount": [(37 + s,)]}, ("change", 3), None),
]


def _metric(db, pred, arity, cost_position):
    # Exit facts carry stage 0 and placeholder values; compare the
    # selections proper.
    facts = [
        f
        for f in db.facts(pred, arity)
        if not (isinstance(f[-1], int) and f[-1] == 0)
    ]
    if cost_position is None:
        return len(facts)
    return (len(facts), sum(f[cost_position] for f in facts))


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "name,source,builder,result,cost",
    BATTERY,
    ids=[row[0] for row in BATTERY],
)
def test_basic_and_rql_agree(name, source, builder, result, cost, seed):
    facts = builder(seed)
    basic = solve_program(source, facts={k: list(v) for k, v in facts.items()}, seed=0, engine="basic")
    rql = solve_program(source, facts={k: list(v) for k, v in facts.items()}, seed=0, engine="rql")
    pred, arity = result
    assert _metric(basic, pred, arity, cost) == _metric(rql, pred, arity, cost), name


# ---------------------------------------------------------------------------
# Random stratified battery: naive vs seminaive vs bare compiled plans.
# ---------------------------------------------------------------------------


def _random_stratified_program(seed):
    """A seeded random stratified, meta-goal-free program with its facts
    embedded: random EDB over a small integer domain, non-recursive views
    with comparisons and bounded arithmetic, a recursive closure, and a
    top stratum mixing plain negation with negated conjunctions."""
    rng = random.Random(seed)
    domain = rng.randint(4, 7)
    lines = []
    for _ in range(rng.randint(3, domain)):
        lines.append(f"e1({rng.randrange(domain)}).")
    for _ in range(rng.randint(5, 2 * domain)):
        lines.append(f"e2({rng.randrange(domain)}, {rng.randrange(domain)}).")

    # Stratum 1: non-recursive views over the EDB.
    lines.append("a(X, Y) <- e2(X, Y), X != Y.")
    if rng.random() < 0.5:
        lines.append(f"a(X, Y) <- e2(Y, X), X < {rng.randrange(1, domain)}.")
    if rng.random() < 0.5:
        lines.append(f"b(X, K) <- e2(X, J), K = J + {rng.randrange(1, 4)}.")
    else:
        lines.append("b(X, K) <- e1(X), K = X * 2.")

    # Stratum 2: recursive closure of the view (finite domain, no
    # arithmetic in the cycle, so it terminates).
    lines.append("t(X, Y) <- a(X, Y).")
    lines.append("t(X, Z) <- t(X, Y), a(Y, Z).")

    # Stratum 3: negation strictly over the lower strata.
    lines.append("top(X) <- e1(X), not t(X, X).")
    if rng.random() < 0.5:
        lines.append("iso(X) <- e1(X), not (t(X, Y), Y != X).")
    if rng.random() < 0.5:
        lines.append("m(X, Y) <- t(X, Y), not b(X, Y).")
    lines.append("best(X, C) <- b(X, C), not (b(X, D), D < C).")
    return parse_program("\n".join(lines))


def _compiled_fixpoint(program):
    """A minimal stratified fixpoint driven directly by the plan cache —
    the compiled-plan path with no engine bookkeeping around it."""
    db = Database()
    for name, facts in program.ground_facts().items():
        db.assert_all(name, facts)
    cache = PlanCache()
    for rule in program.proper_rules():
        cache.plan(rule)
    cache.register_indices(db)
    for group in DependencyGraph(program).evaluation_order():
        rules = [rule for clique in group for rule in clique.rules]
        changed = True
        while changed:
            changed = False
            for rule in rules:
                relation = db.relation(rule.head.pred, rule.head.arity)
                for fact in list(cache.consequences(rule, db)):
                    if relation.add(fact):
                        changed = True
    return db


@pytest.mark.parametrize("seed", range(50))
def test_random_stratified_programs_agree(seed):
    program = _random_stratified_program(seed)
    naive = NaiveEngine(program).run()
    seminaive = SeminaiveEngine(program).run()
    compiled = _compiled_fixpoint(program)
    assert naive.as_dict() == seminaive.as_dict() == compiled.as_dict()


# ---------------------------------------------------------------------------
# Join-order differential: greedy vs written, model for model, all engines.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_random_battery_order_invariant_across_engines(seed):
    """Every engine, under either join-order policy, lands on the exact
    same model for every seeded random stratified program — the greedy
    reorderer only changes *how* solutions are enumerated, never which."""
    program = _random_stratified_program(seed)
    reference = solve_program(program, engine="naive", order="written").as_dict()
    for engine in ENGINES:
        for order in ORDER_POLICIES:
            model = solve_program(program, engine=engine, order=order).as_dict()
            assert model == reference, f"{engine}/{order} diverged at seed {seed}"


# ---------------------------------------------------------------------------
# Extrema differential: pushdown vs post, model for model, all engines.
# ---------------------------------------------------------------------------


def _random_extrema_program(seed):
    """A seeded random *premappable* extrema program over a layered DAG.

    The graph is layered (edges only point to later layers) so the
    saturate-then-filter "post" policy has a finite fixpoint even for the
    sum-cost variant; the cost combiner and extremum direction are drawn
    from the three monotone shapes the engines support (shortest,
    bottleneck, widest), and a consuming stratum reads the result through
    negation to exercise stratification above the extrema clique.
    """
    rng = random.Random(seed)
    layers = rng.randint(3, 5)
    width = rng.randint(2, 3)
    nodes = [[f"n{li}x{w}" for w in range(width)] for li in range(layers)]
    lines = [f"source({nodes[0][0]})."]
    if rng.random() < 0.3:
        lines.append(f"source({nodes[0][-1]}).")
    for li in range(layers - 1):
        for u in nodes[li]:
            for v in nodes[li + 1]:
                if rng.random() < 0.8:
                    lines.append(f"g({u}, {v}, {rng.randint(1, 9)}).")
        # An occasional layer-skipping arc keeps path lengths uneven.
        if li + 2 < layers and rng.random() < 0.5:
            lines.append(
                f"g({rng.choice(nodes[li])}, {rng.choice(nodes[li + 2])}, "
                f"{rng.randint(1, 9)})."
            )
    kind = rng.choice(["sum_least", "max_least", "min_most"])
    if kind == "sum_least":
        lines.append("v(S, 0) <- source(S).")
        lines.append("v(Y, D) <- v(X, DX), g(X, Y, C), D = DX + C, least(D, Y).")
    elif kind == "max_least":
        lines.append("v(S, 0) <- source(S).")
        lines.append("v(Y, B) <- v(X, BX), g(X, Y, C), B = max(BX, C), least(B, Y).")
    else:
        lines.append("v(S, 99) <- source(S).")
        lines.append("v(Y, W) <- v(X, WX), g(X, Y, C), W = min(WX, C), most(W, Y).")
    lines.append(f"far(Y) <- v(Y, D), D > {rng.randint(1, 6)}.")
    lines.append("unreached(Y) <- g(Y, _, _), not (v(Y, _)).")
    return parse_program("\n".join(lines))


@pytest.mark.parametrize("seed", range(50))
def test_random_extrema_programs_policy_invariant_across_engines(seed):
    """Every engine, under either extrema policy, lands on the exact same
    model for every seeded random premappable program — pruning dominated
    facts during the fixpoint never changes which facts survive it."""
    program = _random_extrema_program(seed)
    reference = solve_program(program, engine="naive", extrema="post").as_dict()
    for engine in ENGINES:
        for extrema in EXTREMA_POLICIES:
            model = solve_program(program, engine=engine, extrema=extrema).as_dict()
            assert model == reference, f"{engine}/{extrema} diverged at seed {seed}"


@pytest.mark.parametrize("extrema", EXTREMA_POLICIES)
@pytest.mark.parametrize("engine", ["rql", "basic"])
def test_governed_resume_extrema_invariant(engine, extrema):
    """A governed run interrupted mid-saturation and resumed under
    *extrema* matches the uninterrupted post-policy model bit for bit —
    the policy is invisible to checkpoint/resume."""
    from repro.errors import BudgetExceeded
    from repro.robust import Budget, RunGovernor, restore
    from repro.robust.checkpoint import dumps, loads

    chain = [(f"m{i}", f"m{i + 1}", i + 1) for i in range(8)]
    shortcuts = [(f"m{i}", f"m{i + 2}", 1) for i in range(0, 7, 2)]
    facts = {"g": chain + shortcuts, "source": [("m0",)]}
    expected = solve_program(
        texts.SHORTEST_PATH,
        facts={k: list(v) for k, v in facts.items()},
        engine=engine,
        extrema="post",
    ).as_dict()

    compiled = compile_program(texts.SHORTEST_PATH, engine=engine, extrema=extrema)
    governor = RunGovernor(Budget(max_rounds=3), check_interval=1)
    interrupted = False
    try:
        db = compiled.run({k: list(v) for k, v in facts.items()}, governor=governor)
    except BudgetExceeded as exc:
        interrupted = True
        checkpoint = loads(dumps(exc.partial.checkpoint))
        instance, db = restore(checkpoint, compiled.program, extrema=extrema)
        db = instance.run(db)
    assert interrupted, "budget never tripped — grow the chain"
    assert db.as_dict() == expected, f"{engine}/{extrema}"


@pytest.mark.parametrize("order", ORDER_POLICIES)
@pytest.mark.parametrize("engine", ["rql", "basic"])
def test_governed_resume_order_invariant(engine, order):
    """A governed run interrupted mid-flight and resumed under *order*
    matches the uninterrupted written-order model bit for bit — the
    join-order policy is invisible to checkpoint/resume."""
    from repro.errors import BudgetExceeded
    from repro.robust import Budget, RunGovernor, restore
    from repro.robust.checkpoint import dumps, loads

    facts = {"p": random_costed_relation(12, seed=3)}
    expected = solve_program(
        texts.SORTING,
        facts={k: list(v) for k, v in facts.items()},
        seed=0,
        engine=engine,
        order="written",
    ).as_dict()

    compiled = compile_program(texts.SORTING, engine=engine, order=order)
    governor = RunGovernor(Budget(max_gamma_steps=4), check_interval=1)
    try:
        db = compiled.run(
            {k: list(v) for k, v in facts.items()}, seed=0, governor=governor
        )
    except BudgetExceeded as exc:
        checkpoint = loads(dumps(exc.partial.checkpoint))
        instance, db = restore(checkpoint, compiled.program, order=order)
        db = instance.run(db)
    assert db.as_dict() == expected, f"{engine}/{order}"
