"""Cross-engine battery: every program in the library, run on both stage
engines over seeded random workloads, compared on the solution metric.

This is the broad regression net: any divergence between the basic
alternating fixpoint and the (R, Q, L) engine on any program shows up
here first.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.workloads import (
    complete_graph,
    random_bipartite_arcs,
    random_connected_graph,
    random_costed_relation,
    random_frequency_table,
    random_jobs,
    random_points,
)


def _graph_facts(seed):
    nodes, edges = random_connected_graph(9, extra_edges=8, seed=seed)
    return {"g": symmetric_edges(edges), "source": [(nodes[0],)]}


def _kruskal_facts(seed):
    nodes, edges = random_connected_graph(7, extra_edges=5, seed=seed)
    return {"g": symmetric_edges(edges), "node": [(n,) for n in nodes]}


def _tsp_facts(seed):
    _, edges = complete_graph(6, seed=seed)
    return {"g": symmetric_edges(edges)}


def _hull_facts(seed):
    return {"pt": [(f"p{i}", x, y) for i, (x, y) in enumerate(random_points(8, span=300, seed=seed))]}


BATTERY = [
    # (name, source, facts builder, result predicate/arity, cost position)
    ("sorting", texts.SORTING, lambda s: {"p": random_costed_relation(12, seed=s)}, ("sp", 3), 1),
    ("prim", texts.PRIM, _graph_facts, ("prm", 4), 2),
    ("dijkstra", texts.DIJKSTRA, _graph_facts, ("dist", 3), 1),
    ("spanning", texts.SPANNING_TREE, _graph_facts, ("st", 4), None),
    ("matching", texts.MATCHING, lambda s: {"g": random_bipartite_arcs(4, 4, 3, seed=s)}, ("matching", 4), 2),
    ("max_matching", texts.MAX_MATCHING, lambda s: {"g": random_bipartite_arcs(4, 4, 3, seed=s)}, ("matching", 4), 2),
    ("huffman", texts.HUFFMAN, lambda s: {"letter": random_frequency_table(7, seed=s)}, ("h", 3), 1),
    ("kruskal", texts.KRUSKAL, _kruskal_facts, ("kruskal", 4), 2),
    ("tsp", texts.TSP_GREEDY, _tsp_facts, ("tsp_chain", 4), 2),
    ("activities", texts.ACTIVITY_SELECTION, lambda s: {"job": random_jobs(10, horizon=40, seed=s)}, ("sched", 4), None),
    ("knapsack", texts.GREEDY_KNAPSACK, lambda s: {"item": [(f"i{k}", k + 1, (k * 7) % 13 + 1) for k in range(6)], "capacity": [(12,)]}, ("take", 4), 2),
    ("hull", texts.CONVEX_HULL, _hull_facts, ("hull", 3), None),
    ("coins", texts.COIN_CHANGE, lambda s: {"coin": [(1,), (5,), (10,)], "amount": [(37 + s,)]}, ("change", 3), None),
]


def _metric(db, pred, arity, cost_position):
    # Exit facts carry stage 0 and placeholder values; compare the
    # selections proper.
    facts = [
        f
        for f in db.facts(pred, arity)
        if not (isinstance(f[-1], int) and f[-1] == 0)
    ]
    if cost_position is None:
        return len(facts)
    return (len(facts), sum(f[cost_position] for f in facts))


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "name,source,builder,result,cost",
    BATTERY,
    ids=[row[0] for row in BATTERY],
)
def test_basic_and_rql_agree(name, source, builder, result, cost, seed):
    facts = builder(seed)
    basic = solve_program(source, facts={k: list(v) for k, v in facts.items()}, seed=0, engine="basic")
    rql = solve_program(source, facts={k: list(v) for k, v in facts.items()}, seed=0, engine="rql")
    pred, arity = result
    assert _metric(basic, pred, arity, cost) == _metric(rql, pred, arity, cost), name
