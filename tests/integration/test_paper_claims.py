"""Integration tests: the paper's claims, end to end.

Each test names the paper statement it exercises.  These are the
highest-level checks in the suite: program text -> compile-time analysis
-> engine -> model -> mechanical stable-model verification.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compiler import solve_program
from repro.core.greedy_engine import GreedyStageEngine
from repro.core.stage_analysis import analyze_stages
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.semantics.choice_models import enumerate_choice_models
from repro.semantics.stable import verify_engine_output
from repro.storage.database import Database
from repro.workloads import random_connected_graph


class TestSection2:
    """Choice and extrema semantics."""

    def test_example1_choice_models(self, takes_pairs):
        """'has the following three choice models' — M1, M2, M3."""
        models = enumerate_choice_models(
            texts.EXAMPLE1_ASSIGNMENT, facts={"takes": takes_pairs}
        )
        assert len(models) == 3

    def test_least_selects_bottom_per_course(self, takes_grades):
        db = solve_program(texts.BOTTOM_STUDENTS, facts={"takes": takes_grades})
        assert set(db.facts("bttm_st", 3)) == {
            ("mark", "engl", 2),
            ("mark", "math", 2),
        }

    def test_bi_injective_two_stable_models(self, takes_grades):
        """'Two stable models for this last rule... M1, M2' — selecting
        bi-injective pairs out of those with bottom grade, not bottom
        grades out of random bi-injective pairs."""
        models = enumerate_choice_models(
            texts.BI_INJECTIVE_BOTTOM, facts={"takes": takes_grades}
        )
        results = {frozenset(m.facts("bi_st_c", 3)) for m in models}
        assert results == {
            frozenset({("mark", "engl", 2)}),
            frozenset({("mark", "math", 2)}),
        }


class TestSection4:
    """Stage stratification and Theorem 1/2."""

    STAGE_PROGRAMS = {
        "prim": texts.PRIM,
        "sorting": texts.SORTING,
        "matching": texts.MATCHING,
        "huffman": texts.HUFFMAN,
        "tsp": texts.TSP_GREEDY,
    }

    @pytest.mark.parametrize("name", sorted(STAGE_PROGRAMS))
    def test_paper_programs_recognised_at_compile_time(self, name):
        """'a syntactic class of programs... easily recognized at compile
        time.'"""
        analysis = analyze_stages(parse_program(self.STAGE_PROGRAMS[name]))
        assert analysis.is_stage_stratified_program

    def test_theorem1_every_fixpoint_output_is_stable(self, diamond_graph):
        """Theorem 1, across programs, engines and seeds."""
        cases = [
            (
                texts.PRIM,
                {"g": symmetric_edges(diamond_graph), "source": [("a",)]},
            ),
            (texts.SORTING, {"p": [("a", 2), ("b", 1), ("c", 3)]}),
            (
                texts.MATCHING,
                {"g": [("a", "x", 3), ("a", "y", 1), ("b", "x", 2)]},
            ),
        ]
        for source, facts in cases:
            program = parse_program(source)
            for engine in ("basic", "rql"):
                for seed in (0, 1):
                    db = solve_program(source, facts=facts, seed=seed, engine=engine)
                    assert verify_engine_output(program, db), (source, engine, seed)

    def test_lemma2_polynomial_termination(self):
        """Lemma 2: the Choice Fixpoint terminates (γ fires at most once
        per candidate control tuple)."""
        takes = [(f"s{i}", f"c{j}") for i in range(8) for j in range(8)]
        db = solve_program(
            texts.EXAMPLE1_ASSIGNMENT, facts={"takes": takes}, seed=0, engine="choice"
        )
        assert len(db.relation("a_st", 2)) == 8  # perfect matching found


class TestSection5:
    """The greedy program library computes the classical algorithms."""

    def test_prim_computes_the_mst(self):
        nodes, edges = random_connected_graph(14, extra_edges=20, seed=6)
        from repro.baselines import prim_mst as baseline

        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(edges), "source": [(nodes[0],)]},
            seed=0,
        )
        assert sum(f[2] for f in db.facts("prm", 4)) == baseline(edges, nodes[0])[1]

    def test_sorting_is_a_permutation_sorted_by_cost(self):
        items = [(f"x{i}", (7 * i) % 13) for i in range(13)]
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0)
        rows = sorted((f for f in db.facts("sp", 3) if f[2] > 0), key=lambda f: f[2])
        assert [c for _, c, _ in rows] == sorted(c for _, c in items)

    def test_kruskal_extended_class_still_gives_mst(self, diamond_graph):
        """Section 7/Example 8: 'Although the negation in flat rules are
        not strictly stratified, the stable model of this program gives a
        minimum spanning tree.'"""
        analysis = analyze_stages(parse_program(texts.KRUSKAL))
        report = analysis.report_for("kruskal", 4)
        assert not report.is_stage_stratified  # flagged, as the paper says
        nodes = sorted({u for u, _, _ in diamond_graph} | {v for _, v, _ in diamond_graph})
        db = solve_program(
            texts.KRUSKAL,
            facts={"g": symmetric_edges(diamond_graph), "node": [(n,) for n in nodes]},
            seed=0,
        )
        assert sum(f[2] for f in db.facts("kruskal", 4)) == 8


class TestSection6:
    """The (R, Q, L) implementation does the same work as the textbook
    data-structure algorithms."""

    def test_prim_queue_is_bounded_by_vertices(self):
        """r-congruence collapses the frontier: at most one queue entry
        per vertex, as in the paper's complexity argument."""
        nodes, edges = random_connected_graph(20, extra_edges=40, seed=2)
        program = parse_program(texts.PRIM)
        engine = GreedyStageEngine(program, rng=random.Random(0))
        db = Database()
        db.assert_all("g", symmetric_edges(edges))
        db.assert_fact("source", (nodes[0],))
        engine.run(db)
        structure = engine.rql_structures[("prm", 4)]
        # Every vertex enters L exactly once; replaced/redundant entries
        # account for the rest of the 2e insert attempts.
        assert structure.used_count == len(nodes) - 1
        assert structure.stats.retrieved <= 2 * len(edges)

    def test_sorting_pops_exactly_n_times(self):
        items = [(f"x{i}", i * 3 % 50) for i in range(40)]
        program = parse_program(texts.SORTING)
        engine = GreedyStageEngine(program, rng=random.Random(0))
        db = Database()
        db.assert_all("p", items)
        engine.run(db)
        structure = engine.rql_structures[("sp", 3)]
        assert structure.stats.retrieved == len(items)
        assert structure.stats.rejected_at_retrieval == 0

    def test_basic_and_rql_agree_on_every_program(self, diamond_graph):
        cases = [
            (texts.PRIM, {"g": symmetric_edges(diamond_graph), "source": [("a",)]}, "prm", 4),
            (texts.SORTING, {"p": [("u", 5), ("v", 1), ("w", 3)]}, "sp", 3),
            (
                texts.MATCHING,
                {"g": [("a", "x", 3), ("a", "y", 1), ("b", "x", 2)]},
                "matching",
                4,
            ),
        ]
        for source, facts, pred, arity in cases:
            basic = solve_program(source, facts=dict(facts), seed=0, engine="basic")
            rql = solve_program(source, facts=dict(facts), seed=0, engine="rql")
            assert set(basic.facts(pred, arity)) == set(rql.facts(pred, arity))


class TestDeviationsAreDocumented:
    def test_every_adjusted_program_has_a_deviation_note(self):
        for name in ("HUFFMAN", "TSP_GREEDY", "KRUSKAL", "SPANNING_TREE"):
            assert name in texts.DEVIATIONS
            assert len(texts.DEVIATIONS[name]) > 50


class TestMixedCliquePipelines:
    def test_choice_clique_feeds_a_stage_clique(self, takes_pairs):
        """A choice clique (Example 1) whose output is then ranked by a
        stage clique — the cliques must run in dependency order with the
        right engines."""
        source = texts.EXAMPLE1_ASSIGNMENT + """
        ranked(St, Crs, I) <- next(I), a_st(St, Crs), least(St, I).
        """
        db = solve_program(source, facts={"takes": takes_pairs}, seed=0)
        assignment = set(db.facts("a_st", 2))
        ranked = sorted(db.facts("ranked", 3), key=lambda f: f[2])
        assert len(ranked) == len(assignment)
        assert {(s, c) for s, c, _ in ranked} == assignment
        names = [s for s, _, _ in ranked]
        assert names == sorted(names)

    def test_two_stage_cliques_chain(self):
        """Sorting twice: the second stage clique consumes the first's
        output and must see it complete."""
        source = """
        sp(nil, 0, 0).
        sp(X, C, I) <- next(I), p(X, C), least(C, I).
        rev(X, I, K) <- next(K), sp(X, _, I), I > 0, most(I, K).
        """
        db = solve_program(
            source, facts={"p": [("a", 3), ("b", 1), ("c", 2)]}, seed=0
        )
        reversed_names = [
            f[0] for f in sorted(db.facts("rev", 3), key=lambda f: f[2])
        ]
        assert reversed_names == ["a", "c", "b"]  # descending cost order
