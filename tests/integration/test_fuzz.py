"""Differential fuzzing.

Two generators drive the engines over program *spaces* rather than
hand-picked examples:

* random safe positive programs (heads built from body variables), where
  naive and seminaive evaluation must agree exactly;
* random single-rule choice programs over random relations, where every
  run must satisfy the declared functional dependencies, be maximal, and
  pass the Gelfond–Lifschitz check.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.choice_fixpoint import ChoiceFixpointEngine
from repro.datalog.atoms import Atom, ChoiceGoal
from repro.datalog.naive import NaiveEngine
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.seminaive import SeminaiveEngine
from repro.datalog.terms import Var
from repro.semantics.stable import verify_engine_output
from repro.storage.database import Database

# ---------------------------------------------------------------------------
# random positive programs
# ---------------------------------------------------------------------------

EDB_PREDS = [("e1", 2), ("e2", 2)]
IDB_PREDS = [("p", 2), ("q", 2), ("r", 1)]
VARS = [Var(n) for n in ("X", "Y", "Z")]


@st.composite
def positive_rules(draw):
    head_pred, head_arity = draw(st.sampled_from(IDB_PREDS))
    body_size = draw(st.integers(1, 3))
    body = []
    for _ in range(body_size):
        pred, arity = draw(st.sampled_from(EDB_PREDS + IDB_PREDS))
        args = tuple(draw(st.sampled_from(VARS)) for _ in range(arity))
        body.append(Atom(pred, args))
    bound = [v for atom in body for v in atom.args]
    head_args = tuple(draw(st.sampled_from(bound)) for _ in range(head_arity))
    return Rule(Atom(head_pred, head_args), tuple(body))


@st.composite
def positive_programs(draw):
    rules = draw(st.lists(positive_rules(), min_size=1, max_size=4))
    return Program(tuple(rules))


edb_strategy = st.fixed_dictionaries(
    {
        "e1": st.sets(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=6
        ),
        "e2": st.sets(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=6
        ),
    }
)


class TestPositiveProgramFuzz:
    @settings(max_examples=60, deadline=None)
    @given(positive_programs(), edb_strategy)
    def test_naive_equals_seminaive(self, program, edb):
        naive_db = Database()
        semi_db = Database()
        for name, facts in edb.items():
            naive_db.assert_all(name, sorted(facts))
            semi_db.assert_all(name, sorted(facts))
        NaiveEngine(program, check_safety=False).run(naive_db)
        SeminaiveEngine(program, check_safety=False).run(semi_db)
        assert naive_db == semi_db


# ---------------------------------------------------------------------------
# random choice programs
# ---------------------------------------------------------------------------


@st.composite
def choice_programs(draw):
    """One rule ``pick(X, Y) <- base(X, Y), [choice goals]`` with one or
    two FDs drawn over the two columns."""
    n_goals = draw(st.integers(1, 2))
    goals = []
    directions = draw(
        st.lists(st.booleans(), min_size=n_goals, max_size=n_goals, unique=False)
    )
    for forward in directions:
        left, right = (VARS[0], VARS[1]) if forward else (VARS[1], VARS[0])
        goals.append(ChoiceGoal((left,), (right,)))
    body = (Atom("base", (VARS[0], VARS[1])),) + tuple(goals)
    rule = Rule(Atom("pick", (VARS[0], VARS[1])), body)
    return Program((rule,))


class TestChoiceProgramFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        choice_programs(),
        st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8),
        st.integers(0, 5),
    )
    def test_runs_satisfy_fds_maximality_and_stability(self, program, base, seed):
        db = Database()
        db.assert_all("base", sorted(base))
        engine = ChoiceFixpointEngine(program, rng=random.Random(seed))
        engine.run(db)
        picks = set(db.facts("pick", 2))
        assert picks <= set(base)
        (rule,) = program.rules
        for goal in rule.choice_goals:
            forward = goal.left == (VARS[0],)
            keys = [p[0] if forward else p[1] for p in picks]
            assert len(set(keys)) == len(keys), "FD violated"
        # Maximality: every unpicked base tuple must violate some FD
        # against an existing pick (same key, different tuple).
        for candidate in set(base) - picks:
            conflicts = any(
                any(
                    p != candidate
                    and p[0 if goal.left == (VARS[0],) else 1]
                    == candidate[0 if goal.left == (VARS[0],) else 1]
                    for p in picks
                )
                for goal in rule.choice_goals
            )
            assert conflicts, f"{candidate} could have been added"
        assert verify_engine_output(program, db)
