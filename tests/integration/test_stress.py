"""Stress tests: deep recursions and long stage runs must not hit
Python recursion limits or pathological slowdowns."""

from __future__ import annotations


from repro.core.compiler import compile_program, solve_program
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database
from repro.workloads import random_costed_relation


class TestDeepRecursion:
    def test_long_chain_transitive_closure(self):
        """1500-link chain: SCC detection and evaluation are iterative."""
        program = parse_program(
            "reach(X) <- start(X). reach(Y) <- reach(X), edge(X, Y)."
        )
        db = Database()
        db.assert_fact("start", (0,))
        db.assert_all("edge", [(i, i + 1) for i in range(1500)])
        SeminaiveEngine(program).run(db)
        assert len(db.relation("reach", 1)) == 1501

    def test_thousand_stage_sort(self):
        items = random_costed_relation(1000, seed=9)
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0)
        stages = [f[2] for f in db.facts("sp", 3)]
        assert max(stages) == 1000

    def test_path_graph_prim(self):
        """A 400-vertex path: the frontier is always one vertex wide, the
        stage count is maximal relative to the edge count."""
        edges = [(f"v{i}", f"v{i+1}", i + 1) for i in range(399)]
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(edges), "source": [("v0",)]},
            seed=0,
        )
        tree = [f for f in db.facts("prm", 4) if f[0] != "nil"]
        assert len(tree) == 399
        assert sum(f[2] for f in tree) == sum(c for _, _, c in edges)

    def test_wide_fanout_dijkstra(self):
        """A star graph: every vertex lands in the frontier at once."""
        edges = [("hub", f"leaf{i}", i + 1) for i in range(300)]
        db = solve_program(
            texts.DIJKSTRA,
            facts={"g": symmetric_edges(edges), "source": [("hub",)]},
            seed=0,
        )
        assert len(db.relation("dist", 3)) == 301


class TestCompileTimeScaling:
    def test_many_rule_program_compiles(self):
        """Analysis over hundreds of rules stays well-behaved."""
        rules = ["base0(0)."]
        for i in range(300):
            rules.append(f"p{i}(X) <- base{i}(X).")
            rules.append(f"base{i+1}(X) <- p{i}(X).")
        compiled = compile_program("\n".join(rules))
        db = compiled.run()
        assert (0,) in db.relation("p299", 1)
