"""Tests for hash-indexed relations."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.relation import Relation


class TestRelationBasics:
    def test_add_returns_true_for_new_fact(self):
        rel = Relation("g", 3)
        assert rel.add(("a", "b", 1)) is True
        assert rel.add(("a", "b", 1)) is False
        assert len(rel) == 1

    def test_arity_is_enforced(self):
        rel = Relation("g", 2)
        with pytest.raises(ValueError):
            rel.add(("a", "b", "c"))

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Relation("bad", -1)

    def test_contains_and_iter(self):
        rel = Relation("p", 1)
        rel.add(("x",))
        assert ("x",) in rel
        assert ("y",) not in rel
        assert list(rel) == [("x",)]

    def test_discard(self):
        rel = Relation("p", 1)
        rel.add(("x",))
        assert rel.discard(("x",)) is True
        assert rel.discard(("x",)) is False
        assert len(rel) == 0

    def test_add_all_counts_new(self):
        rel = Relation("p", 1)
        assert rel.add_all([("a",), ("b",), ("a",)]) == 2

    def test_copy_is_independent(self):
        rel = Relation("p", 1)
        rel.add(("a",))
        clone = rel.copy()
        clone.add(("b",))
        assert len(rel) == 1
        assert len(clone) == 2


class TestIndexing:
    def test_lookup_by_single_position(self):
        rel = Relation("g", 3)
        rel.add(("a", "b", 1))
        rel.add(("a", "c", 2))
        rel.add(("b", "c", 3))
        assert sorted(rel.lookup((0,), ("a",))) == [("a", "b", 1), ("a", "c", 2)]
        assert list(rel.lookup((0,), ("z",))) == []

    def test_lookup_by_multiple_positions(self):
        rel = Relation("g", 3)
        rel.add(("a", "b", 1))
        rel.add(("a", "b", 2))
        rel.add(("a", "c", 1))
        assert sorted(rel.lookup((0, 1), ("a", "b"))) == [("a", "b", 1), ("a", "b", 2)]

    def test_empty_positions_returns_everything(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        assert list(rel.lookup((), ())) == [("a", "b")]

    def test_index_maintained_after_build(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        assert list(rel.lookup((0,), ("a",))) == [("a", "b")]
        rel.add(("a", "c"))  # inserted after the index exists
        assert sorted(rel.lookup((0,), ("a",))) == [("a", "b"), ("a", "c")]

    def test_index_maintained_after_discard(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        rel.add(("a", "c"))
        list(rel.lookup((0,), ("a",)))
        rel.discard(("a", "b"))
        assert list(rel.lookup((0,), ("a",))) == [("a", "c")]

    def test_out_of_range_position_raises(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        with pytest.raises(IndexError):
            list(rel.lookup((5,), ("a",)))

    def test_first_returns_match_or_none(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        assert rel.first((0,), ("a",)) == ("a", "b")
        assert rel.first((0,), ("z",)) is None

    @given(
        st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
            max_size=60,
        ),
        st.integers(0, 5),
    )
    def test_lookup_equals_filter(self, facts, key):
        """Indexed lookup must agree with a naive scan, on any position."""
        rel = Relation("t", 3)
        for fact in facts:
            rel.add(fact)
        for pos in range(3):
            expected = {f for f in facts if f[pos] == key}
            assert set(rel.lookup((pos,), (key,))) == expected


class TestEnsureIndex:
    def test_builds_index_eagerly(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        rel.ensure_index((1,))
        assert (1,) in rel._indexes
        assert list(rel.lookup((1,), ("b",))) == [("a", "b")]

    def test_idempotent(self):
        rel = Relation("g", 2)
        rel.add(("a", "b"))
        rel.ensure_index((0,))
        index = rel._indexes[(0,)]
        rel.ensure_index((0,))
        assert rel._indexes[(0,)] is index

    def test_empty_positions_is_a_no_op(self):
        rel = Relation("g", 2)
        rel.ensure_index(())
        assert rel._indexes == {}

    def test_out_of_range_position_raises(self):
        rel = Relation("g", 2)
        with pytest.raises(IndexError):
            rel.ensure_index((5,))

    def test_index_built_before_facts_stays_current(self):
        rel = Relation("g", 2)
        rel.ensure_index((0,))
        rel.add(("a", "b"))
        assert list(rel.lookup((0,), ("a",))) == [("a", "b")]


class TestFullScanSnapshot:
    """Regression tests for the live-set aliasing bug: ``lookup((), ())``
    used to return the internal fact set itself, so inserting while
    iterating raised ``RuntimeError: Set changed size during iteration``
    — exactly what a fixpoint engine does when it asserts consequences
    while scanning a relation that feeds the same rule."""

    def test_full_scan_is_safe_under_insertion(self):
        rel = Relation("p", 1)
        rel.add((0,))
        rel.add((1,))
        seen = []
        for fact in rel.lookup((), ()):
            seen.append(fact)
            rel.add((fact[0] + 10,))  # mutate mid-iteration
        assert sorted(seen) == [(0,), (1,)]
        assert len(rel) == 4

    def test_full_scan_is_safe_under_discard(self):
        rel = Relation("p", 1)
        rel.add_all([(0,), (1,), (2,)])
        for fact in rel.lookup((), ()):
            rel.discard(fact)
        assert len(rel) == 0

    def test_full_scan_is_a_snapshot_not_an_alias(self):
        rel = Relation("p", 1)
        rel.add((0,))
        snapshot = rel.lookup((), ())
        rel.add((1,))
        assert list(snapshot) == [(0,)]

    def test_first_with_empty_positions(self):
        rel = Relation("p", 1)
        assert rel.first((), ()) is None
        rel.add((0,))
        assert rel.first((), ()) == (0,)


class TestSupportCounts:
    """Derivation-support bookkeeping used by counting maintenance."""

    def test_add_support_inserts_on_first_derivation(self):
        rel = Relation("p", 1)
        assert rel.add_support(("x",)) is True
        assert rel.add_support(("x",), 2) is False
        assert rel.support(("x",)) == 3
        assert ("x",) in rel

    def test_drop_support_removes_at_zero(self):
        rel = Relation("p", 1)
        rel.add_support(("x",), 2)
        assert rel.drop_support(("x",)) is False
        assert rel.drop_support(("x",)) is True
        assert ("x",) not in rel
        assert rel.support(("x",)) == 0

    def test_drop_support_clamps_over_deletion(self):
        rel = Relation("p", 1)
        rel.add_support(("x",))
        assert rel.drop_support(("x",), 10) is True
        assert ("x",) not in rel

    def test_set_support_forces_an_exact_count(self):
        rel = Relation("p", 1)
        rel.set_support(("x",), 3)
        assert ("x",) in rel
        assert rel.support(("x",)) == 3
        rel.set_support(("x",), 1)
        assert rel.support(("x",)) == 1

    def test_set_support_nonpositive_removes_the_fact(self):
        rel = Relation("p", 1)
        rel.set_support(("x",), 2)
        rel.set_support(("x",), 0)
        assert ("x",) not in rel
        assert rel.support(("x",)) == 0
        # Removing an absent fact is a no-op, not an error.
        rel.set_support(("y",), -1)
        assert ("y",) not in rel

    def test_plain_discard_clears_the_count(self):
        rel = Relation("p", 1)
        rel.add_support(("x",), 4)
        rel.discard(("x",))
        assert rel.support(("x",)) == 0
        # Re-adding starts a fresh count, not a resurrected one.
        assert rel.add_support(("x",)) is True
        assert rel.support(("x",)) == 1
