"""Unit and property tests for the binary-heap priority queue."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.heap import PriorityQueue


class TestBasicOperations:
    def test_empty_queue_has_zero_length(self):
        assert len(PriorityQueue()) == 0
        assert not PriorityQueue()

    def test_pop_least_returns_minimum(self):
        q = PriorityQueue()
        q.insert(3, "c")
        q.insert(1, "a")
        q.insert(2, "b")
        assert q.pop_least() == (1, "a")
        assert q.pop_least() == (2, "b")
        assert q.pop_least() == (3, "c")

    def test_pop_from_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop_least()

    def test_peek_does_not_remove(self):
        q = PriorityQueue()
        q.insert(5, "x")
        assert q.peek_least() == (5, "x")
        assert len(q) == 1
        assert q.pop_least() == (5, "x")

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().peek_least()

    def test_equal_priorities_pop_in_insertion_order(self):
        q = PriorityQueue()
        for item in ("first", "second", "third"):
            q.insert(7, item)
        assert [q.pop_least()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_iteration_yields_live_entries(self):
        q = PriorityQueue()
        handles = [q.insert(i, f"item{i}") for i in range(5)]
        q.delete(handles[2])
        assert sorted(item for _, item in q) == ["item0", "item1", "item3", "item4"]

    def test_clear_resets(self):
        q = PriorityQueue()
        q.insert(1, "a")
        q.clear()
        assert len(q) == 0


class TestLazyDeletion:
    def test_deleted_entry_not_popped(self):
        q = PriorityQueue()
        smallest = q.insert(1, "small")
        q.insert(2, "big")
        q.delete(smallest)
        assert len(q) == 1
        assert q.pop_least() == (2, "big")

    def test_double_delete_is_idempotent(self):
        q = PriorityQueue()
        handle = q.insert(1, "a")
        q.insert(2, "b")
        q.delete(handle)
        q.delete(handle)
        assert len(q) == 1

    def test_delete_all_leaves_empty(self):
        q = PriorityQueue()
        handles = [q.insert(i, i) for i in range(10)]
        for handle in handles:
            q.delete(handle)
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.peek_least()

    def test_compaction_keeps_correct_order(self):
        # Force many replacements so the dead-entry compaction kicks in.
        q = PriorityQueue()
        rng = random.Random(0)
        live = {}
        for i in range(500):
            key = rng.randrange(50)
            if key in live:
                q.delete(live[key])
            live[key] = q.insert(rng.randrange(1000), key)
        assert len(q) == len(live)
        popped = [q.pop_least()[0] for _ in range(len(live))]
        assert popped == sorted(popped)


class TestPropertyBased:
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_heap_sorts_any_integer_list(self, values):
        q = PriorityQueue()
        for v in values:
            q.insert(v, v)
        out = [q.pop_least()[0] for _ in range(len(values))]
        assert out == sorted(values)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 50)), min_size=1, max_size=200
        )
    )
    def test_interleaved_insert_pop_matches_model(self, ops):
        """Model-based test: the queue behaves like a sorted list."""
        q = PriorityQueue()
        model = []
        counter = 0
        for is_pop, value in ops:
            if is_pop and model:
                expected = min(model)
                got_priority, _ = q.pop_least()
                assert got_priority == expected
                model.remove(expected)
            else:
                q.insert(value, counter)
                model.append(value)
                counter += 1
        assert len(q) == len(model)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100), st.data())
    def test_random_deletions_preserve_order(self, values, data):
        q = PriorityQueue()
        handles = [q.insert(v, i) for i, v in enumerate(values)]
        doomed = data.draw(
            st.sets(st.integers(0, len(values) - 1), max_size=len(values))
        )
        for i in doomed:
            q.delete(handles[i])
        remaining = sorted(v for i, v in enumerate(values) if i not in doomed)
        popped = [q.pop_least()[0] for _ in range(len(q))]
        assert popped == remaining
