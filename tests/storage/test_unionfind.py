"""Tests for the disjoint-set forest."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.unionfind import UnionFind


class TestUnionFind:
    def test_fresh_elements_are_singletons(self):
        uf = UnionFind(["a", "b"])
        assert uf.component_count == 2
        assert not uf.connected("a", "b")
        assert uf.component_size("a") == 1

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.connected("a", "b")
        assert uf.component_size("a") == 2
        assert uf.component_count == 1

    def test_union_of_connected_returns_false(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.union("a", "c") is False
        assert uf.component_count == 1

    def test_find_is_consistent(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("a", "d")
        roots = {uf.find(x) for x in "abcd"}
        assert len(roots) == 1

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert "x" not in uf
        uf.find("x")
        assert "x" in uf
        assert len(uf) == 1

    def test_component_count_tracks_merges(self):
        uf = UnionFind(range(10))
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.component_count == 1

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=100))
    def test_matches_naive_partition(self, pairs):
        """Model-based: compare against a naive set-merging partition."""
        uf = UnionFind()
        groups: dict = {}

        def group_of(x):
            if x not in groups:
                groups[x] = {x}
            return groups[x]

        for a, b in pairs:
            uf.union(a, b)
            ga, gb = group_of(a), group_of(b)
            if ga is not gb:
                ga |= gb
                for member in gb:
                    groups[member] = ga
        for a, b in pairs:
            assert uf.connected(a, b) == (group_of(a) is group_of(b))
