"""Tests for the predicate-keyed fact database."""

from __future__ import annotations

from repro.storage.database import Database


class TestDatabase:
    def test_relation_created_on_demand(self):
        db = Database()
        rel = db.relation("p", 2)
        assert rel.arity == 2
        assert db.relation("p", 2) is rel

    def test_same_name_different_arity_coexist(self):
        db = Database()
        db.assert_fact("takes", ("a", "b"))
        db.assert_fact("takes", ("a", "b", 3))
        assert len(db.relation("takes", 2)) == 1
        assert len(db.relation("takes", 3)) == 1

    def test_get_never_creates(self):
        db = Database()
        assert db.get("q", 1) is None
        assert list(db.predicates()) == []

    def test_assert_all_counts(self):
        db = Database()
        assert db.assert_all("p", [("a",), ("b",), ("a",)]) == 2

    def test_facts_of_unknown_predicate_is_empty(self):
        db = Database()
        assert list(db.facts("nope", 3)) == []

    def test_total_facts(self):
        db = Database()
        db.assert_all("p", [("a",), ("b",)])
        db.assert_fact("q", (1, 2))
        assert db.total_facts() == 3

    def test_copy_is_deep_enough(self):
        db = Database()
        db.assert_fact("p", ("a",))
        clone = db.copy()
        clone.assert_fact("p", ("b",))
        assert len(db.relation("p", 1)) == 1
        assert len(clone.relation("p", 1)) == 2

    def test_equality_ignores_empty_relations(self):
        a = Database()
        b = Database()
        a.assert_fact("p", ("x",))
        b.assert_fact("p", ("x",))
        b.relation("q", 2)  # empty relation should not break equality
        assert a == b

    def test_inequality(self):
        a = Database()
        b = Database()
        a.assert_fact("p", ("x",))
        assert a != b
        assert (a == "not a database") is NotImplemented or a != "not a database"

    def test_as_dict_snapshot(self):
        db = Database()
        db.assert_fact("p", ("x",))
        snap = db.as_dict()
        assert snap == {("p", 1): frozenset({("x",)})}
