"""Round-trip tests for the fact-file serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.database import Database
from repro.storage.io import dumps_facts, load_facts, loads_facts, save_facts


def _db(**relations):
    db = Database()
    for name, facts in relations.items():
        db.assert_all(name, facts)
    return db


class TestRoundTrip:
    def test_symbols_numbers_strings(self):
        db = _db(g=[("a", "b", 4), ("a", "c", 1.5)], note=[("hello world",)])
        assert loads_facts(dumps_facts(db)) == db

    def test_quoted_strings_with_escapes(self):
        db = _db(s=[("it's",), ("back\\slash",), ("UPPER",), ("",)])
        assert loads_facts(dumps_facts(db)) == db

    def test_reserved_words_are_quoted(self):
        db = _db(w=[("not",), ("choice",), ("least",)])
        text = dumps_facts(db)
        assert "'not'" in text
        assert loads_facts(text) == db

    def test_functor_tagged_tuples(self):
        tree = ("t", ("t", "a", "b"), "c")
        db = _db(h=[(tree, 12)])
        text = dumps_facts(db)
        assert "t(t(a, b), c)" in text
        assert loads_facts(text) == db

    def test_bare_tuples(self):
        db = _db(p=[((1, 2), "x"), ((), "y")])
        assert loads_facts(dumps_facts(db)) == db

    def test_negative_numbers(self):
        db = _db(n=[(-4,), (-2.5,)])
        assert loads_facts(dumps_facts(db)) == db

    def test_empty_database(self):
        assert dumps_facts(Database()) == ""
        assert loads_facts("") == Database()

    def test_predicate_subset(self):
        db = _db(keep=[(1,)], drop=[(2,)])
        text = dumps_facts(db, predicates=[("keep", 1)])
        assert "drop" not in text

    def test_file_round_trip(self, tmp_path):
        db = _db(g=[("a", "b", 4)])
        path = tmp_path / "facts.dl"
        save_facts(db, path)
        assert load_facts(path) == db

    def test_exponent_floats_rejected(self):
        db = _db(x=[(1e30,)])
        with pytest.raises(ValueError):
            dumps_facts(db)

    def test_booleans_rejected(self):
        db = _db(x=[(True,)])
        with pytest.raises(ValueError):
            dumps_facts(db)

    value = st.recursive(
        st.one_of(
            st.integers(-10_000, 10_000),
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
            ),
            st.sampled_from(["a", "nil", "x1"]),
        ),
        lambda children: st.tuples(children, children),
        max_leaves=4,
    )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(value, value), max_size=10))
    def test_arbitrary_values_round_trip(self, facts):
        db = _db(p=facts)
        assert loads_facts(dumps_facts(db)) == db


class TestCLISave:
    def test_save_flag_writes_loadable_facts(self, tmp_path):
        import io as _io

        from repro.cli import main
        from repro.programs import texts

        program = tmp_path / "sort.dl"
        program.write_text(texts.SORTING)
        items = tmp_path / "items.csv"
        items.write_text("a,3\nb,1\n")
        output = tmp_path / "model.dl"
        code = main(
            [
                str(program),
                "--facts",
                f"p={items}",
                "--seed",
                "0",
                "--save",
                str(output),
            ],
            out=_io.StringIO(),
        )
        assert code == 0
        db = load_facts(output)
        assert len(db.relation("sp", 3)) == 3
