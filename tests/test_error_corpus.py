"""A corpus of ill-formed programs, one per error class.

Every rejection path of the compiler must fire with the right exception
type and a message naming the offender — silent mis-evaluation of an
unsupported program is the worst failure mode a language system can have.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_program, solve_program
from repro.core.rewriting import expand_next
from repro.datalog.parser import parse_program
from repro.errors import (
    BudgetExceeded,
    Cancelled,
    ParseError,
    RewriteError,
    SafetyError,
    StageAnalysisError,
    StratificationError,
)

CASES = [
    # (label, source, exception, message fragment)
    ("unterminated clause", "p(a)", ParseError, "expected"),
    ("dangling comma", "p(a,).", ParseError, "term"),
    ("bare number goal", "p(X) <- q(X), 3.", ParseError, "goal"),
    ("stray bracket", "p(a]).", ParseError, "unexpected character"),
    ("unbound head variable", "p(X, Y) <- q(X).", SafetyError, "Y"),
    ("unbound negation", "p(X) <- q(X), not r(Z).", SafetyError, "Z"),
    ("unbound comparison", "p(X) <- q(X), Y < 3.", SafetyError, "Y"),
    ("unbound choice", "p(X) <- q(X), choice(X, Z).", SafetyError, "Z"),
    (
        "assignment from nowhere",
        "p(X, K) <- q(X), K = J * 2.",
        SafetyError,
        "K",
    ),
]


@pytest.mark.parametrize(
    "source,exception,fragment",
    [(source, exc, fragment) for _, source, exc, fragment in CASES],
    ids=[label for label, *_ in CASES],
)
def test_compile_rejections(source, exception, fragment):
    with pytest.raises(exception) as info:
        compile_program(source)
    assert fragment.lower() in str(info.value).lower()


RUNTIME_CASES = [
    (
        "negation through recursion",
        "win(X) <- move(X, Y), not win(Y).",
        {"move": [(1, 2)]},
        StratificationError,
    ),
    (
        "extrema through plain recursion",
        """
        best(X, C) <- seed(X, C).
        best(X, C) <- best(X, D), step(D, C), least(C).
        """,
        {"seed": [("a", 1)], "step": [(1, 2)]},
        StratificationError,
    ),
]


@pytest.mark.parametrize(
    "source,facts,exception",
    [(source, facts, exc) for _, source, facts, exc in RUNTIME_CASES],
    ids=[label for label, *_ in RUNTIME_CASES],
)
def test_runtime_rejections(source, facts, exception):
    with pytest.raises(exception):
        solve_program(source, facts=facts)


class TestRewriteRejections:
    def test_next_variable_missing_from_head(self):
        with pytest.raises(RewriteError, match="head"):
            expand_next(parse_program("p(X) <- next(I), q(X)."))

    def test_double_next(self):
        with pytest.raises(RewriteError, match="multiple next"):
            expand_next(parse_program("p(I, J) <- next(I), next(J), q(I, J)."))


class TestMessagesNameTheRule:
    def test_safety_error_contains_rule_text(self):
        try:
            compile_program("broken(X, Y) <- q(X).")
        except SafetyError as exc:
            assert "broken(X, Y)" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected SafetyError")

    def test_stage_violation_lists_reason(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X, J), least(J).
        q(X, J) <- p(X, J).
        """
        compiled = compile_program(source)
        report = compiled.analysis.report_for("p", 2)
        assert report.violations
        assert any("cannot prove" in v for v in report.violations)
        # Uniform diagnostics: each rule-level violation names the rule by
        # its 1-based position in the program.
        assert any(v.startswith("rule #") for v in report.violations)

    def test_stratification_error_names_clique_and_rule(self):
        source = """
        best(X, C) <- seed(X, C).
        best(X, C) <- best(X, D), step(D, C), least(C).
        """
        with pytest.raises(StratificationError) as info:
            solve_program(source, facts={"seed": [("a", 1)], "step": [(1, 2)]})
        message = str(info.value)
        assert "clique [best/2]" in message
        assert "rule #2" in message

    def test_stage_analysis_error_names_clique(self):
        # The next variable lands in two head positions, so the clique is
        # refused outright — and the message says which clique.
        source = """
        p(nil, 0, 0).
        p(X, I, I) <- next(I), q(X).
        """
        with pytest.raises(StageAnalysisError) as info:
            solve_program(source, facts={"q": [("a",)]}, engine="basic")
        message = str(info.value)
        assert "clique [p/3]" in message
        assert "stage argument" in message


class TestGovernorMessages:
    """Golden messages for the budget/cancellation error family: the
    message must name the exhausted resource and its configured limit."""

    DIVERGENT = "nat(0). nat(Y) <- nat(X), Y = X + 1."

    def test_budget_exceeded_names_the_cap(self):
        from repro.robust import Budget, RunGovernor

        governor = RunGovernor(Budget(max_rounds=10), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            solve_program(self.DIVERGENT, seed=0, governor=governor)
        assert str(info.value) == "budget exceeded: saturation-round cap of 10 exceeded"
        assert info.value.partial is not None

    def test_fact_cap_message_reports_the_count(self):
        from repro.robust import Budget, RunGovernor

        governor = RunGovernor(Budget(max_facts=100), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            solve_program(self.DIVERGENT, seed=0, governor=governor)
        message = str(info.value)
        assert message.startswith("budget exceeded: derived-fact cap of 100 exceeded")
        assert "database holds" in message

    def test_cancelled_carries_the_reason(self):
        from repro.robust import CancelToken, RunGovernor

        token = CancelToken()
        token.cancel("operator stop")
        governor = RunGovernor(token=token, check_interval=1)
        with pytest.raises(Cancelled) as info:
            solve_program(self.DIVERGENT, seed=0, governor=governor)
        assert str(info.value) == "cancelled: operator stop"
        assert info.value.partial is not None


class TestCheckpointMessages:
    """Golden messages for the checkpoint error family: a rejected
    checkpoint must say which artefact is wrong and why resuming it is
    unsafe, in one line (the CLI prints exactly the first line)."""

    SORTING = """
    sp(nil, nil, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
    """

    def _checkpoint(self):
        from repro.robust import Budget, RunGovernor

        compiled = compile_program(self.SORTING)
        governor = RunGovernor(Budget(max_gamma_steps=3), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            compiled.run({"p": [("a", 1), ("b", 2), ("c", 3)]}, seed=0, governor=governor)
        return info.value.partial.checkpoint

    def test_fingerprint_mismatch_names_both_fingerprints(self):
        from repro.errors import CheckpointError
        from repro.robust import restore

        cp = self._checkpoint()
        other = compile_program(
            "sp(nil, nil, 0). sp(X, C, I) <- next(I), q(X, C), least(C, I)."
        )
        with pytest.raises(CheckpointError) as info:
            restore(cp, other.program)
        message = str(info.value)
        assert "does not belong to this program" in message
        assert cp.fingerprint in message
        assert "\n" not in message

    def test_unsupported_version_lists_readable_versions(self):
        from repro.errors import CheckpointError
        from repro.robust.checkpoint import dumps, loads, CHECKPOINT_VERSION

        text = dumps(self._checkpoint()).replace(
            f'"version": {CHECKPOINT_VERSION}', '"version": 99'
        )
        with pytest.raises(CheckpointError) as info:
            loads(text)
        message = str(info.value)
        assert "unsupported checkpoint version 99" in message
        assert "1" in message and str(CHECKPOINT_VERSION) in message


class TestDurabilityMessages:
    """Golden messages for the durability error family: crash-point
    injections say where they fired, WAL corruption says which segment
    and byte, and recovery errors say what the operator should do."""

    def test_simulated_crash_names_site_and_crash_point(self, tmp_path):
        from repro.durable import CheckpointStore
        from repro.robust import SimulatedCrash, inject

        store = CheckpointStore(tmp_path)
        with pytest.raises(SimulatedCrash) as info:
            with inject(None, crash_after=1):
                store.journal_request("r", {})
        assert str(info.value) == "simulated crash at wal.write (crash point 1)"

    def test_planned_crash_names_site_and_visit(self, tmp_path):
        from repro.durable import CheckpointStore
        from repro.robust import FaultInjector, FaultPlan, SimulatedCrash, inject

        store = CheckpointStore(tmp_path)
        plan = FaultPlan("wal.fsync", mode="crash", nth=1)
        with pytest.raises(SimulatedCrash) as info:
            with inject(FaultInjector([plan])):
                store.journal_request("r", {})
        assert str(info.value) == "simulated crash at wal.fsync (visit 1, nth=1)"

    def test_torn_write_names_site_and_visit(self, tmp_path):
        from repro.durable import CheckpointStore
        from repro.robust import FaultInjector, FaultPlan, SimulatedCrash, inject

        store = CheckpointStore(tmp_path)
        plan = FaultPlan("wal.write", mode="torn", nth=1)
        with pytest.raises(SimulatedCrash) as info:
            with inject(FaultInjector([plan])):
                store.journal_request("r", {})
        assert str(info.value) == (
            "simulated torn write at wal.write (visit 1, nth=1)"
        )

    def test_mid_log_corruption_names_segment_and_byte(self, tmp_path):
        from repro.durable.wal import frame, scan_segment
        from repro.errors import WalCorruptionError

        path = tmp_path / "wal-00000001.log"
        damaged = bytearray(frame(b"payload"))
        damaged[-1] ^= 0xFF
        path.write_bytes(bytes(damaged) + frame(b"after"))
        with pytest.raises(WalCorruptionError) as info:
            scan_segment(path)
        message = str(info.value)
        assert message.startswith("WAL segment wal-00000001.log is corrupt at byte 0:")
        assert "CRC mismatch" in message
        assert "mid-log damage cannot come from a crash" in message

    def test_resume_unknown_rid_lists_the_pending_runs(self, tmp_path):
        from repro.core.compiler import compile_program
        from repro.durable import CheckpointStore
        from repro.errors import RecoveryError

        with CheckpointStore(tmp_path) as store:
            store.journal_request("alpha", {})
            with pytest.raises(RecoveryError) as info:
                store.resume("ghost", compile_program("p(a).").program)
        message = str(info.value)
        assert message.startswith(f"no recoverable run 'ghost' in {tmp_path}")
        assert "'alpha'" in message

    def test_resume_before_first_checkpoint_suggests_the_journal(self, tmp_path):
        from repro.core.compiler import compile_program
        from repro.durable import CheckpointStore
        from repro.errors import RecoveryError

        with CheckpointStore(tmp_path) as store:
            store.journal_request("early", {})
            with pytest.raises(RecoveryError) as info:
                store.resume("early", compile_program("p(a).").program)
        assert str(info.value) == (
            f"run 'early' in {tmp_path} crashed before its first durable "
            "checkpoint — re-run it from the journalled request"
        )


class TestServiceMessages:
    """Golden messages for the query service's typed rejections: each
    carries a machine-usable hint, and the message stands alone."""

    def test_overloaded_reports_capacity_and_hint(self):
        from repro.serve import AdmissionQueue, Overloaded

        queue = AdmissionQueue(capacity=2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(Overloaded) as info:
            queue.offer("c")
        message = str(info.value)
        assert "admission queue is full (2 requests waiting)" in message
        assert "retry in" in message
        assert info.value.retry_after > 0

    def test_circuit_open_names_the_program_class(self):
        from repro.serve import CircuitOpen, QueryRequest, QueryService

        svc = QueryService(workers=1, failure_threshold=1, reset_timeout=60.0)
        try:
            ticket = svc.submit(QueryRequest(program="p(a", klass="golden"))
            ticket.response(timeout=30)
            with pytest.raises(CircuitOpen) as info:
                svc.submit(QueryRequest(program="p(a", klass="golden"))
            assert str(info.value) == (
                "circuit breaker for program class 'golden' is open"
            )
            assert info.value.klass == "golden"
        finally:
            svc.close()

    def test_fault_injection_reentry_message_explains_the_fix(self):
        from repro.robust.faults import (
            FaultInjectionError,
            FaultInjector,
            inject,
        )

        with inject(FaultInjector()):
            with pytest.raises(FaultInjectionError) as info:
                with inject(FaultInjector()):
                    pass  # pragma: no cover
        message = str(info.value)
        assert "already active" in message
        assert "single FaultInjector" in message
