"""Tests for the matroid module (the Section 7 connection)."""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matroids import (
    GraphicMatroid,
    PartitionMatroid,
    TransversalLikeSystem,
    UniformMatroid,
    greedy_max_weight,
    greedy_min_weight,
    is_matroid,
)


class TestAxioms:
    def test_uniform_is_matroid(self):
        assert is_matroid(UniformMatroid("abcde", 2))

    def test_partition_is_matroid(self):
        blocks = {"e1": "b1", "e2": "b1", "e3": "b2", "e4": "b2"}
        assert is_matroid(PartitionMatroid(blocks, capacities=1))

    def test_graphic_is_matroid(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        assert is_matroid(GraphicMatroid(edges))

    def test_matching_system_is_not_a_matroid(self):
        """The paper's implicit point: the matching constraint (two
        partition matroids intersected) breaks the exchange axiom, which
        is why greedy matching is maximal but not optimal."""
        system = TransversalLikeSystem([("a", "x"), ("a", "y"), ("b", "x")])
        assert not is_matroid(system)

    def test_uniform_zero_is_trivial_matroid(self):
        m = UniformMatroid("ab", 0)
        assert is_matroid(m)
        assert m.rank() == 0


class TestDerivedNotions:
    def test_rank_of_uniform(self):
        assert UniformMatroid("abcde", 3).rank() == 3

    def test_graphic_rank_is_spanning_forest_size(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        assert GraphicMatroid(edges).rank() == 2

    def test_bases_of_triangle(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        bases = GraphicMatroid(edges).bases()
        assert len(bases) == 3
        assert all(len(b) == 2 for b in bases)

    def test_independent_sets_downward_closed(self):
        m = UniformMatroid("abc", 2)
        independents = m.independent_sets()
        for s in independents:
            for element in s:
                assert frozenset(s - {element}) in independents


class TestGreedyOptimality:
    def test_kruskal_is_graphic_matroid_greedy(self, diamond_graph):
        edges = [(u, v) for u, v, _ in diamond_graph]
        weights = {(u, v): c for u, v, c in diamond_graph}
        matroid = GraphicMatroid(edges)
        basis = greedy_min_weight(matroid, weights)
        assert sum(weights[e] for e in basis) == 8

    def test_max_weight_greedy_on_uniform(self):
        weights = {"a": 5, "b": 9, "c": 1, "d": 7}
        basis = greedy_max_weight(UniformMatroid("abcd", 2), weights)
        assert set(basis) == {"b", "d"}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_greedy_equals_brute_force_on_matroids(self, seed):
        """Rado–Edmonds, positive direction: greedy is optimal on a
        random partition matroid for random weights."""
        rng = random.Random(seed)
        elements = [f"e{i}" for i in range(6)]
        blocks = {e: f"b{rng.randrange(3)}" for e in elements}
        weights = {e: rng.randrange(1, 100) for e in elements}
        matroid = PartitionMatroid(blocks, capacities=1)
        greedy_value = sum(weights[e] for e in greedy_max_weight(matroid, weights))
        best = max(
            sum(weights[e] for e in subset)
            for r in range(len(elements) + 1)
            for subset in itertools.combinations(elements, r)
            if matroid.is_independent(set(subset))
        )
        assert greedy_value == best

    def test_greedy_can_fail_on_non_matroid(self):
        """Rado–Edmonds, negative direction: on the matching system a
        weight function exists where greedy is suboptimal."""
        system = TransversalLikeSystem([("a", "x"), ("a", "y"), ("b", "x")])
        weights = {("a", "x"): 10, ("a", "y"): 9, ("b", "x"): 9}
        greedy_value = sum(weights[e] for e in greedy_max_weight(system, weights))
        best = max(
            sum(weights[e] for e in subset)
            for r in range(4)
            for subset in itertools.combinations(system.ground_set, r)
            if system.is_independent(set(subset))
        )
        assert greedy_value < best
