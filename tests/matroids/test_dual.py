"""Tests for matroid duality."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matroids import (
    DualMatroid,
    GraphicMatroid,
    PartitionMatroid,
    UniformMatroid,
    is_matroid,
)


class TestDualMatroid:
    def test_dual_of_uniform_is_uniform(self):
        # U(n, k)* = U(n, n - k)
        dual = DualMatroid(UniformMatroid("abcde", 2))
        assert is_matroid(dual)
        assert dual.rank() == 3
        reference = UniformMatroid("abcde", 3)
        assert dual.independent_sets() == reference.independent_sets()

    def test_double_dual_is_primal(self):
        primal = GraphicMatroid([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        double = DualMatroid(DualMatroid(primal))
        assert double.independent_sets() == primal.independent_sets()

    def test_cographic_rank(self):
        # Triangle: graphic rank 2, dual (cographic) rank e - r = 1.
        primal = GraphicMatroid([("a", "b"), ("b", "c"), ("a", "c")])
        dual = DualMatroid(primal)
        assert dual.rank() == 1
        assert is_matroid(dual)

    def test_dual_of_partition_matroid_is_matroid(self):
        blocks = {"e1": "b1", "e2": "b1", "e3": "b2"}
        dual = DualMatroid(PartitionMatroid(blocks, capacities=1))
        assert is_matroid(dual)

    def test_dual_bases_are_complements_of_primal_bases(self):
        primal = UniformMatroid("abcd", 1)
        dual = DualMatroid(primal)
        primal_bases = primal.bases()
        dual_bases = dual.bases()
        ground = primal.ground_set
        assert {frozenset(ground - b) for b in primal_bases} == dual_bases

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 4), st.integers(3, 5))
    def test_rank_identity(self, k, n):
        """r(M*) = |E| - r(M) for every uniform matroid."""
        ground = [f"e{i}" for i in range(n)]
        primal = UniformMatroid(ground, min(k, n))
        dual = DualMatroid(primal)
        assert dual.rank() == n - primal.rank()
