"""Tests for the naive and seminaive fixpoint engines, including their
cross-equivalence on random programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.naive import NaiveEngine
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.errors import EvaluationError
from repro.storage.database import Database

TC = """
path(X, Y) <- edge(X, Y).
path(X, Y) <- path(X, Z), edge(Z, Y).
"""

SAME_GENERATION = """
sg(X, X) <- person(X).
sg(X, Y) <- parent(XP, X), sg(XP, YP), parent(YP, Y).
"""


def _run(engine_cls, text, **facts):
    db = Database()
    for name, rows in facts.items():
        db.assert_all(name, rows)
    engine = engine_cls(parse_program(text))
    engine.run(db)
    return db, engine


class TestTransitiveClosure:
    def test_chain(self):
        edges = [(i, i + 1) for i in range(5)]
        db, _ = _run(SeminaiveEngine, TC, edge=edges)
        assert len(db.relation("path", 2)) == 5 * 6 // 2

    def test_cycle(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        db, _ = _run(NaiveEngine, TC, edge=edges)
        assert len(db.relation("path", 2)) == 9

    def test_engines_agree(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 1), (0, 4)]
        naive_db, _ = _run(NaiveEngine, TC, edge=edges)
        semi_db, _ = _run(SeminaiveEngine, TC, edge=edges)
        assert naive_db == semi_db

    def test_seminaive_fires_fewer_rules_on_long_chains(self):
        edges = [(i, i + 1) for i in range(30)]
        _, naive = _run(NaiveEngine, TC, edge=edges)
        _, semi = _run(SeminaiveEngine, TC, edge=edges)
        assert semi.stats.facts_derived == naive.stats.facts_derived
        # The derived facts are identical; the evaluation work is not —
        # naive re-evaluates every rule in full on every pass, seminaive
        # fires each delta variant once per round.
        assert naive.stats.rule_firings > semi.stats.rule_firings


class TestStratifiedNegation:
    def test_unreachable_pairs(self):
        text = TC + """
        node(X) <- edge(X, _).
        node(Y) <- edge(_, Y).
        unreach(X, Y) <- node(X), node(Y), not path(X, Y).
        """
        db, _ = _run(SeminaiveEngine, text, edge=[(0, 1), (2, 3)])
        unreach = set(db.relation("unreach", 2))
        assert (0, 2) in unreach
        assert (0, 1) not in unreach

    def test_same_generation(self):
        facts = {
            "person": [("root",), ("ann",), ("bob",), ("cal",), ("dot",)],
            "parent": [
                ("root", "ann"),
                ("root", "bob"),
                ("ann", "cal"),
                ("bob", "dot"),
            ],
        }
        naive_db, _ = _run(NaiveEngine, SAME_GENERATION, **facts)
        semi_db, _ = _run(SeminaiveEngine, SAME_GENERATION, **facts)
        assert naive_db == semi_db
        assert ("cal", "dot") in naive_db.relation("sg", 2)


class TestRejections:
    def test_meta_goals_rejected(self):
        program = parse_program("p(X, I) <- next(I), q(X).")
        with pytest.raises(EvaluationError):
            NaiveEngine(program)
        with pytest.raises(EvaluationError):
            SeminaiveEngine(program)

    def test_program_facts_loaded(self):
        db, _ = _run(SeminaiveEngine, "edge(a, b). " + TC)
        assert ("a", "b") in db.relation("path", 2)


class TestEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=25
        )
    )
    def test_naive_equals_seminaive_on_random_graphs(self, edges):
        naive_db, _ = _run(NaiveEngine, TC, edge=sorted(edges))
        semi_db, _ = _run(SeminaiveEngine, TC, edge=sorted(edges))
        assert naive_db == semi_db

    @settings(max_examples=15, deadline=None)
    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15)
    )
    def test_closure_is_actually_transitive(self, edges):
        db, _ = _run(SeminaiveEngine, TC, edge=sorted(edges))
        path = set(db.relation("path", 2))
        assert set(edges) <= path
        for a, b in path:
            for c, d in path:
                if b == c:
                    assert (a, d) in path
