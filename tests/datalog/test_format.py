"""Tests for ground-value rendering (the inverse of parsing)."""

from __future__ import annotations


from repro.datalog.parser import parse_term
from repro.datalog.terms import Const, Struct, Var, format_value
from repro.datalog.unify import ground_term


class TestFormatValue:
    def test_scalars(self):
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"
        assert format_value(2.5) == "2.5"

    def test_functor_tagged_tuple(self):
        assert format_value(("t", "a", "b")) == "t(a, b)"

    def test_nested_functor(self):
        value = ("t", ("t", "a", "b"), "c")
        assert format_value(value) == "t(t(a, b), c)"

    def test_bare_tuple(self):
        assert format_value((1, 2)) == "(1, 2)"
        assert format_value(()) == "()"

    def test_matches_ground_term_of_parsed_struct(self):
        term = parse_term("t(a, (1, 2))")
        value = ground_term(term, {})
        assert format_value(value) == "t(a, (1, 2))"


class TestTermPrinting:
    def test_arithmetic_prints_infix(self):
        term = Struct("+", (Var("J"), Const(1)))
        assert str(term) == "(J + 1)"

    def test_nested_arithmetic(self):
        term = Struct("-", (Struct("*", (Var("A"), Var("B"))), Const(3)))
        assert str(term) == "((A * B) - 3)"

    def test_neg_prints_parenthesised(self):
        assert str(Struct("neg", (Var("X"),))) == "(-X)"

    def test_max_prints_as_call(self):
        term = Struct("max", (Var("J"), Var("K")))
        assert str(term) == "max(J, K)"
        assert parse_term(str(term)) == term

    def test_wildcards_print_as_underscore(self):
        from repro.datalog.terms import fresh_var

        assert str(fresh_var("_anon")) == "_"
