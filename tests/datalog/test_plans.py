"""Golden-plan tests for the compilation layer.

These pin the planner's join orders for the tricky cases — unbound
arithmetic assignments, negated conjunctions with local existentials,
delta-first specialization — so a planner regression fails loudly, and
cross-check the compiled executor against the legacy tuple-at-a-time
solver.
"""

from __future__ import annotations

import pytest

from repro.datalog.atoms import NegatedConjunction, Negation
from repro.datalog.evaluation import rule_consequences
from repro.datalog.naive import NaiveEngine
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.plans import (
    PlanCache,
    compile_rule,
    register_plan_indices,
    run_plan,
)
from repro.datalog.seminaive import SeminaiveEngine
from repro.errors import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation


def _db(**relations):
    db = Database()
    for name, facts in relations.items():
        db.assert_all(name, facts)
    return db


def _order(plan):
    return [str(step.literal) for step in plan.steps]


class TestGoldenPlans:
    def test_unbound_arithmetic_assignment_waits_for_inputs(self):
        # K = J + 1 can only run once r(J) has bound J, even though the
        # assignment appears first in the body.
        rule = parse_rule("a(X, K) <- K = J + 1, b(X), c(X, J).")
        plan = compile_rule(rule).plan
        assert _order(plan) == ["b(X)", "c(X, J)", "K = (J + 1)"]
        # And the split is pinned: c joins on its bound first column.
        c_step = plan.steps[1]
        assert c_step.positions == (0,)
        assert [pos for pos, _ in c_step.free_slots] == [1]

    def test_negated_conjunction_with_local_existential(self):
        # Y and D are local to the conjunction; it must wait for the
        # shared C, and its inner plan is compiled exactly once.
        rule = parse_rule("p(X) <- q(X, C), not (q(Y, D), D < C).")
        plan = compile_rule(rule).plan
        assert _order(plan) == ["q(X, C)", "not (q(Y, D), D < C)"]
        conj = plan.steps[1]
        assert isinstance(conj.literal, NegatedConjunction)
        assert conj.inner is not None
        # Inner golden order: the existential scan, then the filter.
        assert _order(conj.inner) == ["q(Y, D)", "D < C"]
        assert conj.inner.initially_bound == frozenset({"X", "C"})
        # The inner scan is fully free (Y, D are existential).
        assert conj.inner.steps[0].positions == ()

    def test_delta_first_specialization(self):
        # The generic bound-first plan starts from q and buries the
        # recursive occurrence last; the delta plan must lead with it.
        rule = parse_rule("p(X, Z) <- q(X), b(X, Y), p(Y, Z).")
        compiled = compile_rule(rule, delta_indices=[2])
        assert _order(compiled.plan) == ["q(X)", "b(X, Y)", "p(Y, Z)"]
        delta = compiled.for_delta(2)
        assert _order(delta) == ["p(Y, Z)", "b(X, Y)", "q(X)"]
        assert delta.steps[0].is_delta
        assert not any(step.is_delta for step in delta.steps[1:])
        # The rest is planned against the delta bindings: b joins on its
        # second column (Y), q on its only column (X).
        assert delta.steps[1].positions == (1,)
        assert delta.steps[2].positions == (0,)

    def test_delta_index_must_name_a_positive_goal(self):
        rule = parse_rule("p(X) <- q(X), X < 3.")
        with pytest.raises(EvaluationError):
            compile_rule(rule, delta_indices=[1])

    def test_initially_bound_tightens_the_split(self):
        rule = parse_rule("p(X, Y) <- e(X, Y).")
        free = compile_rule(rule).plan
        assert free.steps[0].positions == ()
        bound = compile_rule(rule, initially_bound=frozenset({"X"})).plan
        assert bound.steps[0].positions == (0,)

    def test_negation_split_treats_wildcards_as_free(self):
        rule = parse_rule("p(X) <- q(X), not r(X, _).")
        plan = compile_rule(rule).plan
        neg = plan.steps[1]
        assert isinstance(neg.literal, Negation)
        assert neg.positions == (0,)
        assert [pos for pos, _ in neg.free_slots] == [1]


class TestCompiledExecution:
    PARITY_RULES = [
        ("p(X, Z) <- q(X, Y), r(Y, Z).", {}),
        ("p(X) <- q(X), not bad(X).", {}),
        ("p(X) <- q(X, C), not (q(Y, D), D < C).", {}),
        ("p(X, K) <- q(X, J), K = J * 2, K > 3.", {}),
        ("child(X) <- h(t(X, _)).", {}),
    ]

    @pytest.mark.parametrize("source,_", PARITY_RULES, ids=[r for r, _ in PARITY_RULES])
    def test_matches_legacy_solver(self, source, _):
        rule = parse_rule(source)
        db = _db(
            q=[("a", 1), ("b", 2), ("c", 5)],
            r=[(1, "u"), (2, "v")],
            bad=[("b",)],
            h=[(("t", "a", "b"),), (("u", "c", "d"),)],
        )
        legacy = set(rule_consequences(rule, db))
        compiled = set(compile_rule(rule).plan.consequences(db))
        assert compiled == legacy

    def test_delta_restriction_matches_legacy(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), q(Y, Z).")
        db = _db(q=[("a", "b"), ("b", "c"), ("c", "d")])
        delta = Relation("Δq", 2)
        delta.add(("b", "c"))
        legacy = set(rule_consequences(rule, db, delta_index=1, delta_relation=delta))
        plan = compile_rule(rule, delta_indices=[1]).for_delta(1)
        assert set(plan.consequences(db, delta_relation=delta)) == legacy == {("a", "c")}

    def test_delta_plan_requires_delta_relation(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), q(Y, Z).")
        plan = compile_rule(rule, delta_indices=[0]).for_delta(0)
        with pytest.raises(EvaluationError):
            list(run_plan(plan, _db(q=[("a", "b")])))

    def test_register_indices_builds_patterns_up_front(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), r(Y, Z).")
        db = _db(q=[("a", 1)], r=[(1, "u")])
        plan = compile_rule(rule).plan
        register_plan_indices(plan, db)
        # The second atom joins on its first column; the index must exist
        # before any lookup ran.
        assert (0,) in db.relation("r", 2)._indexes


class TestPlanCache:
    def test_hits_and_misses_are_counted(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), r(Y, Z).")
        cache = PlanCache(stats=SeminaiveEngine(parse_program("a(1).")).stats)
        first = cache.plan(rule)
        again = cache.plan(rule)
        assert first is again
        delta = cache.plan(rule, delta_index=0)
        assert delta is not first
        assert cache.stats.plans_compiled == 2
        assert cache.stats.plan_cache_hits == 1
        assert len(cache) == 2

    def test_disabled_cache_recompiles_every_call(self):
        rule = parse_rule("p(X) <- q(X).")
        cache = PlanCache(enabled=False)
        assert cache.plan(rule) is not cache.plan(rule)
        assert len(cache) == 0

    def test_meta_goals_are_rejected(self):
        rule = parse_rule("p(X, I) <- next(I), q(X).")
        with pytest.raises(EvaluationError):
            list(PlanCache().consequences(rule, Database()))


class TestEngineStatsContract:
    """`plan_body` runs at most once per (rule, delta occurrence) per
    engine run: `plans_compiled` stays constant while `rule_firings`
    grows with the input across differential rounds."""

    TC = parse_program(
        """
        path(X, Y) <- edge(X, Y).
        path(X, Y) <- path(X, Z), edge(Z, Y).
        """
    )

    def _run(self, engine_cls, n, **kwargs):
        db = Database()
        db.assert_all("edge", [(i, i + 1) for i in range(n)])
        engine = engine_cls(self.TC, **kwargs)
        engine.run(db)
        return engine.stats

    def test_seminaive_compiles_once_per_rule_and_delta_occurrence(self):
        small = self._run(SeminaiveEngine, 8)
        large = self._run(SeminaiveEngine, 32)
        # Two rule bodies plus one delta occurrence of `path`.
        assert small.plans_compiled == large.plans_compiled == 3
        assert large.rule_firings > small.rule_firings
        assert large.iterations > small.iterations
        assert large.plan_cache_hits > small.plan_cache_hits

    def test_naive_compiles_once_per_rule(self):
        small = self._run(NaiveEngine, 8)
        large = self._run(NaiveEngine, 16)
        assert small.plans_compiled == large.plans_compiled == 2
        assert large.rule_firings > small.rule_firings

    def test_uncached_baseline_compiles_per_firing(self):
        stats = self._run(SeminaiveEngine, 8, cache_plans=False)
        assert stats.plans_compiled > 3
        assert stats.plan_cache_hits == 0

    def test_phase_timers_are_populated(self):
        stats = self._run(SeminaiveEngine, 8)
        assert stats.phase_seconds["plan"] >= 0.0
        assert stats.phase_seconds["eval"] > 0.0
