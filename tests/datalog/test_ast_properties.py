"""Property-based round-trip tests: generated rule ASTs must print to
source text that re-parses to the identical AST.

This pins down the parser and the pretty-printer against each other over
a much larger space than the hand-written parser tests.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import (
    Atom,
    ChoiceGoal,
    Comparison,
    LeastGoal,
    MostGoal,
    Negation,
    NextGoal,
)
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Rule
from repro.datalog.terms import Const, Struct, Var

# -- strategies ---------------------------------------------------------------

lower_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in ("not", "choice", "least", "most", "next", "mod")
)
var_names = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,5}", fullmatch=True)

variables = st.builds(Var, var_names)
constants = st.one_of(
    st.builds(Const, lower_names),
    st.builds(Const, st.integers(0, 10_000)),
)

terms = st.recursive(
    st.one_of(variables, constants),
    lambda children: st.builds(
        Struct,
        lower_names,
        st.tuples(children) | st.tuples(children, children),
    ),
    max_leaves=4,
)

atoms = st.builds(
    Atom,
    lower_names,
    st.lists(terms, min_size=1, max_size=4).map(tuple),
)

comparisons = st.builds(
    Comparison,
    st.sampled_from(["<", "<=", ">", ">=", "!=", "="]),
    variables,
    st.one_of(variables, st.builds(Const, st.integers(0, 99))),
)

choice_goals = st.builds(
    ChoiceGoal,
    st.lists(variables, min_size=1, max_size=2, unique=True).map(tuple),
    st.lists(variables, min_size=1, max_size=2, unique=True).map(tuple),
)

extrema = st.one_of(
    st.builds(LeastGoal, variables, st.lists(variables, max_size=2, unique=True).map(tuple)),
    st.builds(MostGoal, variables, st.lists(variables, max_size=2, unique=True).map(tuple)),
)

literals = st.one_of(
    atoms,
    st.builds(Negation, atoms),
    comparisons,
    choice_goals,
    extrema,
    st.builds(NextGoal, variables),
)

rules = st.builds(
    Rule,
    atoms,
    st.lists(literals, min_size=1, max_size=5).map(tuple),
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(rules)
    def test_print_then_parse_is_identity(self, rule):
        assert parse_rule(str(rule)) == rule

    @settings(max_examples=100, deadline=None)
    @given(atoms)
    def test_fact_round_trip(self, head):
        fact = Rule(head, ())
        assert parse_rule(str(fact)) == fact

    @settings(max_examples=100, deadline=None)
    @given(terms)
    def test_term_round_trip(self, term):
        from repro.datalog.parser import parse_term

        assert parse_term(str(term)) == term
