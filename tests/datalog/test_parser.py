"""Parser tests: syntax coverage and error reporting."""

from __future__ import annotations

import pytest

from repro.datalog.atoms import (
    Atom,
    Comparison,
    LeastGoal,
    MostGoal,
    NegatedConjunction,
    Negation,
    NextGoal,
)
from repro.datalog.parser import parse_program, parse_query, parse_rule, parse_term
from repro.datalog.terms import Const, Struct, Var
from repro.errors import ParseError


class TestFactsAndRules:
    def test_plain_fact(self):
        program = parse_program("edge(a, b).")
        assert len(program) == 1
        rule = program.rules[0]
        assert rule.is_fact
        assert rule.head == Atom("edge", (Const("a"), Const("b")))

    def test_zero_arity_fact(self):
        rule = parse_rule("go.")
        assert rule.head == Atom("go", ())

    def test_rule_with_both_arrows(self):
        for arrow in ("<-", ":-"):
            rule = parse_rule(f"p(X) {arrow} q(X).")
            assert rule.head.pred == "p"
            assert rule.positive[0].pred == "q"

    def test_numbers(self):
        rule = parse_rule("p(3, 2.5, -4).")
        assert [a.value for a in rule.head.args] == [3, 2.5, -4]

    def test_quoted_strings(self):
        rule = parse_rule("p('hello world').")
        assert rule.head.args[0] == Const("hello world")

    def test_comments_are_skipped(self):
        program = parse_program("% a comment\np(a). % trailing\n% another\n")
        assert len(program) == 1

    def test_compound_terms(self):
        rule = parse_rule("h(t(X, t(Y, Z)), C).")
        tree = rule.head.args[0]
        assert isinstance(tree, Struct) and tree.functor == "t"
        inner = tree.args[1]
        assert isinstance(inner, Struct) and inner.args == (Var("Y"), Var("Z"))

    def test_multiple_clauses(self):
        program = parse_program("a(1). b(2). c(X) <- a(X).")
        assert len(program) == 3


class TestBodyLiterals:
    def test_negation_with_not_and_tilde(self):
        for neg in ("not q(X)", "~q(X)"):
            rule = parse_rule(f"p(X) <- r(X), {neg}.")
            assert isinstance(rule.body[1], Negation)

    def test_negated_conjunction(self):
        rule = parse_rule("p(X) <- r(X), not (q(X, L), L < 3).")
        conj = rule.body[1]
        assert isinstance(conj, NegatedConjunction)
        assert isinstance(conj.literals[0], Atom)
        assert isinstance(conj.literals[1], Comparison)

    def test_comparisons(self):
        rule = parse_rule("p(X) <- q(X, Y), X < Y, X != Y, Y >= 2.")
        ops = [l.op for l in rule.comparisons]
        assert ops == ["<", "!=", ">="]

    def test_diamond_inequality_alias(self):
        rule = parse_rule("p(X) <- q(X, Y), X <> Y.")
        assert rule.comparisons[0].op == "!="

    def test_arithmetic_assignment(self):
        rule = parse_rule("p(I) <- q(J), I = J + 1.")
        comp = rule.comparisons[0]
        assert comp.op == "="
        assert isinstance(comp.right, Struct) and comp.right.functor == "+"

    def test_arithmetic_precedence(self):
        rule = parse_rule("p(X) <- q(A, B, C), X = A + B * C.")
        expr = rule.comparisons[0].right
        assert expr.functor == "+"
        assert expr.args[1].functor == "*"

    def test_max_function(self):
        rule = parse_rule("p(I) <- q(J, K), I = max(J, K).")
        assert rule.comparisons[0].right.functor == "max"

    def test_anonymous_variables_are_fresh(self):
        rule = parse_rule("p(X) <- q(_, X, _).")
        args = rule.positive[0].args
        assert args[0] != args[2]
        assert args[0].name.startswith("_")


class TestMetaGoals:
    def test_choice_with_plain_sides(self):
        rule = parse_rule("p(X, Y) <- q(X, Y), choice(X, Y).")
        goal = rule.choice_goals[0]
        assert goal.left == (Var("X"),)
        assert goal.right == (Var("Y"),)

    def test_choice_with_tuple_sides(self):
        rule = parse_rule("p(X, Y, C) <- q(X, Y, C), choice(Y, (X, C)).")
        goal = rule.choice_goals[0]
        assert goal.left == (Var("Y"),)
        assert goal.right == (Var("X"), Var("C"))

    def test_choice_with_empty_side(self):
        rule = parse_rule("p(X, Y) <- q(X, Y), choice((), (X, Y)).")
        goal = rule.choice_goals[0]
        assert goal.left == ()

    def test_least_forms(self):
        rule = parse_rule("p(C) <- q(C), least(C).")
        assert rule.extrema_goals[0] == LeastGoal(Var("C"), ())
        rule = parse_rule("p(C, G) <- q(C, G), least(C, G).")
        assert rule.extrema_goals[0].group == (Var("G"),)
        rule = parse_rule("p(C, A, B) <- q(C, A, B), least(C, (A, B)).")
        assert rule.extrema_goals[0].group == (Var("A"), Var("B"))

    def test_most(self):
        rule = parse_rule("p(C) <- q(C), most(C).")
        assert isinstance(rule.extrema_goals[0], MostGoal)

    def test_next(self):
        rule = parse_rule("p(X, I) <- next(I), q(X).")
        assert rule.next_goals[0] == NextGoal(Var("I"))
        assert rule.is_next_rule

    def test_meta_names_as_ordinary_terms_in_args(self):
        # 'choice' etc. only trigger as goals, not inside argument lists.
        rule = parse_rule("p(least) <- q(least).")
        assert rule.head.args[0] == Const("least")


class TestQueriesAndTerms:
    def test_parse_query(self):
        atom = parse_query("prm(X, Y, C, I)")
        assert atom.pred == "prm" and atom.arity == 4

    def test_parse_term_nested(self):
        term = parse_term("t(a, t(b, c))")
        assert term == Struct(
            "t", (Const("a"), Struct("t", (Const("b"), Const("c"))))
        )

    def test_parse_term_empty_tuple(self):
        assert parse_term("()") == Struct("", ())


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "p(a)",  # missing dot
            "p(a,).",  # dangling comma
            "p(a) <- .",  # empty body
            "<- q(a).",  # missing head
            "p(a) <- 3.",  # bare number as goal
            "p(a]).",  # stray character
        ],
    )
    def test_bad_syntax_raises(self, bad):
        with pytest.raises(ParseError):
            parse_program(bad)

    def test_error_carries_location(self):
        try:
            parse_program("p(a).\nq(b) <- r(.\n")
        except ParseError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")

    def test_trailing_garbage_after_query(self):
        with pytest.raises(ParseError):
            parse_query("p(X) extra")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).",
            "h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), least(C, I), choice(X, I), choice(Y, I).",
            "p(X) <- q(X), not r(X).",
        ],
    )
    def test_str_reparses_to_same_rule(self, text):
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule
