"""Tests for the Program container."""

from __future__ import annotations

import pytest

from repro.datalog.parser import parse_program
from repro.errors import EvaluationError


class TestPredicateMetadata:
    def test_idb_edb_split(self):
        program = parse_program(
            """
            path(X, Y) <- edge(X, Y).
            path(X, Y) <- path(X, Z), edge(Z, Y).
            """
        )
        assert program.idb_predicates() == {("path", 2)}
        assert program.edb_predicates() == {("edge", 2)}
        assert program.predicates() == {("path", 2), ("edge", 2)}

    def test_fact_predicates_not_edb(self):
        program = parse_program("edge(a, b). path(X, Y) <- edge(X, Y).")
        assert program.fact_predicates() == {("edge", 2)}
        assert program.edb_predicates() == {("edge", 2)}

    def test_negated_predicates_are_referenced(self):
        program = parse_program("p(X) <- q(X), not r(X).")
        assert ("r", 1) in program.edb_predicates()

    def test_rules_for(self):
        program = parse_program("p(X) <- q(X). p(X) <- r(X). q(a).")
        assert len(program.rules_for(("p", 1))) == 2
        assert program.rules_for(("q", 1)) == ()


class TestGroundFacts:
    def test_facts_extracted_as_values(self):
        program = parse_program("g(a, b, 3). g(a, c, 1.5). h(t(a, b)).")
        facts = program.ground_facts()
        assert ("a", "b", 3) in facts["g"]
        assert ("a", "c", 1.5) in facts["g"]
        assert facts["h"] == [("t", "a", "b")] or facts["h"] == [(("t", "a", "b"),)]

    def test_non_ground_fact_raises(self):
        program = parse_program("g(X, b).")
        with pytest.raises(EvaluationError):
            program.ground_facts()

    def test_concatenation(self):
        a = parse_program("p(1).")
        b = parse_program("q(2).")
        assert len(a + b) == 2
