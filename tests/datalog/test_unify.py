"""Tests for matching and grounding."""

from __future__ import annotations

import pytest

from repro.datalog.terms import Const, Struct, Var
from repro.datalog.unify import (
    ground_term,
    is_bound,
    match_args,
    match_term,
    substitute_term,
)
from repro.errors import EvaluationError


class TestMatchTerm:
    def test_unbound_var_binds(self):
        assert match_term(Var("X"), 5, {}) == {"X": 5}

    def test_bound_var_must_agree(self):
        assert match_term(Var("X"), 5, {"X": 5}) == {"X": 5}
        assert match_term(Var("X"), 6, {"X": 5}) is None

    def test_input_substitution_not_mutated(self):
        subst = {}
        match_term(Var("X"), 1, subst)
        assert subst == {}

    def test_wildcard_matches_without_binding(self):
        assert match_term(Var("_anon"), 99, {}) == {}

    def test_const_matches_equal_value(self):
        assert match_term(Const("a"), "a", {}) == {}
        assert match_term(Const("a"), "b", {}) is None

    def test_functor_struct_matches_tagged_tuple(self):
        term = Struct("t", (Var("X"), Var("Y")))
        assert match_term(term, ("t", 1, 2), {}) == {"X": 1, "Y": 2}
        assert match_term(term, ("u", 1, 2), {}) is None
        assert match_term(term, ("t", 1), {}) is None
        assert match_term(term, 42, {}) is None

    def test_tuple_struct_matches_plain_tuple(self):
        term = Struct("", (Var("X"), Const(2)))
        assert match_term(term, (7, 2), {}) == {"X": 7}
        assert match_term(term, (7, 3), {}) is None

    def test_nested_struct_matching(self):
        term = Struct("t", (Struct("t", (Var("A"), Var("B"))), Var("C")))
        value = ("t", ("t", "x", "y"), "z")
        assert match_term(term, value, {}) == {"A": "x", "B": "y", "C": "z"}

    def test_repeated_variable_enforces_equality(self):
        term = Struct("", (Var("X"), Var("X")))
        assert match_term(term, (1, 1), {}) == {"X": 1}
        assert match_term(term, (1, 2), {}) is None

    def test_match_args(self):
        args = (Var("X"), Const("b"))
        assert match_args(args, ("a", "b"), {}) == {"X": "a"}
        assert match_args(args, ("a", "c"), {}) is None


class TestGrounding:
    def test_ground_const_and_var(self):
        assert ground_term(Const(3), {}) == 3
        assert ground_term(Var("X"), {"X": "v"}) == "v"

    def test_unbound_raises(self):
        with pytest.raises(EvaluationError):
            ground_term(Var("X"), {})

    def test_ground_structs(self):
        term = Struct("t", (Var("X"), Const(1)))
        assert ground_term(term, {"X": "a"}) == ("t", "a", 1)
        tup = Struct("", (Var("X"), Const(1)))
        assert ground_term(tup, {"X": "a"}) == ("a", 1)

    def test_is_bound_ignores_nothing(self):
        assert is_bound(Var("X"), {"X": 1})
        assert not is_bound(Var("X"), {})
        assert not is_bound(Var("_w"), {})  # wildcards never ground

    def test_substitute_partial(self):
        term = Struct("t", (Var("X"), Var("Y")))
        out = substitute_term(term, {"X": 1})
        assert out == Struct("t", (Const(1), Var("Y")))
