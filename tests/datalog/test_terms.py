"""Tests for the term AST."""

from __future__ import annotations

from repro.datalog.terms import Const, Struct, Var, fresh_var, term_vars


class TestVariables:
    def test_var_yields_itself(self):
        assert list(Var("X").variables()) == [Var("X")]

    def test_const_has_no_variables(self):
        assert list(Const(3).variables()) == []
        assert Const("a").is_ground()

    def test_struct_collects_nested_variables(self):
        term = Struct("t", (Var("X"), Struct("t", (Var("Y"), Const(1)))))
        assert term_vars(term) == {Var("X"), Var("Y")}
        assert not term.is_ground()

    def test_fresh_vars_are_distinct(self):
        a, b = fresh_var(), fresh_var()
        assert a != b

    def test_fresh_vars_cannot_collide_with_parsed_names(self):
        assert "#" in fresh_var("X").name


class TestPresentation:
    def test_tuple_struct_renders_parenthesised(self):
        term = Struct("", (Var("X"), Const(2)))
        assert str(term) == "(X, 2)"
        assert term.is_tuple

    def test_functor_struct_renders_with_name(self):
        term = Struct("t", (Const("a"), Const("b")))
        assert str(term) == "t(a, b)"

    def test_const_renders_source_syntax(self):
        assert str(Const("abc")) == "abc"
        assert str(Const(42)) == "42"
