"""Tests for the derivation explainer."""

from __future__ import annotations

import pytest

from repro.datalog.explain import explain
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import SeminaiveEngine
from repro.errors import EvaluationError
from repro.storage.database import Database

TC = parse_program(
    """
    path(X, Y) <- edge(X, Y).
    path(X, Y) <- path(X, Z), edge(Z, Y).
    """
)


def _saturated(program, **facts):
    db = Database()
    for name, rows in facts.items():
        db.assert_all(name, rows)
    SeminaiveEngine(program).run(db)
    return db


class TestExplain:
    def test_base_case_derivation(self):
        db = _saturated(TC, edge=[(1, 2)])
        derivation = explain(TC, db, "path", (1, 2))
        assert derivation is not None
        assert derivation.rule is TC.rules[0]
        assert derivation.premises[0].predicate == ("edge", 2)
        assert derivation.premises[0].is_leaf

    def test_recursive_derivation_bottoms_out(self):
        db = _saturated(TC, edge=[(1, 2), (2, 3), (3, 4)])
        derivation = explain(TC, db, "path", (1, 4))
        assert derivation is not None
        # Walk the left spine: all premises must be leaves or path facts.
        seen = []
        stack = [derivation]
        while stack:
            node = stack.pop()
            seen.append(node.predicate)
            stack.extend(node.premises)
        assert ("edge", 2) in seen

    def test_underivable_fact_returns_none(self):
        db = _saturated(TC, edge=[(1, 2)])
        assert explain(TC, db, "path", (2, 1)) is None

    def test_cyclic_graph_still_explains(self):
        db = _saturated(TC, edge=[(1, 2), (2, 1)])
        derivation = explain(TC, db, "path", (1, 1))
        assert derivation is not None

    def test_program_fact_is_leaf(self):
        program = parse_program("edge(a, b). path(X, Y) <- edge(X, Y).")
        db = _saturated(program)
        derivation = explain(program, db, "path", ("a", "b"))
        assert derivation is not None
        leaf = derivation.premises[0]
        assert leaf.rule is not None and leaf.rule.is_fact

    def test_negation_checked_against_db(self):
        program = parse_program(
            """
            ok(X) <- item(X), not bad(X).
            """
        )
        db = _saturated(program, item=[("a",), ("b",)], bad=[("b",)])
        assert explain(program, db, "ok", ("a",)) is not None
        assert explain(program, db, "ok", ("b",)) is None

    def test_meta_goals_rejected(self):
        program = parse_program("p(X, I) <- next(I), q(X).")
        with pytest.raises(EvaluationError):
            explain(program, Database(), "p", ("a", 1))

    def test_pretty_renders_tree(self):
        db = _saturated(TC, edge=[(1, 2), (2, 3)])
        derivation = explain(TC, db, "path", (1, 3))
        text = derivation.pretty()
        assert "path(1, 3)" in text
        assert "edge(" in text
