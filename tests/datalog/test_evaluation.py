"""Tests for body planning and the tuple-at-a-time solver."""

from __future__ import annotations

import pytest

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.evaluation import plan_body, rule_consequences, solve
from repro.datalog.parser import parse_rule
from repro.errors import EvaluationError
from repro.storage.database import Database
from repro.storage.relation import Relation


def _db(**relations):
    db = Database()
    for name, facts in relations.items():
        db.assert_all(name, facts)
    return db


def _plan(rule):
    return plan_body(list(zip(rule.body, range(len(rule.body)))))


class TestPlanning:
    def test_comparison_deferred_until_ready(self):
        rule = parse_rule("p(X) <- q(X, Y), X < Y.")
        plan = _plan(rule)
        assert isinstance(plan[0][0], Atom)
        assert isinstance(plan[1][0], Comparison)

    def test_assignment_waits_for_arithmetic_inputs(self):
        # I = I_prev + 1 cannot run before I_prev is bound, even if I is.
        rule = parse_rule("p(X, I) <- c(I), I = J + 1, r(J), q(X).")
        plan = _plan(rule)
        positions = {str(lit): i for i, (lit, _) in enumerate(plan)}
        assert positions["I = (J + 1)"] > positions["r(J)"]

    def test_negation_runs_after_binding(self):
        rule = parse_rule("p(X) <- not r(X), q(X).")
        plan = _plan(rule)
        assert isinstance(plan[0][0], Atom)

    def test_bound_first_join_order(self):
        # After q binds X, the atom sharing X should be preferred.
        rule = parse_rule("p(X, Z) <- q(X), r(X, Y), s(Z), t(Y, Z).")
        plan = _plan(rule)
        names = [lit.pred for lit, _ in plan if isinstance(lit, Atom)]
        assert names[0] == "q"
        assert names[1] == "r"


class TestSolve:
    def test_simple_join(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), r(Y, Z).")
        db = _db(q=[("a", 1), ("b", 2)], r=[(1, "u"), (2, "v"), (3, "w")])
        assert set(rule_consequences(rule, db)) == {("a", "u"), ("b", "v")}

    def test_negation_filters(self):
        rule = parse_rule("p(X) <- q(X), not bad(X).")
        db = _db(q=[("a",), ("b",)], bad=[("b",)])
        assert set(rule_consequences(rule, db)) == {("a",)}

    def test_negation_with_wildcard_is_existence_check(self):
        rule = parse_rule("p(X) <- q(X), not r(X, _).")
        db = _db(q=[("a",), ("b",)], r=[("b", 1)])
        assert set(rule_consequences(rule, db)) == {("a",)}

    def test_negated_conjunction(self):
        rule = parse_rule("p(X) <- q(X, C), not (q(Y, D), D < C).")
        db = _db(q=[("a", 1), ("b", 2)])
        assert set(rule_consequences(rule, db)) == {("a",)}

    def test_comparisons_and_arithmetic(self):
        rule = parse_rule("p(X, K) <- q(X, J), K = J * 2, K > 3.")
        db = _db(q=[("a", 1), ("b", 2), ("c", 5)])
        assert set(rule_consequences(rule, db)) == {("b", 4), ("c", 10)}

    def test_compound_term_matching(self):
        rule = parse_rule("child(X) <- h(t(X, _)).")
        db = _db(h=[(("t", "a", "b"),), (("u", "c", "d"),)])
        assert set(rule_consequences(rule, db)) == {("a",)}

    def test_missing_relation_yields_nothing(self):
        rule = parse_rule("p(X) <- nothing(X).")
        assert list(rule_consequences(rule, Database())) == []

    def test_delta_restriction(self):
        rule = parse_rule("p(X, Z) <- q(X, Y), q(Y, Z).")
        db = _db(q=[("a", "b"), ("b", "c"), ("c", "d")])
        delta = Relation("Δq", 2)
        delta.add(("b", "c"))
        # Restrict the SECOND occurrence (body index 1) to the delta.
        facts = set(rule_consequences(rule, db, delta_index=1, delta_relation=delta))
        assert facts == {("a", "c")}

    def test_neg_db_separates_negation(self):
        rule = parse_rule("p(X) <- q(X), not r(X).")
        db = _db(q=[("a",), ("b",)])
        neg = _db(r=[("a",)])
        assert set(rule_consequences(rule, db, neg_db=neg)) == {("b",)}

    def test_meta_goal_rejected(self):
        rule = parse_rule("p(X, I) <- next(I), q(X).")
        with pytest.raises(EvaluationError):
            list(rule_consequences(rule, Database()))
