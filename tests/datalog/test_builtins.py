"""Tests for arithmetic and comparisons, including the total order."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.atoms import Comparison
from repro.datalog.builtins import (
    compare_values,
    eval_comparison,
    eval_expr,
    order_key,
)
from repro.datalog.terms import Const, Struct, Var
from repro.errors import EvaluationError


class TestEvalExpr:
    def test_constants_and_vars(self):
        assert eval_expr(Const(3), {}) == 3
        assert eval_expr(Var("X"), {"X": 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr(Var("X"), {})

    @pytest.mark.parametrize(
        "functor,args,expected",
        [
            ("+", (2, 3), 5),
            ("-", (2, 3), -1),
            ("*", (2, 3), 6),
            ("/", (6, 4), 1.5),
            ("//", (7, 2), 3),
            ("mod", (7, 2), 1),
            ("max", (2, 9), 9),
            ("min", (2, 9), 2),
        ],
    )
    def test_binary_operators(self, functor, args, expected):
        term = Struct(functor, (Const(args[0]), Const(args[1])))
        assert eval_expr(term, {}) == expected

    def test_nested_expression(self):
        term = Struct("+", (Var("A"), Struct("*", (Var("B"), Const(2)))))
        assert eval_expr(term, {"A": 1, "B": 3}) == 7

    def test_non_arithmetic_functor_grounds(self):
        term = Struct("t", (Const("a"), Const("b")))
        assert eval_expr(term, {}) == ("t", "a", "b")

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr(Struct("/", (Const(1), Const(0))), {})

    def test_type_error_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr(Struct("+", (Const("a"), Const(1))), {})


class TestTotalOrder:
    def test_kind_ordering(self):
        # None < numbers < strings < tuples
        assert compare_values(None, 0) == -1
        assert compare_values(3, "a") == -1
        assert compare_values("z", ("t",)) == -1

    def test_within_kind_native_order(self):
        assert compare_values(2, 10) == -1
        assert compare_values("abc", "abd") == -1
        assert compare_values((1, 2), (1, 3)) == -1

    def test_mixed_tuples_compare(self):
        # Tuples containing different kinds must still compare.
        assert compare_values((1, "a"), ("b", 0)) in (-1, 1)

    @given(st.integers(), st.integers())
    def test_agrees_with_int_order(self, a, b):
        expected = -1 if a < b else (0 if a == b else 1)
        assert compare_values(a, b) == expected

    value_strategy = st.recursive(
        st.one_of(st.integers(-50, 50), st.text(max_size=3), st.none()),
        lambda children: st.tuples(children, children),
        max_leaves=5,
    )

    @given(value_strategy, value_strategy, value_strategy)
    def test_order_is_transitive(self, a, b, c):
        values = sorted([a, b, c], key=order_key)
        assert compare_values(values[0], values[1]) <= 0
        assert compare_values(values[1], values[2]) <= 0
        assert compare_values(values[0], values[2]) <= 0

    @given(value_strategy, value_strategy)
    def test_order_is_antisymmetric(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)


class TestEvalComparison:
    def test_plain_comparison(self):
        comp = Comparison("<", Var("X"), Var("Y"))
        assert eval_comparison(comp, {"X": 1, "Y": 2}) == {"X": 1, "Y": 2}
        assert eval_comparison(comp, {"X": 2, "Y": 1}) is None

    def test_assignment_binds_left(self):
        comp = Comparison("=", Var("I"), Struct("+", (Var("J"), Const(1))))
        assert eval_comparison(comp, {"J": 4}) == {"J": 4, "I": 5}

    def test_assignment_binds_right(self):
        comp = Comparison("=", Struct("+", (Var("J"), Const(1))), Var("I"))
        out = eval_comparison(comp, {"J": 4})
        assert out == {"J": 4, "I": 5}

    def test_assignment_checks_when_both_bound(self):
        comp = Comparison("=", Var("I"), Var("J"))
        assert eval_comparison(comp, {"I": 1, "J": 1}) is not None
        assert eval_comparison(comp, {"I": 1, "J": 2}) is None

    def test_assignment_matches_structure(self):
        comp = Comparison("=", Struct("", (Var("A"), Var("B"))), Var("P"))
        out = eval_comparison(comp, {"P": (1, 2)})
        assert out == {"P": (1, 2), "A": 1, "B": 2}

    def test_both_unbound_raises(self):
        comp = Comparison("=", Var("X"), Var("Y"))
        with pytest.raises(EvaluationError):
            eval_comparison(comp, {})

    def test_inequality_on_tuples(self):
        comp = Comparison(
            "!=",
            Struct("", (Var("A"), Var("B"))),
            Struct("", (Var("C"), Var("D"))),
        )
        assert eval_comparison(comp, {"A": 1, "B": 2, "C": 1, "D": 2}) is None
        assert eval_comparison(comp, {"A": 1, "B": 2, "C": 1, "D": 3}) is not None

    def test_unknown_operator_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Comparison("~", Var("X"), Var("Y"))
