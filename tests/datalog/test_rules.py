"""Tests for rule partitions and the safety checker."""

from __future__ import annotations

import pytest

from repro.datalog.parser import parse_rule
from repro.errors import SafetyError


class TestPartitions:
    def test_body_partitions(self):
        rule = parse_rule(
            "p(X, I) <- next(I), q(X, C), C < 3, not r(X), least(C, I), choice(X, I)."
        )
        assert len(rule.positive) == 1
        assert len(rule.negative) == 1
        assert len(rule.comparisons) == 1
        assert len(rule.extrema_goals) == 1
        assert len(rule.choice_goals) == 1
        assert len(rule.next_goals) == 1
        assert rule.has_meta_goals
        assert rule.is_next_rule

    def test_plain_rule_has_no_meta(self):
        rule = parse_rule("p(X) <- q(X).")
        assert not rule.has_meta_goals
        assert not rule.is_next_rule

    def test_fact(self):
        rule = parse_rule("p(a).")
        assert rule.is_fact


class TestSafety:
    def test_safe_rule_passes(self):
        parse_rule("p(X, Y) <- q(X), r(X, Y), not s(Y).").check_safety()

    def test_unbound_head_var_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X, Y) <- q(X).").check_safety()

    def test_unbound_negation_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) <- q(X), not r(Y).").check_safety()

    def test_unbound_comparison_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) <- q(X), X < Y.").check_safety()

    def test_assignment_chain_binds(self):
        parse_rule("p(X, K) <- q(X, J), I = J + 1, K = I * 2.").check_safety()

    def test_assignment_with_unbound_inputs_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X, K) <- q(X), K = J + 1.").check_safety()

    def test_next_var_counts_as_bound(self):
        parse_rule("p(X, I) <- next(I), q(X).").check_safety()

    def test_extrema_group_var_counts_as_bound(self):
        # Kruskal's stage-parameterized last_comp pattern.
        parse_rule(
            "last_comp(X, K, I) <- comp(X, K, I1), I1 <= I, most(I1, (X, I))."
        ).check_safety()

    def test_choice_over_unbound_var_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) <- q(X), choice(X, Y).").check_safety()

    def test_wildcards_are_exempt(self):
        parse_rule("p(X) <- q(X, _).").check_safety()

    def test_negated_conjunction_shared_vars_must_be_bound(self):
        # Z is shared between the conjunction and the outer comparison but
        # bound by no positive goal.
        with pytest.raises(SafetyError):
            parse_rule("p(X) <- q(X), not (r(Z)), Z < 5.").check_safety()

    def test_negated_conjunction_vars_bound_by_later_positive_are_fine(self):
        parse_rule("p(X) <- q(X), not (r(Y), Y < Z), s(Z).").check_safety()

    def test_negated_conjunction_local_vars_are_existential(self):
        parse_rule("p(X) <- q(X), not (r(X, L), L < 5).").check_safety()

    def test_negated_conjunction_inner_comparison_unbound_fails(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) <- q(X), not (r(X), L < 5).").check_safety()
