"""Tests for the dependency graph, SCCs and stratification."""

from __future__ import annotations

import pytest

from repro.datalog.dependency import DependencyGraph, strongly_connected_components
from repro.datalog.parser import parse_program
from repro.errors import StratificationError


class TestSCC:
    def test_chain_has_singleton_components(self):
        nodes = [("a", 0), ("b", 0), ("c", 0)]
        edges = {("a", 0): {("b", 0)}, ("b", 0): {("c", 0)}}
        comps = strongly_connected_components(nodes, edges)
        assert all(len(c) == 1 for c in comps)
        # callees first: c before b before a
        order = [next(iter(c)) for c in comps]
        assert order.index(("c", 0)) < order.index(("b", 0)) < order.index(("a", 0))

    def test_cycle_is_one_component(self):
        nodes = [("a", 0), ("b", 0)]
        edges = {("a", 0): {("b", 0)}, ("b", 0): {("a", 0)}}
        comps = strongly_connected_components(nodes, edges)
        assert comps == [frozenset({("a", 0), ("b", 0)})]

    def test_deep_chain_no_recursion_limit(self):
        n = 5000
        nodes = [(f"p{i}", 0) for i in range(n)]
        edges = {(f"p{i}", 0): {(f"p{i+1}", 0)} for i in range(n - 1)}
        comps = strongly_connected_components(nodes, edges)
        assert len(comps) == n


class TestCliques:
    def test_mutual_recursion_is_one_clique(self):
        program = parse_program(
            """
            even(X) <- zero(X).
            even(X) <- succ(Y, X), odd(Y).
            odd(X) <- succ(Y, X), even(X).
            """
        )
        graph = DependencyGraph(program)
        recursive = graph.recursive_cliques()
        assert len(recursive) == 1
        assert recursive[0].predicates == frozenset({("even", 1), ("odd", 1)})

    def test_self_loop_is_recursive(self):
        program = parse_program("p(X) <- p(X).")
        graph = DependencyGraph(program)
        assert graph.recursive_cliques()

    def test_nonrecursive_program_has_no_recursive_cliques(self):
        program = parse_program("p(X) <- q(X). r(X) <- p(X).")
        graph = DependencyGraph(program)
        assert graph.recursive_cliques() == []


class TestStratification:
    def test_stratified_program(self):
        program = parse_program(
            """
            path(X, Y) <- edge(X, Y).
            path(X, Y) <- path(X, Z), edge(Z, Y).
            unreach(X, Y) <- node(X), node(Y), not path(X, Y).
            """
        )
        graph = DependencyGraph(program)
        assert graph.is_stratified
        strata = graph.strata()
        assert strata[("unreach", 2)] > strata[("path", 2)]

    def test_negation_in_cycle_is_rejected(self):
        program = parse_program(
            """
            win(X) <- move(X, Y), not win(Y).
            """
        )
        graph = DependencyGraph(program)
        assert not graph.is_stratified
        with pytest.raises(StratificationError):
            graph.strata()

    def test_negated_conjunction_counts_as_negative_edge(self):
        program = parse_program("p(X) <- q(X), not (p(Y), Y < X).")
        graph = DependencyGraph(program)
        assert not graph.is_stratified

    def test_evaluation_order_respects_strata(self):
        program = parse_program(
            """
            a(X) <- base(X).
            b(X) <- a(X), not c(X).
            c(X) <- base(X), not a(X).
            """
        )
        graph = DependencyGraph(program)
        order = graph.evaluation_order()
        flat = [pred for group in order for clique in group for pred in clique.predicates]
        assert flat.index(("a", 1)) < flat.index(("c", 1)) < flat.index(("b", 1))
