"""The greedy join reorderer: invariance, soundness, goldens, indices.

Four angles on ``order="greedy"`` vs ``order="written"``:

* **Property-based invariance** — seeded random rule bodies mixing
  constants, shared variables, comparisons and negation enumerate the
  *identical* solution set under both policies (reordering a conjunction
  is semantics-preserving), including the delta-specialized variants.
* **Static-boundness soundness** — every compiled plan, under either
  policy, passes :func:`check_static_boundness`: comparisons are ready
  and negations fully bound at their scheduled positions.
* **Golden plans** — curated multi-join rules compile to a pinned step
  order with pinned bound/free splits, mirroring
  ``tests/datalog/test_plans.py``.
* **Index registration** — :func:`register_plan_indices` registers the
  *reordered* binding patterns (and the delta variants'), so a greedy
  plan's lookups never build an index lazily mid-join.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.plans import (
    PlanCache,
    check_static_boundness,
    compile_plan,
    compile_rule,
    describe_plan,
    run_plan,
)
from repro.storage.database import Database


def _body_pairs(rule):
    return [(literal, index) for index, literal in enumerate(rule.body)]


def _order(plan):
    return [str(step.literal) for step in plan.steps]


def _solutions(plan, db, **kwargs):
    return {tuple(sorted(s.items())) for s in run_plan(plan, db, **kwargs)}


# ---------------------------------------------------------------------------
# Property-based invariance + static-boundness soundness.
# ---------------------------------------------------------------------------


def _random_rule_and_db(seed):
    """A seeded random safe rule (constants, shared variables, an optional
    comparison, an optional negation) over a random EDB."""
    rng = random.Random(seed)
    domain = rng.randint(3, 6)
    variables = ["A", "B", "C", "D", "E"]

    goals = []
    used = []
    for _ in range(rng.randint(2, 4)):
        pred = rng.choice(["e", "f"])
        args = []
        for _ in range(2):
            if rng.random() < 0.25:
                args.append(str(rng.randrange(domain)))
            else:
                var = rng.choice(variables)
                args.append(var)
                used.append(var)
        goals.append(f"{pred}({', '.join(args)})")
    if not used:  # all-constant body: add one variable goal for safety
        goals.append("u(A)")
        used.append("A")
    if rng.random() < 0.6:
        op = rng.choice(["<", "<=", "!="])
        left = rng.choice(used)
        right = rng.choice(used + [str(rng.randrange(domain))])
        goals.append(f"{left} {op} {right}")
    if rng.random() < 0.6:
        goals.append(f"not u({rng.choice(used)})")
    if rng.random() < 0.3 and len(used) >= 2:
        inner_a, inner_b = rng.sample(used, 2)
        goals.append(f"not (e({inner_a}, Z), Z != {inner_b})")
    rng.shuffle(goals)

    head_vars = sorted(set(used))
    text = f"h({', '.join(head_vars)}) <- {', '.join(goals)}."
    program = parse_program(text)
    rule = next(iter(program.proper_rules()))

    db = Database()
    db.assert_all(
        "e",
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(rng.randint(3, 12))},
    )
    db.assert_all(
        "f",
        {(rng.randrange(domain), rng.randrange(domain)) for _ in range(rng.randint(3, 12))},
    )
    db.assert_all("u", {(rng.randrange(domain),) for _ in range(rng.randint(0, 4))})
    return rule, db


@pytest.mark.parametrize("seed", range(75))
def test_greedy_and_written_enumerate_identical_solutions(seed):
    rule, db = _random_rule_and_db(seed)
    pairs = _body_pairs(rule)
    written = compile_plan(pairs, order="written")
    greedy = compile_plan(pairs, order="greedy", db=db)
    assert _solutions(greedy, db) == _solutions(written, db), str(rule)


@pytest.mark.parametrize("seed", range(75))
def test_every_plan_is_statically_bound_sound(seed):
    rule, db = _random_rule_and_db(seed)
    pairs = _body_pairs(rule)
    for order in ("written", "greedy"):
        for hints in (None, db):
            plan = compile_plan(pairs, order=order, db=hints)
            assert check_static_boundness(plan) == [], (str(rule), order)


@pytest.mark.parametrize("seed", range(40))
def test_delta_specialized_plans_agree_and_pin_the_delta(seed):
    """Delta plans keep the delta literal first under both policies and
    enumerate the same solutions when the 'delta' is the full relation."""
    rule, db = _random_rule_and_db(seed)
    pairs = _body_pairs(rule)
    atom_indices = [
        index
        for literal, index in pairs
        if type(literal).__name__ == "Atom"
    ]
    delta_index = random.Random(seed ^ 0xD317A).choice(atom_indices)
    delta_atom = rule.body[delta_index]
    delta_relation = db.relation(delta_atom.pred, delta_atom.arity)

    written = compile_plan(pairs, delta_index=delta_index, order="written")
    greedy = compile_plan(pairs, delta_index=delta_index, order="greedy", db=db)
    for plan in (written, greedy):
        assert plan.steps[0].original_index == delta_index
        assert plan.steps[0].is_delta
        assert check_static_boundness(plan) == []
    assert _solutions(
        greedy, db, delta_relation=delta_relation
    ) == _solutions(written, db, delta_relation=delta_relation), str(rule)


# ---------------------------------------------------------------------------
# Golden plans for curated multi-join rules.
# ---------------------------------------------------------------------------

GOLDEN = parse_program(
    """
    jq1(A, E) <- r1(A, B), r2(B, C), r3(C, D), sel(D, E).
    jq3(A, C) <- r2(B, C), r1(A, B), r3(C, 7).
    """
)


def _golden_db(n=16):
    db = Database()
    db.assert_all("r1", [(i, (i * 7) % n) for i in range(n)])
    db.assert_all("r2", [(i, (i * 11 + j) % n) for i in range(n) for j in range(4)])
    db.assert_all("r3", [(i, (i * 13) % n) for i in range(n)])
    db.assert_all("sel", [(i, i) for i in range(3)])
    return db


class TestGoldenReorderedPlans:
    def test_chain_with_selective_tail_runs_backward(self):
        """sel (3 facts) leads, then the chain unwinds through indexed
        lookups — each later step keyed on its second argument."""
        rule = next(iter(GOLDEN.rules_for(("jq1", 2))))
        plan = compile_rule(rule, order="greedy", db=_golden_db()).plan
        assert plan.reordered
        assert _order(plan) == ["sel(D, E)", "r3(C, D)", "r2(B, C)", "r1(A, B)"]
        assert [step.positions for step in plan.steps] == [(), (1,), (1,), (1,)]

    def test_constant_pattern_beats_size(self):
        """r3(C, 7) carries a constant — scheduled first even though sel
        is absent here and r3 is not the smallest relation."""
        rule = next(iter(GOLDEN.rules_for(("jq3", 2))))
        plan = compile_rule(rule, order="greedy", db=_golden_db()).plan
        assert plan.reordered
        assert _order(plan) == ["r3(C, 7)", "r2(B, C)", "r1(A, B)"]
        assert [step.positions for step in plan.steps] == [(1,), (1,), (1,)]

    def test_written_policy_keeps_the_written_order(self):
        rule = next(iter(GOLDEN.rules_for(("jq1", 2))))
        plan = compile_rule(rule, order="written", db=_golden_db()).plan
        assert not plan.reordered
        assert plan.decisions == ()
        assert _order(plan) == ["r1(A, B)", "r2(B, C)", "r3(C, D)", "sel(D, E)"]
        assert [step.positions for step in plan.steps] == [(), (0,), (0,), (0,)]

    def test_empty_relation_schedules_first_as_early_exit(self):
        db = _golden_db()
        db.relation("ghost", 2)  # present but empty
        rule = next(
            iter(
                parse_program(
                    "q(A, C) <- r1(A, B), ghost(B, C)."
                ).proper_rules()
            )
        )
        plan = compile_rule(rule, order="greedy", db=db).plan
        assert _order(plan)[0] == "ghost(B, C)"
        assert list(plan.consequences(db)) == []

    def test_describe_plan_surfaces_the_decisions(self):
        rule = next(iter(GOLDEN.rules_for(("jq1", 2))))
        plan = compile_rule(rule, order="greedy", db=_golden_db()).plan
        lines = describe_plan(plan)
        assert lines[0] == "order=greedy (reordered)"
        assert lines[1] == "  0: sel(D, E)"
        assert lines[2] == "  1: r3(C, D)  [bound=1]"
        assert any("sel(D, E) of 4 candidates" in line for line in lines)
        assert any("size=3" in line for line in lines)

    def test_without_db_greedy_matches_written_on_unhinted_chain(self):
        """No constants, no hints: the score ties everywhere and greedy
        falls back to the written order — existing plans stay stable."""
        rule = next(iter(GOLDEN.rules_for(("jq1", 2))))
        plan = compile_rule(rule, order="greedy").plan
        assert not plan.reordered
        assert _order(plan) == ["r1(A, B)", "r2(B, C)", "r3(C, D)", "sel(D, E)"]


# ---------------------------------------------------------------------------
# Index registration follows the reordered patterns.
# ---------------------------------------------------------------------------

RECURSIVE = parse_program(
    """
    p(A, E) <- r1(A, B), r2(B, C), r3(C, D), sel(D, E).
    p(A, E) <- p(A, D), r3(D, C), sel(C, E).
    """
)


def _index_snapshot(db, names):
    return {
        name: set(db.relation(name, 2)._indexes) for name in names
    }


def test_registered_indices_cover_every_greedy_lookup():
    """After register_indices, running every plan (generic and delta)
    builds no further index: each reordered lookup pattern was
    pre-registered, so no join falls back to a lazy index build."""
    db = _golden_db()
    cache = PlanCache(order="greedy")
    rules = list(RECURSIVE.proper_rules())
    for rule in rules:
        cache.plan(rule, db=db)
    # The recursive rule's delta-specialized variant too.
    cache.plan(rules[1], delta_index=0, db=db)
    cache.register_indices(db)

    names = ["r1", "r2", "r3", "sel", "p"]
    before = _index_snapshot(db, names)
    # Every non-leading atom step must have an indexed (non-scan) pattern.
    for rule in rules:
        plan = cache.plan(rule, db=db)
        assert plan.reordered or rule is rules[1]
        for step in plan.steps[1:]:
            assert step.positions, f"unindexed step {step.literal} in {rule}"

    delta_plan = cache.plan(rules[1], delta_index=0, db=db)
    delta_relation = db.relation("p", 2)
    for rule in rules:
        list(cache.plan(rule, db=db).consequences(db))
    list(delta_plan.consequences(db, delta_relation=delta_relation))
    assert _index_snapshot(db, names) == before


def test_seminaive_fixpoint_builds_no_index_after_registration():
    """End to end: the seminaive engine compiles greedy plans against the
    loaded EDB, registers their patterns, and the whole fixpoint runs
    without a single lazy index build — lookups never fall back to a
    mid-join index construction (the proxy for a full scan)."""
    from repro.datalog.seminaive import SeminaiveEngine

    import repro.storage.relation as relation_module

    db = _golden_db()
    engine = SeminaiveEngine(RECURSIVE, order="greedy")

    phase = {"registered": False}
    late_builds = []
    original_build = relation_module.Relation._build_index
    original_register = PlanCache.register_indices

    def spying_register(cache, target):
        original_register(cache, target)
        phase["registered"] = True

    def spying_build(relation, positions):
        if phase["registered"]:
            late_builds.append((relation.name, positions))
        return original_build(relation, positions)

    relation_module.Relation._build_index = spying_build
    PlanCache.register_indices = spying_register
    try:
        engine.run(db)
    finally:
        relation_module.Relation._build_index = original_build
        PlanCache.register_indices = original_register
    assert phase["registered"], "engine never registered its plan indices"
    assert db.facts("p", 2), "fixpoint derived nothing — test is vacuous"
    assert late_builds == [], (
        "greedy plan lookups fell back to lazy index builds: "
        f"{late_builds}"
    )
