"""Smoke tests: every example script runs to completion.

The examples double as end-to-end regression tests; each contains its own
assertions (cross-checks against baselines, round-trips).
"""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(script), run_name="__main__")
    assert captured.getvalue().strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "minimum_spanning_tree",
        "huffman_compression",
        "course_assignment",
        "logistics_planning",
    } <= names
