"""Chaos suite: seeded fault injection across every engine, site and mode.

The contract under test: with a fault injected at any hot-path site, a
run either completes with the correct result (benign modes) or fails with
a clean :class:`~repro.errors.ReproError` — never a crash, never a
corrupted database.  Storage invariants are re-checked after every run,
failed or not."""

from __future__ import annotations

import os

import pytest

from repro.core.compiler import compile_program
from repro.errors import ReproError
from repro.robust.faults import MODES, SITES, FaultInjected, FaultInjector, FaultPlan, inject
from repro.storage.heap import PriorityQueue
from repro.storage.relation import Relation

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

FACTS = {"p": [(f"v{i}", (41 * i) % 97) for i in range(10)]}

ENGINES = ("rql", "basic", "choice", "naive", "seminaive")

#: Nightly CI widens the injector seed sweep via REPRO_CHAOS_SEEDS
#: (each seed re-runs the full engine x site x mode matrix); PR CI
#: keeps the single-seed default.
CHAOS_SEEDS = [11 + i for i in range(int(os.environ.get("REPRO_CHAOS_SEEDS", "1")))]

# The choice/naive/seminaive engines cannot evaluate next goals, so they
# run a meta-goal-free program through the same storage layer instead.
PLAIN = """
reach(X) <- source(X).
reach(Y) <- reach(X), edge(X, Y).
"""

PLAIN_FACTS = {
    "source": [("a",)],
    "edge": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "d")],
}


def _program_for(engine):
    if engine in ("rql", "basic"):
        return SORTING, FACTS
    return PLAIN, PLAIN_FACTS


def _run(engine, injector):
    source, facts = _program_for(engine)
    compiled = compile_program(source, engine=engine)
    from repro.core.compiler import _as_database, _make_engine
    import random

    db = _as_database({k: list(v) for k, v in facts.items()})
    instance = _make_engine(engine, compiled.program, random.Random(0))
    with inject(injector):
        instance.run(db)
    return db


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("site", SITES)
@pytest.mark.parametrize("engine", ENGINES)
def test_chaos_matrix(engine, site, mode, seed):
    """Every (engine, site, mode) combination completes or fails cleanly,
    with storage invariants intact either way."""
    control = _run(engine, None)
    injector = FaultInjector.seeded(seed=seed, site=site, mode=mode, horizon=8)
    source, facts = _program_for(engine)
    compiled = compile_program(source, engine=engine)
    from repro.core.compiler import _as_database, _make_engine
    import random

    db = _as_database({k: list(v) for k, v in facts.items()})
    instance = _make_engine(engine, compiled.program, random.Random(0))
    try:
        with inject(injector):
            instance.run(db)
        completed = True
    except ReproError:
        completed = False
    except BaseException as exc:  # pragma: no cover - the contract violation
        raise AssertionError(
            f"{engine}/{site}/{mode} escaped with a non-ReproError: {exc!r}"
        )
    # Invariants hold whether or not the run survived the fault.
    db.check_invariants()
    # Hooks are restored after the block.
    assert Relation._fault_hook is None
    assert PriorityQueue._fault_hook is None
    if mode in ("delay", "wake") and completed:
        # Benign modes must not perturb the result.
        assert db.as_dict() == control.as_dict()
    if mode == "error" and injector.fired:
        # The planned fault actually aborted the run.
        assert not completed


class TestInjectorMechanics:
    def test_seeded_plans_are_reproducible(self):
        a = FaultInjector.seeded(seed=3, site="relation.add")
        b = FaultInjector.seeded(seed=3, site="relation.add")
        assert a.plans == b.plans
        assert 1 <= a.plans[0].nth <= 50

    def test_error_fires_exactly_on_the_nth_visit(self):
        injector = FaultInjector([FaultPlan("relation.add", "error", nth=3)])
        injector("relation.add")
        injector("relation.add")
        with pytest.raises(FaultInjected, match="visit 3"):
            injector("relation.add")
        # one-shot: the 6th visit does not re-fire
        for _ in range(5):
            injector("relation.add")
        assert injector.hits["relation.add"] == 8

    def test_repeat_fires_periodically(self):
        injector = FaultInjector([FaultPlan("heap.pop", "wake", nth=2, repeat=True)])
        for _ in range(6):
            injector("heap.pop")
        assert [visit for _, _, visit in injector.fired] == [2, 4, 6]

    def test_unknown_site_and_mode_are_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultPlan("nonsense")
        with pytest.raises(ValueError, match="mode"):
            FaultPlan("relation.add", mode="explode")
        with pytest.raises(ValueError, match="nth"):
            FaultPlan("relation.add", nth=0)

    def test_inject_none_is_a_passthrough(self):
        with inject(None) as handle:
            assert handle is None
        assert Relation._fault_hook is None

    def test_fault_mid_insert_leaves_the_relation_unchanged(self):
        relation = Relation("r", 2)
        relation.add(("a", 1))
        relation.ensure_index((0,))
        before = set(relation)
        injector = FaultInjector([FaultPlan("relation.add", "error", nth=1)])
        Relation._fault_hook = injector
        try:
            with pytest.raises(FaultInjected):
                relation.add(("b", 2))
        finally:
            Relation._fault_hook = None
        assert set(relation) == before
        relation.check_invariants()

    def test_fault_mid_heap_op_leaves_the_heap_consistent(self):
        queue = PriorityQueue()
        queue.insert(2, ("x",))
        queue.insert(1, ("y",))
        injector = FaultInjector(
            [FaultPlan("heap.insert", "error", nth=1), FaultPlan("heap.pop", "error", nth=1)]
        )
        PriorityQueue._fault_hook = injector
        try:
            with pytest.raises(FaultInjected):
                queue.insert(3, ("z",))
            with pytest.raises(FaultInjected):
                queue.pop_least()
        finally:
            PriorityQueue._fault_hook = None
        queue.check_invariants()
        assert queue.pop_least()[1] == ("y",)


class TestInjectReentrancy:
    """The hook slots are process-global, so a nested (or concurrent)
    inject() would clobber the saved values and leave the inner injector
    installed after the outer block exits.  The harness refuses instead
    of corrupting — one active injection per process."""

    def test_nested_inject_raises_a_clear_error(self):
        from repro.robust.faults import FaultInjectionError

        outer = FaultInjector([FaultPlan("relation.add", "wake", nth=1)])
        inner = FaultInjector([FaultPlan("heap.pop", "wake", nth=1)])
        with inject(outer):
            with pytest.raises(FaultInjectionError, match="already active"):
                with inject(inner):
                    pass  # pragma: no cover - never entered
            # The outer injector is still the installed hook.
            assert Relation._fault_hook is outer
        assert Relation._fault_hook is None

    def test_nested_inject_none_is_still_a_passthrough(self):
        # inject(None) (the fault-free control arm) must remain nestable:
        # it touches no hook slots.
        outer = FaultInjector([FaultPlan("relation.add", "wake", nth=1)])
        with inject(outer):
            with inject(None) as handle:
                assert handle is None
            assert Relation._fault_hook is outer
        assert Relation._fault_hook is None

    def test_concurrent_inject_from_another_thread_is_rejected(self):
        import threading

        from repro.robust.faults import FaultInjectionError

        outer = FaultInjector([FaultPlan("relation.add", "wake", nth=1)])
        result = {}

        def other_thread():
            try:
                with inject(FaultInjector()):
                    pass
                result["outcome"] = "entered"
            except FaultInjectionError:
                result["outcome"] = "rejected"

        with inject(outer):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join(timeout=10.0)
        assert result["outcome"] == "rejected"

    def test_injection_is_usable_again_after_exit(self):
        first = FaultInjector([FaultPlan("relation.add", "wake", nth=1)])
        with inject(first):
            pass
        # A failed nested attempt must not poison the guard either.
        second = FaultInjector([FaultPlan("relation.add", "wake", nth=1)])
        with inject(second):
            assert Relation._fault_hook is second
        assert Relation._fault_hook is None

    def test_shared_injector_counts_visits_exactly_under_threads(self):
        import threading

        injector = FaultInjector()  # no plans: count only
        relation_count = 200
        threads = 8

        def hammer():
            for _ in range(relation_count):
                injector("relation.add")

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30.0)
        assert injector.hits["relation.add"] == relation_count * threads


class TestProcessFaults:
    """The process-boundary vocabulary: shard sites and the ``exit``
    mode.  Kept out of :data:`SITES`/:data:`MODES` deliberately — the
    chaos matrix above runs in-process, and an ``exit``-mode plan firing
    there would take the test runner down with it (``os._exit``)."""

    def test_shard_sites_are_valid_plan_sites(self):
        from repro.robust.faults import SHARD_SITES

        for site in SHARD_SITES:
            assert site not in SITES
            plan = FaultPlan(site, "error")
            assert plan.site == site

    def test_exit_mode_is_valid_but_not_in_process_modes(self):
        from repro.robust.faults import PROCESS_MODES

        assert "exit" in PROCESS_MODES
        assert "exit" not in MODES
        plan = FaultPlan("shard.ack", "exit", nth=3)
        assert plan.mode == "exit"

    def test_install_arms_every_hook_slot_for_process_lifetime(self):
        from repro.robust import faults

        injector = FaultInjector([FaultPlan("shard.loop", "error", nth=10**9)])
        try:
            faults.install(injector)
            assert faults._SHARD_HOOK is injector
            assert Relation._fault_hook is injector
            assert PriorityQueue._fault_hook is injector
        finally:
            faults.install(None)
        assert faults._SHARD_HOOK is None
        assert Relation._fault_hook is None

    def test_inject_still_rejects_unknown_vocabulary(self):
        with pytest.raises(ValueError):
            FaultPlan("shard.nope", "error")
        with pytest.raises(ValueError):
            FaultPlan("shard.loop", "sigsegv")
