"""Checkpoint capture / serialize / restore / resume unit tests.

The deep determinism property (interrupt anywhere + resume == run to
completion) is exercised across the program battery in
``tests/integration/test_governed_determinism.py``; this file covers the
mechanics: JSON round-trips, version gating, file I/O, and resume for
every engine family on small fixed programs."""

from __future__ import annotations

import pytest

import json

from repro.core.compiler import compile_program
from repro.errors import BudgetExceeded, CheckpointError, EvaluationError
from repro.robust import Budget, RunGovernor, load, restore, resume, save
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    capture,
    dumps,
    loads,
    program_fingerprint,
)

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(14)]}

ASSIGNMENT = "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs)."

TAKES = {
    "takes": [
        (f"s{i}", f"c{j}") for i in range(8) for j in range(3) if (i + j) % 2 == 0
    ]
}


def _interrupt(source, facts, engine, seed, budget):
    compiled = compile_program(source, engine=engine)
    governor = RunGovernor(budget, check_interval=1)
    with pytest.raises(BudgetExceeded) as info:
        compiled.run({k: list(v) for k, v in facts.items()}, seed=seed, governor=governor)
    return info.value.partial.checkpoint


def _full(source, facts, engine, seed):
    compiled = compile_program(source, engine=engine)
    return compiled.run({k: list(v) for k, v in facts.items()}, seed=seed)


class TestSerialization:
    def test_json_round_trip_preserves_everything(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        clone = loads(dumps(cp))
        assert clone.engine == cp.engine
        assert clone.clique_index == cp.clique_index
        assert clone.facts == cp.facts
        assert clone.rng_state == cp.rng_state
        assert clone.stage == cp.stage
        # The decoder canonicalizes JSON arrays to tuples (ground values
        # are always tuples), so the stable property is idempotence: a
        # second round-trip is byte-identical.
        assert dumps(loads(dumps(cp))) == dumps(cp)
        assert clone.memos.keys() == cp.memos.keys()

    def test_tuples_survive_the_round_trip(self):
        # Nested ground tuples (Huffman trees, Kruskal components...) must
        # come back as tuples, not JSON lists.
        cp = Checkpoint(
            engine="rql",
            clique_index=0,
            rng_state=None,
            facts={("h", 2): [((("a", "b"), "c"), 7)]},
            memos={},
            w_memos={},
            stage=None,
            rql={},
            choice_log=[],
            metrics={},
        )
        clone = loads(dumps(cp))
        assert clone.facts == cp.facts
        assert isinstance(clone.facts[("h", 2)][0][0], tuple)

    def test_version_mismatch_is_rejected(self):
        cp = _interrupt(SORTING, SORT_FACTS, "basic", 0, Budget(max_gamma_steps=2))
        text = dumps(cp)
        assert f'"version": {CHECKPOINT_VERSION}' in text
        text = text.replace(f'"version": {CHECKPOINT_VERSION}', '"version": 99')
        with pytest.raises(EvaluationError, match="version"):
            loads(text)

    def test_v1_checkpoints_still_load(self):
        # A v1 file has no fingerprint; the loader must accept it (and
        # restore() must skip the fingerprint check rather than reject).
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        payload = json.loads(dumps(cp))
        payload["version"] = 1
        del payload["fingerprint"]
        clone = loads(json.dumps(payload))
        assert clone.fingerprint == ""
        assert clone.facts == cp.facts
        compiled = compile_program(SORTING, engine="rql")
        db = resume(clone, compiled.program)
        assert db.as_dict() == _full(SORTING, SORT_FACTS, "rql", 3).as_dict()

    def test_save_and_load_files(self, tmp_path):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 1, Budget(max_gamma_steps=3))
        path = tmp_path / "run.checkpoint.json"
        save(cp, str(path))
        assert path.exists()
        clone = load(str(path))
        assert clone.facts == cp.facts


class TestResume:
    @pytest.mark.parametrize("engine", ["rql", "basic"])
    def test_stage_engine_resume_reproduces_the_model(self, engine):
        expected = _full(SORTING, SORT_FACTS, engine, 5).as_dict()
        cp = _interrupt(SORTING, SORT_FACTS, engine, 5, Budget(max_gamma_steps=5))
        compiled = compile_program(SORTING, engine=engine)
        engine_instance, db = restore(cp, compiled.program)
        db = engine_instance.run(db)
        assert db.as_dict() == expected

    def test_choice_engine_resume_reproduces_the_model(self):
        expected = _full(ASSIGNMENT, TAKES, "choice", 2).as_dict()
        cp = _interrupt(ASSIGNMENT, TAKES, "choice", 2, Budget(max_gamma_steps=3))
        compiled = compile_program(ASSIGNMENT, engine="choice")
        db = resume(cp, compiled.program)
        assert db.as_dict() == expected

    @pytest.mark.parametrize("engine", ["naive", "seminaive"])
    def test_plain_engine_resume_converges_to_the_fixpoint(self, engine):
        bounded = "nat(0). nat(Y) <- nat(X), X < 60, Y = X + 1."
        expected = _full(bounded, {}, engine, 0).as_dict()
        cp = _interrupt(bounded, {}, engine, 0, Budget(max_rounds=10))
        compiled = compile_program(bounded, engine=engine)
        db = resume(cp, compiled.program)
        assert db.as_dict() == expected

    def test_resume_under_a_fresh_budget_can_be_interrupted_again(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 7, Budget(max_gamma_steps=2))
        compiled = compile_program(SORTING, engine="rql")
        governor = RunGovernor(Budget(max_gamma_steps=2), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            resume(cp, compiled.program, governor=governor)
        cp2 = info.value.partial.checkpoint
        # Chain a second resume to completion: still the exact model.
        expected = _full(SORTING, SORT_FACTS, "rql", 7).as_dict()
        db = resume(loads(dumps(cp2)), compiled.program)
        assert db.as_dict() == expected

    def test_checkpoint_records_the_choice_log(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=6))
        assert cp.choice_log
        predicate, fact, stage = cp.choice_log[0]
        assert predicate == ("sp", 3)
        assert isinstance(fact, tuple)


class TestFingerprint:
    """A checkpoint belongs to one program: memo state is keyed by rule
    position, so resuming under a different program would silently
    corrupt the run.  v2 checkpoints pin the program fingerprint."""

    def test_capture_records_the_program_fingerprint(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        compiled = compile_program(SORTING, engine="rql")
        assert cp.fingerprint == program_fingerprint(compiled.program)
        assert len(cp.fingerprint) == 16

    def test_fingerprint_survives_the_round_trip(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        assert loads(dumps(cp)).fingerprint == cp.fingerprint

    def test_restore_rejects_a_mismatched_program(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        other = compile_program(
            "sp(nil, nil, 0).\nsp(X, C, I) <- next(I), q(X, C), least(C, I).",
            engine="rql",
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            restore(cp, other.program)

    def test_resume_rejects_a_mismatched_program(self):
        cp = _interrupt(ASSIGNMENT, TAKES, "choice", 2, Budget(max_gamma_steps=3))
        other = compile_program(
            "a_st(St, Crs) <- takes(St, Crs), choice(St, Crs).", engine="choice"
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            resume(cp, other.program)

    def test_matching_program_passes_the_check(self):
        cp = _interrupt(SORTING, SORT_FACTS, "rql", 3, Budget(max_gamma_steps=4))
        compiled = compile_program(SORTING, engine="rql")
        engine, db = restore(cp, compiled.program)
        assert engine.run(db).as_dict() == _full(SORTING, SORT_FACTS, "rql", 3).as_dict()
