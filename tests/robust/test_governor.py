"""RunGovernor unit tests: budgets, ticks, cancellation, the SIGINT trap,
and the acceptance property — every engine stops a divergent program at a
consistent boundary with a usable partial result."""

from __future__ import annotations

import signal
import threading

import pytest

from repro.core.compiler import ENGINES, solve_program
from repro.errors import BudgetExceeded, Cancelled
from repro.obs.tracer import Tracer
from repro.robust import (
    NULL_GOVERNOR,
    Budget,
    CancelToken,
    RunGovernor,
    trap_sigint,
)

DIVERGENT = "nat(0). nat(Y) <- nat(X), Y = X + 1."

STAGED_DIVERGENT = """
count(0, 0).
count(X, I) <- next(I), count(Y, J), J < I, X = Y + 1.
"""


class TestBudget:
    def test_default_budget_is_unlimited(self):
        assert Budget().unlimited

    def test_any_cap_makes_it_limited(self):
        assert not Budget(max_facts=1).unlimited
        assert not Budget(wall_clock=0.1).unlimited
        assert not Budget(max_gamma_steps=1).unlimited
        assert not Budget(max_rounds=1).unlimited
        assert not Budget(max_memory_mb=1.0).unlimited


class TestTicks:
    def test_gamma_cap_fires_on_the_excess_tick(self):
        governor = RunGovernor(Budget(max_gamma_steps=3))
        governor.start(None)
        for _ in range(3):
            governor.tick_gamma()
        with pytest.raises(BudgetExceeded, match="γ-step cap of 3"):
            governor.tick_gamma()

    def test_round_cap_fires_on_the_excess_tick(self):
        governor = RunGovernor(Budget(max_rounds=2))
        governor.start(None)
        governor.tick_round()
        governor.tick_round()
        with pytest.raises(BudgetExceeded, match="saturation-round cap of 2"):
            governor.tick_round()

    def test_deadline_is_checked_amortized(self):
        # A fake clock that is already past the deadline: the stop must
        # wait for the check_interval-th tick, not fire on tick 1.
        now = [0.0]
        governor = RunGovernor(
            Budget(wall_clock=1.0), check_interval=4, clock=lambda: now[0]
        )
        governor.start(None)
        now[0] = 100.0
        for _ in range(3):
            governor.tick_round()
        with pytest.raises(BudgetExceeded, match="wall-clock deadline"):
            governor.tick_round()
        assert governor.checks == 1

    def test_token_is_checked_on_every_tick(self):
        token = CancelToken()
        governor = RunGovernor(token=token, check_interval=1000)
        governor.start(None)
        governor.tick_gamma()
        token.cancel("test stop")
        with pytest.raises(Cancelled, match="test stop"):
            governor.tick_gamma()

    def test_check_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            RunGovernor(check_interval=0)

    def test_null_governor_is_inert(self):
        NULL_GOVERNOR.start(None)
        for _ in range(1000):
            NULL_GOVERNOR.tick_gamma()
            NULL_GOVERNOR.tick_round()
        NULL_GOVERNOR.check_now()
        assert NULL_GOVERNOR.enabled is False


class TestAcceptance:
    """ISSUE acceptance: a divergent program under ``--timeout 1
    --max-facts 10000`` stops with BudgetExceeded and partial diagnostics
    on every engine."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_divergent_program_is_bounded_on_every_engine(self, engine):
        governor = RunGovernor(Budget(wall_clock=1.0, max_facts=10000))
        with pytest.raises(BudgetExceeded) as info:
            solve_program(DIVERGENT, seed=0, engine=engine, governor=governor)
        partial = info.value.partial
        assert partial is not None
        assert partial.engine == engine
        assert partial.database.total_facts() > 0
        assert "partial result:" in partial.summary()

    @pytest.mark.parametrize("engine", ["rql", "basic"])
    def test_gamma_step_cap_bounds_a_divergent_stage_clique(self, engine):
        governor = RunGovernor(Budget(max_gamma_steps=20), check_interval=1)
        with pytest.raises(BudgetExceeded, match="γ-step cap") as info:
            solve_program(STAGED_DIVERGENT, seed=0, engine=engine, governor=governor)
        assert info.value.partial is not None

    def test_governor_metrics_are_published(self):
        tracer = Tracer(enabled=True)
        from repro.core.compiler import compile_program

        compiled = compile_program(DIVERGENT, engine="seminaive")
        governor = RunGovernor(Budget(max_rounds=5), check_interval=1)
        with pytest.raises(BudgetExceeded):
            compiled.run(seed=0, tracer=tracer, governor=governor)
        counters = tracer.registry.snapshot()["counters"]
        assert counters["governor/enabled"] == 1
        assert counters["governor/budget_exceeded"] == 1
        assert counters["governor/rounds"] >= 5

    def test_partial_database_is_a_prefix_of_the_model(self):
        """The facts computed before the stop are all facts of the full
        model (monotone prefix property for plain programs)."""
        bounded = "nat(0). nat(Y) <- nat(X), X < 40, Y = X + 1."
        full = solve_program(bounded, seed=0, engine="naive")
        governor = RunGovernor(Budget(max_rounds=10), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            solve_program(DIVERGENT, seed=0, engine="naive", governor=governor)
        partial_facts = set(info.value.partial.database.facts("nat", 1))
        assert partial_facts  # something was computed
        # every partial fact below the bound appears in the bounded model
        full_facts = set(full.facts("nat", 1))
        assert {f for f in partial_facts if f[0] <= 40} <= full_facts


class TestSigint:
    def test_sigint_sets_the_token_and_restores_the_handler(self):
        token = CancelToken()
        previous = signal.getsignal(signal.SIGINT)
        with trap_sigint(token):
            signal.raise_signal(signal.SIGINT)
            # first Ctrl-C: cooperative — no KeyboardInterrupt raised
            assert token.cancelled
            assert token.reason == "SIGINT"
            # the handler un-installed itself so a second Ctrl-C is hard
            assert signal.getsignal(signal.SIGINT) is previous
        assert signal.getsignal(signal.SIGINT) is previous

    def test_trap_is_a_noop_off_the_main_thread(self):
        token = CancelToken()
        outcome = {}

        def body():
            with trap_sigint(token) as t:
                outcome["token"] = t

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome["token"] is token
        assert not token.cancelled

    def test_cancelled_run_carries_partial(self):
        token = CancelToken()
        token.cancel("operator stop")
        governor = RunGovernor(token=token, check_interval=1)
        with pytest.raises(Cancelled) as info:
            solve_program(DIVERGENT, seed=0, engine="rql", governor=governor)
        assert info.value.partial is not None
        assert info.value.partial.database.total_facts() > 0


class TestCrossThreadCancel:
    """The query service cancels from *outside* the evaluating thread: a
    submitter calls ``ticket.cancel()`` while a worker runs the engine.
    The token is a plain flag read on every tick, so the governor must
    observe the flip within one check interval regardless of which
    thread set it — and the stop must still land on a consistent
    boundary with a resumable partial."""

    def test_cancel_from_another_thread_stops_the_run(self):
        from repro.core.compiler import compile_program
        from repro.robust import resume

        token = CancelToken()
        # check_interval=1: the token is consulted on every single tick,
        # so observation latency is exactly one γ-step/round.
        governor = RunGovernor(token=token, check_interval=1)
        started = threading.Event()
        outcome = {}
        original_tick = governor.tick_round

        def tick_and_signal():
            started.set()
            return original_tick()

        governor.tick_round = tick_and_signal

        def worker():
            try:
                solve_program(DIVERGENT, seed=0, engine="seminaive", governor=governor)
                outcome["result"] = "completed"
            except Cancelled as exc:
                outcome["result"] = "cancelled"
                outcome["partial"] = exc.partial

        thread = threading.Thread(target=worker)
        thread.start()
        # Wait until the engine is demonstrably inside its loop, then
        # flip the token from this (different) thread.
        assert started.wait(timeout=10.0), "engine never started ticking"
        token.cancel("cross-thread stop")
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "governor failed to observe the cancel"

        assert outcome["result"] == "cancelled"
        partial = outcome["partial"]
        assert partial is not None
        assert partial.database.total_facts() > 0
        assert partial.checkpoint is not None
        # The partial is resumable: continuing under a fresh bounded
        # governor picks up where the cancelled run stopped.
        compiled = compile_program(DIVERGENT, engine="seminaive")
        fresh = RunGovernor(Budget(max_rounds=5), check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            resume(partial.checkpoint, compiled.program, governor=fresh)
        resumed = info.value.partial.database
        assert resumed.total_facts() > partial.database.total_facts()
