"""CLI robustness: budget flags, exit codes, checkpoint save and resume."""

from __future__ import annotations

import json

import pytest

from repro import cli

DIVERGENT = "nat(0).\nnat(Y) <- nat(X), Y = X + 1.\n"

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""


@pytest.fixture
def divergent_file(tmp_path):
    path = tmp_path / "divergent.dl"
    path.write_text(DIVERGENT)
    return path


@pytest.fixture
def sorting_files(tmp_path):
    program = tmp_path / "sorting.dl"
    program.write_text(SORTING)
    facts = tmp_path / "p.csv"
    facts.write_text("".join(f"v{i},{(37 * i) % 101}\n" for i in range(12)))
    return program, facts


class TestBudgetFlags:
    def test_max_facts_exits_3_with_partial_summary(self, divergent_file, capsys):
        code = cli.main([str(divergent_file), "--max-facts", "300"])
        assert code == 3
        err = capsys.readouterr().err
        assert "budget exceeded: derived-fact cap of 300" in err
        assert "partial result:" in err

    def test_max_steps_exits_3(self, divergent_file, capsys):
        code = cli.main([str(divergent_file), "--max-steps", "25"])
        assert code == 3
        assert "saturation-round cap of 25" in capsys.readouterr().err

    def test_timeout_exits_3(self, divergent_file, capsys):
        code = cli.main([str(divergent_file), "--timeout", "0.2"])
        assert code == 3
        assert "wall-clock deadline" in capsys.readouterr().err

    def test_trace_subcommand_honours_budgets(self, divergent_file, capsys):
        code = cli.main(["trace", str(divergent_file), "--max-steps", "10", "--no-tree"])
        assert code == 3
        assert "partial result:" in capsys.readouterr().err

    def test_unbudgeted_run_still_succeeds(self, sorting_files, capsys):
        program, facts = sorting_files
        code = cli.main([str(program), "--facts", f"p={facts}", "--seed", "0"])
        assert code == 0
        assert "sp(" in capsys.readouterr().out


class TestCheckpointFlow:
    def test_checkpoint_is_written_on_budget_stop(self, divergent_file, tmp_path, capsys):
        checkpoint = tmp_path / "run.json"
        code = cli.main(
            [str(divergent_file), "--max-facts", "200", "--checkpoint", str(checkpoint)]
        )
        assert code == 3
        assert checkpoint.exists()
        payload = json.loads(checkpoint.read_text())
        assert payload["engine"] == "rql"
        err = capsys.readouterr().err
        assert "--resume-from" in err

    def test_resume_reproduces_the_uninterrupted_output(
        self, sorting_files, tmp_path, capsys
    ):
        program, facts = sorting_files
        checkpoint = tmp_path / "cp.json"
        code = cli.main(
            [
                str(program),
                "--facts",
                f"p={facts}",
                "--seed",
                "3",
                "--max-steps",
                "4",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 3
        capsys.readouterr()
        code = cli.main([str(program), "--resume-from", str(checkpoint)])
        assert code == 0
        resumed = capsys.readouterr().out
        code = cli.main([str(program), "--facts", f"p={facts}", "--seed", "3"])
        assert code == 0
        full = capsys.readouterr().out
        assert resumed == full

    def test_resume_uses_the_checkpoint_engine(self, sorting_files, tmp_path, capsys):
        program, facts = sorting_files
        checkpoint = tmp_path / "cp.json"
        cli.main(
            [
                str(program),
                "--facts",
                f"p={facts}",
                "--seed",
                "1",
                "--engine",
                "basic",
                "--max-steps",
                "3",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        capsys.readouterr()
        # --engine rql on the command line loses to the checkpoint's engine.
        code = cli.main(
            [str(program), "--resume-from", str(checkpoint), "--engine", "rql"]
        )
        assert code == 0
        assert json.loads(checkpoint.read_text())["engine"] == "basic"


class TestResumeDiagnostics:
    """A missing, corrupt or mismatched --resume-from file is an input
    problem: exit code 2 and exactly one diagnostic line — never a
    traceback."""

    def _checkpoint(self, sorting_files, tmp_path, capsys):
        program, facts = sorting_files
        checkpoint = tmp_path / "cp.json"
        cli.main(
            [
                str(program),
                "--facts",
                f"p={facts}",
                "--seed",
                "3",
                "--max-steps",
                "4",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        capsys.readouterr()
        return program, checkpoint

    def test_missing_checkpoint_exits_2_with_one_line(
        self, sorting_files, tmp_path, capsys
    ):
        program, _ = sorting_files
        missing = tmp_path / "nope.json"
        code = cli.main([str(program), "--resume-from", str(missing)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith(f"error: cannot resume from {missing}")
        assert "Traceback" not in err

    def test_corrupt_json_exits_2_with_one_line(
        self, sorting_files, tmp_path, capsys
    ):
        program, checkpoint = self._checkpoint(sorting_files, tmp_path, capsys)
        checkpoint.write_text(checkpoint.read_text()[: 40] + "GARBAGE")
        code = cli.main([str(program), "--resume-from", str(checkpoint)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cannot resume from" in err
        assert "Traceback" not in err

    def test_unsupported_version_exits_2(self, sorting_files, tmp_path, capsys):
        program, checkpoint = self._checkpoint(sorting_files, tmp_path, capsys)
        payload = json.loads(checkpoint.read_text())
        payload["version"] = 99
        checkpoint.write_text(json.dumps(payload))
        code = cli.main([str(program), "--resume-from", str(checkpoint)])
        assert code == 2
        err = capsys.readouterr().err
        assert "version" in err
        assert err.count("\n") == 1

    def test_mismatched_program_exits_2(self, sorting_files, tmp_path, capsys):
        _, checkpoint = self._checkpoint(sorting_files, tmp_path, capsys)
        other = tmp_path / "other.dl"
        other.write_text(
            "sp(nil, nil, 0).\nsp(X, C, I) <- next(I), q(X, C), least(C, I).\n"
        )
        code = cli.main([str(other), "--resume-from", str(checkpoint)])
        assert code == 2
        err = capsys.readouterr().err
        assert "fingerprint" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestExitCodes:
    def test_cancelled_exits_130(self, divergent_file, capsys, monkeypatch):
        from repro.robust import CancelToken, RunGovernor

        def precancelled(args):
            token = CancelToken()
            token.cancel("test cancel")
            return RunGovernor(token=token, check_interval=1), token

        monkeypatch.setattr(cli, "_build_governor", precancelled)
        code = cli.main([str(divergent_file)])
        assert code == 130
        err = capsys.readouterr().err
        assert "cancelled: test cancel" in err
        assert "partial result:" in err

    def test_keyboard_interrupt_exits_130(self, divergent_file, capsys, monkeypatch):
        def interrupting(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_build_governor", interrupting)
        code = cli.main([str(divergent_file)])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_plain_errors_still_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(X, Y) <- q(X).")
        assert cli.main([str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
