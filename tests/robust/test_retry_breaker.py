"""Unit tests for the retry policy and the circuit breaker.

Both are pure state machines over injectable clocks/rngs, so every
transition is scripted exactly — no sleeping, no wall-clock flakiness.
"""

from __future__ import annotations

import random

import pytest

from repro.robust.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.robust.faults import FaultInjected
from repro.robust.retry import RetryPolicy, is_transient


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_transient_failures_are_retried_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjected("boom")
            return "done"

        policy = RetryPolicy(max_attempts=3)
        slept = []
        result = policy.call(
            flaky, transient=is_transient, rng=random.Random(0), sleep=slept.append
        )
        assert result == "done"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_attempts_are_capped(self):
        policy = RetryPolicy(max_attempts=3)

        def always_fails():
            raise FaultInjected("boom")

        with pytest.raises(FaultInjected):
            policy.call(
                always_fails,
                transient=is_transient,
                rng=random.Random(0),
                sleep=lambda s: None,
            )

    def test_non_transient_failures_are_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("permanent")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.call(
                broken, transient=is_transient, rng=random.Random(0),
                sleep=lambda s: None,
            )
        assert len(calls) == 1

    def test_backoff_grows_exponentially_with_full_jitter(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=10.0)
        rng = random.Random(1)
        # Full jitter: each delay is uniform in [0, base * 2**attempt].
        for attempt in range(5):
            ceiling = 0.01 * 2**attempt
            for _ in range(20):
                assert 0.0 <= policy.backoff(attempt, rng) <= ceiling

    def test_backoff_is_capped_by_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=0.05)
        rng = random.Random(2)
        assert all(policy.backoff(10, rng) <= 0.05 for _ in range(50))

    def test_delay_budget_truncates_total_sleeping(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.5, max_delay=10.0, delay_budget=0.2
        )
        slept = []

        def always_fails():
            raise FaultInjected("boom")

        with pytest.raises(FaultInjected):
            policy.call(
                always_fails,
                transient=is_transient,
                rng=random.Random(3),
                sleep=slept.append,
            )
        assert sum(slept) <= 0.2 + 1e-9

    def test_deadline_abandons_the_retry(self):
        # When sleeping the backoff would blow the deadline, give up and
        # re-raise the transient failure instead of wasting the wait.
        clock = FakeClock(100.0)
        policy = RetryPolicy(max_attempts=5, base_delay=50.0, max_delay=50.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise FaultInjected("boom")

        with pytest.raises(FaultInjected):
            policy.call(
                always_fails,
                transient=is_transient,
                rng=random.Random(4),
                sleep=lambda s: None,
                deadline=100.5,
                clock=clock,
            )
        assert len(calls) == 1

    def test_on_retry_callback_sees_each_retry(self):
        seen = []
        policy = RetryPolicy(max_attempts=3)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjected("boom")
            return True

        policy.call(
            flaky,
            transient=is_transient,
            rng=random.Random(5),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, type(exc))),
        )
        assert seen == [(0, FaultInjected), (1, FaultInjected)]

    def test_seeded_rng_makes_the_schedule_reproducible(self):
        policy = RetryPolicy(max_attempts=6)
        a = policy.preview_delays(random.Random(42))
        b = policy.preview_delays(random.Random(42))
        assert a == b

    def test_is_transient_classifies_injected_faults_only(self):
        assert is_transient(FaultInjected("x"))
        assert not is_transient(ValueError("x"))
        assert not is_transient(KeyboardInterrupt())


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = FakeClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 10.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.transitions["opened"] == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_opens_after_the_reset_timeout(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.transitions["half_opened"] == 1

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout=1.0, half_open_max=1
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # the slot is taken
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions["closed"] == 1

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.transitions["opened"] == 2

    def test_release_probe_returns_the_slot_without_an_outcome(self):
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout=1.0, half_open_max=1
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release_probe()  # the probe never ran (shed at admission)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # slot is available again

    def test_snapshot_reports_state_and_transitions(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["transitions"] == {"opened": 1, "half_opened": 1, "closed": 1}

    def test_full_scripted_cycle(self):
        # CLOSED -> OPEN -> HALF_OPEN -> OPEN -> HALF_OPEN -> CLOSED.
        breaker, clock = self._breaker(failure_threshold=2, reset_timeout=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()  # probe fails
        assert breaker.state == OPEN
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()  # probe heals
        assert breaker.state == CLOSED
        assert breaker.transitions == {"opened": 2, "half_opened": 2, "closed": 1}
