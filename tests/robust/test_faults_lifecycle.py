"""Hook-slot lifecycle for the fault injectors.

The process has one set of class/module-level hook slots
(:func:`repro.robust.faults._hook_targets`); every installer must leave
them exactly as it found them or unrelated tests inherit live fault
plans.  ``tests/conftest.py`` enforces the no-leak invariant after every
test — these tests pin down the installer semantics themselves.
"""

from __future__ import annotations

import pytest

from repro.robust import faults
from repro.robust.faults import (
    INCREMENTAL_SITES,
    SITES,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    inject,
    installed,
)


def _slots():
    return [getattr(holder, attr) for holder, attr in faults._hook_targets()]


class TestInstalledContextManager:
    def test_patches_every_slot_and_restores_on_exit(self):
        injector = FaultInjector()
        assert all(slot is None for slot in _slots())
        with installed(injector) as active:
            assert active is injector
            assert all(slot is injector for slot in _slots())
        assert all(slot is None for slot in _slots())

    def test_restores_even_when_the_block_raises(self):
        injector = FaultInjector()
        with pytest.raises(RuntimeError):
            with installed(injector):
                raise RuntimeError("boom")
        assert all(slot is None for slot in _slots())

    def test_none_is_a_passthrough(self):
        with installed(None) as active:
            assert active is None
            assert all(slot is None for slot in _slots())

    def test_restores_previous_values_not_none(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with installed(outer):
            with installed(inner):
                assert all(slot is inner for slot in _slots())
            assert all(slot is outer for slot in _slots())
        assert all(slot is None for slot in _slots())


class TestInjectExclusivity:
    def test_nested_inject_is_rejected(self):
        with inject(FaultInjector()):
            with pytest.raises(FaultInjectionError):
                with inject(FaultInjector()):
                    pass  # pragma: no cover
        assert all(slot is None for slot in _slots())

    def test_inject_restores_after_an_exception(self):
        with pytest.raises(ValueError):
            with inject(FaultInjector()):
                raise ValueError("boom")
        assert all(slot is None for slot in _slots())


class TestSiteVocabulary:
    def test_incremental_sites_are_plan_valid(self):
        for site in INCREMENTAL_SITES:
            FaultPlan(site=site, mode="error")  # must not raise

    def test_incremental_sites_are_not_crash_sites(self):
        # The crash countdown sweeps CRASH_SITES only; the incremental
        # hooks are a separate vocabulary.
        assert not set(INCREMENTAL_SITES) & set(faults.CRASH_SITES)

    def test_unknown_site_is_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(site="no.such.site", mode="error")

    def test_sites_listing_is_the_plan_universe(self):
        for site in SITES:
            FaultPlan(site=site, mode="error")
