"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import math

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import (
    EmptySweepError,
    SweepPoint,
    SweepResult,
    fitted_exponent,
    sweep,
)


class TestFittedExponent:
    def test_linear_data_has_slope_one(self):
        sizes = [100, 200, 400, 800]
        times = [s * 1e-6 for s in sizes]
        assert fitted_exponent(sizes, times) == pytest.approx(1.0, abs=0.01)

    def test_quadratic_data_has_slope_two(self):
        sizes = [10, 20, 40, 80]
        times = [s * s * 1e-6 for s in sizes]
        assert fitted_exponent(sizes, times) == pytest.approx(2.0, abs=0.01)

    def test_nlogn_data_fits_between_one_and_two(self):
        sizes = [2 ** k for k in range(6, 14)]
        times = [s * math.log(s) * 1e-7 for s in sizes]
        slope = fitted_exponent(sizes, times)
        assert 1.0 < slope < 1.5

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fitted_exponent([10], [0.1])

    def test_identical_sizes_raise(self):
        with pytest.raises(ValueError):
            fitted_exponent([5, 5], [0.1, 0.2])


class TestSweep:
    def test_sweep_runs_operation_per_size(self):
        calls = []
        result = sweep(
            "demo",
            sizes=[1, 2, 3],
            make_input=lambda n: n,
            operation=lambda n: calls.append(n),
            repeats=2,
        )
        assert result.sizes == [1, 2, 3]
        assert len(calls) == 6  # 3 sizes x 2 repeats
        assert all(p.seconds >= 0 for p in result.points)

    def test_scaled_by_normaliser(self):
        result = SweepResult("demo", [SweepPoint(10, 1.0), SweepPoint(20, 2.0)])
        scaled = result.scaled_by(lambda n: n)
        assert scaled == [0.1, 0.1]

    def test_exponent_accessor(self):
        result = SweepResult("demo", [SweepPoint(10, 0.1), SweepPoint(100, 1.0)])
        assert result.exponent() == pytest.approx(1.0, abs=0.01)

    def test_empty_size_list_fails_loudly(self):
        # A zero-sample sweep silently passes every shape assertion and
        # writes a vacuous baseline — it must raise, never return.
        with pytest.raises(EmptySweepError, match="zero samples"):
            sweep("demo", sizes=[], make_input=lambda n: n, operation=lambda n: n)

    def test_zero_repeats_fails_loudly(self):
        with pytest.raises(EmptySweepError, match="zero samples"):
            sweep(
                "demo",
                sizes=[1, 2],
                make_input=lambda n: n,
                operation=lambda n: n,
                repeats=0,
            )

    def test_empty_sweep_error_is_a_value_error(self):
        # Callers that caught ValueError from the old silent path (via
        # fitted_exponent) keep working.
        assert issubclass(EmptySweepError, ValueError)


class TestRegressionCLI:
    def test_empty_sweep_exits_2_with_one_line_diagnostic(self, monkeypatch, capsys):
        from repro.bench import regression

        def boom():
            raise EmptySweepError("sweep 'demo' produced zero samples: empty size list")

        monkeypatch.setattr(regression, "run_regression", boom)
        assert regression.main([]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "zero samples" in err


class TestFormatTable:
    def test_aligned_columns(self):
        table = format_table(["n", "time"], [[10, 0.5], [1000, 12.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("n")
        assert "----" in lines[1]

    def test_small_floats_in_scientific_notation(self):
        table = format_table(["x"], [[0.000123]])
        assert "e-" in table
