"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import math

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import SweepResult, SweepPoint, fitted_exponent, sweep


class TestFittedExponent:
    def test_linear_data_has_slope_one(self):
        sizes = [100, 200, 400, 800]
        times = [s * 1e-6 for s in sizes]
        assert fitted_exponent(sizes, times) == pytest.approx(1.0, abs=0.01)

    def test_quadratic_data_has_slope_two(self):
        sizes = [10, 20, 40, 80]
        times = [s * s * 1e-6 for s in sizes]
        assert fitted_exponent(sizes, times) == pytest.approx(2.0, abs=0.01)

    def test_nlogn_data_fits_between_one_and_two(self):
        sizes = [2 ** k for k in range(6, 14)]
        times = [s * math.log(s) * 1e-7 for s in sizes]
        slope = fitted_exponent(sizes, times)
        assert 1.0 < slope < 1.5

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fitted_exponent([10], [0.1])

    def test_identical_sizes_raise(self):
        with pytest.raises(ValueError):
            fitted_exponent([5, 5], [0.1, 0.2])


class TestSweep:
    def test_sweep_runs_operation_per_size(self):
        calls = []
        result = sweep(
            "demo",
            sizes=[1, 2, 3],
            make_input=lambda n: n,
            operation=lambda n: calls.append(n),
            repeats=2,
        )
        assert result.sizes == [1, 2, 3]
        assert len(calls) == 6  # 3 sizes x 2 repeats
        assert all(p.seconds >= 0 for p in result.points)

    def test_scaled_by_normaliser(self):
        result = SweepResult("demo", [SweepPoint(10, 1.0), SweepPoint(20, 2.0)])
        scaled = result.scaled_by(lambda n: n)
        assert scaled == [0.1, 0.1]

    def test_exponent_accessor(self):
        result = SweepResult("demo", [SweepPoint(10, 0.1), SweepPoint(100, 1.0)])
        assert result.exponent() == pytest.approx(1.0, abs=0.01)


class TestFormatTable:
    def test_aligned_columns(self):
        table = format_table(["n", "time"], [[10, 0.5], [1000, 12.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("n")
        assert "----" in lines[1]

    def test_small_floats_in_scientific_notation(self):
        table = format_table(["x"], [[0.000123]])
        assert "e-" in table
