"""Tests for the Example 6 Huffman API."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import huffman_tree as baseline_huffman
from repro.programs.huffman import (
    decode,
    encode,
    huffman_codes,
    huffman_tree,
)


class TestHuffmanTree:
    def test_clrs_example_weighted_path_length(self, clrs_frequencies):
        result = huffman_tree(clrs_frequencies, seed=0)
        assert result.weighted_path_length == 224
        assert result.cost == sum(clrs_frequencies.values())

    def test_matches_baseline_optimum(self):
        freqs = {"a": 10, "b": 15, "c": 30, "d": 16, "e": 29}
        result = huffman_tree(freqs, seed=0)
        _, optimal = baseline_huffman(freqs)
        assert result.weighted_path_length == optimal

    def test_number_of_merges(self, clrs_frequencies):
        result = huffman_tree(clrs_frequencies, seed=0)
        assert len(result.merges) == len(clrs_frequencies) - 1

    def test_two_symbols(self):
        result = huffman_tree({"a": 1, "b": 2}, seed=0)
        assert result.tree in (("t", "a", "b"), ("t", "b", "a"))

    def test_single_symbol_rejected(self):
        with pytest.raises(ValueError):
            huffman_tree({"a": 1})

    def test_tied_frequencies_still_optimal(self):
        freqs = {"a": 5, "b": 5, "c": 5, "d": 5}
        for seed in range(5):
            result = huffman_tree(freqs, seed=seed)
            assert result.weighted_path_length == 40  # balanced tree

    @settings(max_examples=15, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from("abcdefgh"),
            st.integers(1, 100),
            min_size=2,
            max_size=6,
        )
    )
    def test_always_matches_procedural_optimum(self, freqs):
        result = huffman_tree(freqs, seed=0)
        _, optimal = baseline_huffman(freqs)
        assert result.weighted_path_length == optimal


class TestCodes:
    def test_codes_are_prefix_free(self, clrs_frequencies):
        codes = huffman_codes(clrs_frequencies, seed=0)
        values = list(codes.values())
        for i, a in enumerate(values):
            for j, b in enumerate(values):
                if i != j:
                    assert not b.startswith(a)

    def test_frequent_symbols_get_short_codes(self, clrs_frequencies):
        codes = huffman_codes(clrs_frequencies, seed=0)
        assert len(codes["a"]) < len(codes["f"])  # 45 vs 5 occurrences

    def test_encode_decode_roundtrip(self, clrs_frequencies):
        codes = huffman_codes(clrs_frequencies, seed=0)
        message = list("abacafdeedcbab")
        assert decode(encode(message, codes), codes) == message

    def test_decode_rejects_dangling_bits(self, clrs_frequencies):
        codes = huffman_codes(clrs_frequencies, seed=0)
        # Append a strict prefix of some multi-bit code: undecodable tail.
        dangling = next(code for code in codes.values() if len(code) > 1)[:-1]
        bits = encode(["a", "b"], codes) + dangling
        with pytest.raises(ValueError):
            decode(bits, codes)

    def test_compression_beats_fixed_width(self, clrs_frequencies):
        codes = huffman_codes(clrs_frequencies, seed=0)
        # A skewed corpus matching the frequencies.
        corpus = []
        for symbol, freq in clrs_frequencies.items():
            corpus.extend([symbol] * freq)
        encoded = encode(corpus, codes)
        fixed_width = len(corpus) * 3  # 6 symbols need 3 bits each
        assert len(encoded) < fixed_width
