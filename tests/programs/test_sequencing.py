"""Tests for job sequencing with deadlines."""

from __future__ import annotations

import itertools


from repro.baselines import sequence_jobs as baseline_sequence
from repro.programs import sequence_jobs

TEXTBOOK = [("a", 100, 2), ("b", 19, 1), ("c", 27, 2), ("d", 25, 1), ("e", 15, 3)]


class TestJobSequencing:
    def test_textbook_instance(self):
        scheduled = sequence_jobs(TEXTBOOK, seed=0)
        assert [j.name for j in scheduled] == ["a", "c", "e"]
        assert sum(j.profit for j in scheduled) == 142

    def test_latest_slot_policy(self):
        # The highest-profit job must take the latest slot <= its deadline,
        # leaving earlier slots for tighter jobs.
        scheduled = sequence_jobs([("rich", 50, 2), ("tight", 40, 1)], seed=0)
        by_name = {j.name: j.slot for j in scheduled}
        assert by_name == {"rich": 2, "tight": 1}

    def test_slots_unique_and_within_deadline(self):
        scheduled = sequence_jobs(TEXTBOOK, seed=0)
        slots = [j.slot for j in scheduled]
        assert len(set(slots)) == len(slots)
        deadlines = {name: d for name, _, d in TEXTBOOK}
        for job in scheduled:
            assert job.slot <= deadlines[job.name]

    def test_profit_is_optimal_vs_brute_force(self):
        """Matroid structure: greedy profit equals the brute-force optimum
        over all schedulable subsets."""
        jobs = TEXTBOOK
        best = 0
        names = [j[0] for j in jobs]
        lookup = {name: (p, d) for name, p, d in jobs}
        for r in range(len(jobs) + 1):
            for subset in itertools.combinations(names, r):
                # Schedulable iff sorting by deadline fits slot i <= d_i.
                deadlines = sorted(lookup[n][1] for n in subset)
                if all(slot + 1 <= d for slot, d in enumerate(deadlines)):
                    best = max(best, sum(lookup[n][0] for n in subset))
        scheduled = sequence_jobs(jobs, seed=0)
        assert sum(j.profit for j in scheduled) == best

    def test_matches_procedural_greedy(self):
        scheduled = sequence_jobs(TEXTBOOK, seed=0)
        expected = baseline_sequence(TEXTBOOK)
        assert [(j.name, j.profit, j.slot) for j in scheduled] == expected

    def test_empty(self):
        assert sequence_jobs([], seed=0) == []

    def test_single_job(self):
        scheduled = sequence_jobs([("only", 7, 3)], seed=0)
        assert [(j.name, j.slot) for j in scheduled] == [("only", 3)]
