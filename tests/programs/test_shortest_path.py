"""Tests for the Dijkstra extension program."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import dijkstra_distances as baseline_dijkstra
from repro.programs.shortest_path import dijkstra_distances
from repro.workloads import grid_graph, random_connected_graph


class TestDijkstra:
    def test_simple_graph(self, diamond_graph):
        distances = dijkstra_distances(diamond_graph, "a", seed=0)
        assert distances == {"a": 0, "c": 1, "b": 3, "d": 8}

    def test_unreachable_vertices_absent(self):
        edges = [("a", "b", 1), ("c", "d", 1)]
        distances = dijkstra_distances(edges, "a", seed=0)
        assert set(distances) == {"a", "b"}

    def test_matches_procedural_dijkstra_on_random_graphs(self):
        for seed in range(3):
            nodes, edges = random_connected_graph(10, extra_edges=14, seed=seed)
            declarative = dijkstra_distances(edges, nodes[0], seed=0)
            procedural = baseline_dijkstra(edges, nodes[0])
            assert declarative == procedural

    def test_grid_graph(self):
        nodes, edges = grid_graph(3, 4, seed=1)
        declarative = dijkstra_distances(edges, nodes[0], seed=0)
        procedural = baseline_dijkstra(edges, nodes[0])
        assert declarative == procedural

    def test_engines_agree(self, diamond_graph):
        basic = dijkstra_distances(diamond_graph, "a", engine="basic", seed=0)
        rql = dijkstra_distances(diamond_graph, "a", engine="rql", seed=0)
        assert basic == rql

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1000))
    def test_triangle_inequality_on_settled_distances(self, seed):
        nodes, edges = random_connected_graph(8, extra_edges=8, seed=seed)
        distances = dijkstra_distances(edges, nodes[0], seed=0)
        lookup = {}
        for u, v, c in edges:
            lookup.setdefault(u, []).append((v, c))
            lookup.setdefault(v, []).append((u, c))
        for u, d in distances.items():
            for v, c in lookup.get(u, ()):
                assert distances[v] <= d + c
