"""Tests for the activity-selection program."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import select_activities as baseline_select
from repro.programs.scheduling import select_activities
from repro.workloads import random_jobs

CLRS_JOBS = [
    ("j1", 1, 4),
    ("j2", 3, 5),
    ("j3", 0, 6),
    ("j4", 5, 7),
    ("j5", 3, 9),
    ("j6", 5, 9),
    ("j7", 6, 10),
    ("j8", 8, 11),
    ("j9", 8, 12),
    ("j10", 2, 14),
    ("j11", 12, 16),
]


class TestActivitySelection:
    def test_clrs_instance(self):
        selected = select_activities(CLRS_JOBS, seed=0)
        assert [j.name for j in selected] == ["j1", "j4", "j8", "j11"]

    def test_selected_jobs_are_compatible(self):
        selected = select_activities(CLRS_JOBS, seed=0)
        for first, second in zip(selected, selected[1:]):
            assert second.start >= first.finish

    def test_count_matches_optimal_greedy(self):
        for seed in range(3):
            jobs = random_jobs(15, horizon=60, seed=seed)
            declarative = select_activities(jobs, seed=0)
            procedural = baseline_select(jobs)
            assert len(declarative) == len(procedural)

    def test_empty_jobs(self):
        assert select_activities([], seed=0) == []

    def test_single_job(self):
        selected = select_activities([("only", 2, 5)], seed=0)
        assert [j.name for j in selected] == ["only"]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cardinality_is_maximum(self, seed):
        """Earliest-finish greedy is provably optimal; cross-check the
        cardinality against an interval-scheduling DP."""
        jobs = random_jobs(10, horizon=40, seed=seed)
        declarative = select_activities(jobs, seed=0)

        ordered = sorted(jobs, key=lambda j: j[2])
        best = [0] * (len(ordered) + 1)
        for i, (_, start, finish) in enumerate(ordered):
            take = 1
            for k in range(i - 1, -1, -1):
                if ordered[k][2] <= start:
                    take = best[k + 1] + 1
                    break
            best[i + 1] = max(best[i], take)
        assert len(declarative) == best[len(ordered)]
