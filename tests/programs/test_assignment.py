"""Tests for the Section 2 student/course examples."""

from __future__ import annotations


from repro.programs.assignment import (
    assign_students,
    bi_injective_bottom_pairs,
    bottom_students,
)


class TestAssignStudents:
    def test_result_is_bi_injective(self, takes_pairs):
        assignment = assign_students(takes_pairs, seed=0)
        students = [s for s, _ in assignment]
        courses = [c for _, c in assignment]
        assert len(set(students)) == len(students)
        assert len(set(courses)) == len(courses)

    def test_assignments_come_from_takes(self, takes_pairs):
        assignment = assign_students(takes_pairs, seed=1)
        assert set(assignment) <= set(takes_pairs)

    def test_multiple_models_reachable(self, takes_pairs):
        seen = {tuple(assign_students(takes_pairs, seed=s)) for s in range(25)}
        assert len(seen) == 3  # the paper's M1, M2, M3


class TestBottomStudents:
    def test_paper_example(self, takes_grades):
        assert bottom_students(takes_grades) == [
            ("mark", "engl", 2),
            ("mark", "math", 2),
        ]

    def test_grades_of_one_or_less_excluded(self):
        takes = [("a", "crs", 1), ("b", "crs", 0), ("c", "crs", 5)]
        assert bottom_students(takes) == [("c", "crs", 5)]

    def test_ties_all_returned(self):
        takes = [("a", "crs", 2), ("b", "crs", 2), ("c", "crs", 7)]
        assert bottom_students(takes) == [("a", "crs", 2), ("b", "crs", 2)]

    def test_deterministic(self, takes_grades):
        assert bottom_students(takes_grades) == bottom_students(takes_grades)


class TestBiInjectiveBottom:
    def test_always_one_of_the_two_paper_models(self, takes_grades):
        for seed in range(10):
            result = bi_injective_bottom_pairs(takes_grades, seed=seed)
            assert result in (
                [("mark", "engl", 2)],
                [("mark", "math", 2)],
            )

    def test_both_models_reachable(self, takes_grades):
        seen = {
            tuple(bi_injective_bottom_pairs(takes_grades, seed=s)) for s in range(25)
        }
        assert len(seen) == 2
