"""Tests for the Example 7 matching API."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_matching
from repro.programs.matching import min_cost_matching
from repro.workloads import random_bipartite_arcs


class TestMatching:
    def test_simple_instance(self):
        arcs = [("a", "x", 3), ("a", "y", 1), ("b", "x", 2), ("b", "y", 4)]
        result = min_cost_matching(arcs, seed=0)
        assert result.is_matching()
        assert set(result.arcs) == {("a", "y", 1), ("b", "x", 2)}
        assert result.total_cost == 3

    def test_greedy_selects_in_cost_order(self):
        arcs = [("a", "x", 5), ("b", "y", 1), ("c", "z", 3)]
        result = min_cost_matching(arcs, seed=0)
        costs = [c for _, _, c in result.arcs]
        assert costs == sorted(costs)

    def test_empty_graph(self):
        result = min_cost_matching([], seed=0)
        assert len(result) == 0
        assert result.total_cost == 0

    def test_maximality(self):
        arcs = [("a", "x", 1), ("b", "y", 2), ("c", "x", 3), ("c", "z", 9)]
        result = min_cost_matching(arcs, seed=0)
        sources = {x for x, _, _ in result.arcs}
        targets = {y for _, y, _ in result.arcs}
        for x, y, _ in arcs:
            assert x in sources or y in targets

    def test_greedy_is_suboptimal_on_adversarial_instance(self):
        """Greedy is maximal but not minimum-cost overall — the paper's
        Section 7 point about matroid intersections."""
        arcs = [("a", "x", 1), ("a", "y", 2), ("b", "x", 3)]
        result = min_cost_matching(arcs, seed=0)
        # Greedy takes (a,x,1) then (nothing for b with x gone) -> cost 1,
        # size 1; the optimum matching {(a,y),(b,x)} has size 2.
        assert result.total_cost == 1
        assert len(result) == 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_procedural_greedy(self, seed):
        arcs = random_bipartite_arcs(4, 4, 3, seed=seed)
        result = min_cost_matching(arcs, seed=0)
        procedural, cost = greedy_matching(arcs)
        assert result.total_cost == cost
        assert len(result) == len(procedural)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matching_property_holds(self, seed):
        arcs = random_bipartite_arcs(5, 3, 2, seed=seed)
        result = min_cost_matching(arcs, seed=0)
        assert result.is_matching()
