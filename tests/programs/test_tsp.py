"""Tests for the greedy TSP chain API (Section 5)."""

from __future__ import annotations

import itertools
import random


from repro.baselines import nearest_neighbor_chain
from repro.programs.tsp import greedy_tsp_chain
from repro.workloads import complete_graph


def _distinct_arcs(n, seed):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(n)]
    costs = rng.sample(range(1, 10 * n * n), n * (n - 1))
    return [(a, b, costs.pop()) for a, b in itertools.permutations(nodes, 2)]


class TestGreedyTSP:
    def test_hamiltonian_path_on_complete_graph(self):
        arcs = _distinct_arcs(6, seed=0)
        result = greedy_tsp_chain(arcs, seed=0)
        assert result.is_hamiltonian_path(6)

    def test_chain_is_connected(self):
        arcs = _distinct_arcs(5, seed=1)
        result = greedy_tsp_chain(arcs, seed=0)
        for first, second in zip(result.arcs, result.arcs[1:]):
            assert first[1] == second[0]

    def test_starts_from_cheapest_arc(self):
        arcs = _distinct_arcs(5, seed=2)
        result = greedy_tsp_chain(arcs, seed=0)
        assert result.arcs[0][2] == min(c for _, _, c in arcs)

    def test_matches_procedural_nearest_neighbor(self):
        for seed in range(3):
            arcs = _distinct_arcs(6, seed=seed)
            result = greedy_tsp_chain(arcs, seed=0)
            _, cost = nearest_neighbor_chain(arcs)
            assert result.total_cost == cost

    def test_undirected_input_symmetrised(self):
        _, edges = complete_graph(5, seed=3)
        result = greedy_tsp_chain(edges, directed=False, seed=0)
        assert result.is_hamiltonian_path(5)

    def test_suboptimality_vs_brute_force(self):
        """Greedy gives a valid but possibly suboptimal Hamiltonian path —
        within reach of the exact optimum computed by brute force."""
        arcs = _distinct_arcs(5, seed=7)
        cost_of = {(a, b): c for a, b, c in arcs}
        nodes = sorted({a for a, _, _ in arcs})
        best = min(
            sum(cost_of[(p[i], p[i + 1])] for i in range(len(p) - 1))
            for p in itertools.permutations(nodes)
        )
        result = greedy_tsp_chain(arcs, seed=0)
        assert result.total_cost >= best
        assert result.total_cost <= best * 5  # loose sanity bracket
