"""Tests for greedy coin change — and for the engine-soundness guard it
motivated."""

from __future__ import annotations

import random

import pytest

from repro.core.greedy_engine import GreedyStageEngine
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs.coins import greedy_change
from repro.storage.database import Database

US_COINS = [1, 5, 10, 25]


class TestGreedyChange:
    def test_canonical_system_is_exact(self):
        result = greedy_change(68, US_COINS, seed=0)
        assert result.coins == (25, 25, 10, 5, 1, 1, 1)
        assert result.total == 68
        assert result.remainder == 0

    def test_zero_amount(self):
        result = greedy_change(0, US_COINS, seed=0)
        assert result.coins == ()
        assert result.remainder == 0

    def test_amount_smaller_than_every_coin(self):
        result = greedy_change(3, [5, 10], seed=0)
        assert result.coins == ()
        assert result.remainder == 3

    def test_engines_agree(self):
        basic = greedy_change(99, US_COINS, seed=0, engine="basic")
        rql = greedy_change(99, US_COINS, seed=0, engine="rql")
        assert basic == rql

    def test_noncanonical_system_shows_greedy_shortfall(self):
        # 6 = 4+1+1 greedily but 3+3 optimally: the classic example.
        result = greedy_change(6, [1, 3, 4], seed=0)
        assert result.coins == (4, 1, 1)

    def test_nonpositive_denomination_rejected(self):
        with pytest.raises(ValueError):
            greedy_change(5, [0, 1])


class TestOneFactOneFiringGuard:
    def test_rql_engine_falls_back_with_reason(self):
        engine = GreedyStageEngine(
            parse_program(texts.COIN_CHANGE), rng=random.Random(0)
        )
        db = Database()
        db.assert_all("coin", [(1,), (5,)])
        db.assert_fact("amount", (7,))
        engine.run(db)
        assert engine.fallbacks
        (reason,) = set(engine.fallbacks.values())
        assert "one-fact-one-firing" in reason

    def test_fallback_result_is_still_correct(self):
        engine = GreedyStageEngine(
            parse_program(texts.COIN_CHANGE), rng=random.Random(0)
        )
        db = Database()
        db.assert_all("coin", [(1,), (5,)])
        db.assert_fact("amount", (7,))
        engine.run(db)
        coins = [f[0] for f in db.facts("change", 3) if f[2] > 0]
        assert sorted(coins, reverse=True) == [5, 1, 1]
