"""Tests for the Example 5 sorting API."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs.sorting import datalog_sort, sort_values


class TestDatalogSort:
    def test_basic_order(self):
        out = datalog_sort([("a", 5), ("b", 2), ("c", 9), ("d", 1)])
        assert out == [("d", 1), ("b", 2), ("a", 5), ("c", 9)]

    def test_empty_relation(self):
        assert datalog_sort([]) == []

    def test_single_item(self):
        assert datalog_sort([("only", 42)]) == [("only", 42)]

    def test_ties_produce_some_valid_order(self):
        out = datalog_sort([("a", 1), ("b", 1), ("c", 0)])
        assert out[0] == ("c", 0)
        assert {out[1], out[2]} == {("a", 1), ("b", 1)}

    def test_duplicate_pairs_collapse(self):
        # Relations are sets: an exact duplicate is one tuple.
        out = datalog_sort([("a", 1), ("a", 1)])
        assert out == [("a", 1)]

    def test_engines_agree(self):
        items = [(f"x{i}", (i * 37) % 11) for i in range(9)]
        basic = datalog_sort(items, engine="basic", seed=0)
        rql = datalog_sort(items, engine="rql", seed=0)
        assert [c for _, c in basic] == [c for _, c in rql]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), max_size=15))
    def test_sort_values_matches_sorted(self, values):
        assert sort_values(values) == sorted(values)

    def test_mixed_types_follow_total_order(self):
        out = sort_values(["b", 2, "a", 1])
        assert out == [1, 2, "a", "b"]
