"""Tests for the ``most`` dual of Example 7 (heaviest-arc matching)."""

from __future__ import annotations

import itertools


from repro.programs import max_weight_matching, min_cost_matching
from repro.workloads import random_bipartite_arcs


class TestMaxWeightMatching:
    def test_selects_heaviest_first(self):
        arcs = [("a", "x", 3), ("a", "y", 1), ("b", "x", 2), ("b", "y", 4)]
        result = max_weight_matching(arcs, seed=0)
        assert result.arcs[0] == ("b", "y", 4)
        assert result.total_cost == 7

    def test_weights_selected_in_descending_order(self):
        arcs = random_bipartite_arcs(5, 5, 3, seed=1)
        result = max_weight_matching(arcs, seed=0)
        weights = [c for _, _, c in result.arcs]
        assert weights == sorted(weights, reverse=True)

    def test_is_a_matching(self):
        arcs = random_bipartite_arcs(6, 4, 3, seed=2)
        result = max_weight_matching(arcs, seed=0)
        assert result.is_matching()

    def test_engines_agree(self):
        arcs = random_bipartite_arcs(4, 4, 2, seed=3)
        basic = max_weight_matching(arcs, seed=0, engine="basic")
        rql = max_weight_matching(arcs, seed=0, engine="rql")
        assert basic.total_cost == rql.total_cost

    def test_half_approximation_guarantee(self):
        """Greedy-by-weight is a 1/2-approximation of the maximum-weight
        matching; verify against brute force on small instances."""
        for seed in range(3):
            arcs = random_bipartite_arcs(4, 4, 3, seed=seed)
            greedy = max_weight_matching(arcs, seed=0).total_cost
            best = 0
            for r in range(len(arcs) + 1):
                for subset in itertools.combinations(arcs, r):
                    xs = [x for x, _, _ in subset]
                    ys = [y for _, y, _ in subset]
                    if len(set(xs)) == len(xs) and len(set(ys)) == len(ys):
                        best = max(best, sum(c for _, _, c in subset))
                if r > 4:
                    break
            assert greedy * 2 >= best

    def test_dual_of_min_cost(self):
        arcs = [("a", "x", 1), ("b", "y", 9)]
        assert max_weight_matching(arcs, seed=0).total_cost == 10
        assert min_cost_matching(arcs, seed=0).total_cost == 10  # both maximal
