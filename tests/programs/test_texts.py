"""Sanity tests over the program-text library as a whole."""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_program
from repro.core.stage_analysis import analyze_stages
from repro.datalog.parser import parse_program
from repro.programs import texts

ALL_TEXTS = {
    name: getattr(texts, name)
    for name in texts.__all__
    if name != "DEVIATIONS"
}


class TestAllPrograms:
    @pytest.mark.parametrize("name", sorted(ALL_TEXTS))
    def test_parses_and_is_safe(self, name):
        compiled = compile_program(ALL_TEXTS[name])
        assert len(compiled.program) >= 1

    @pytest.mark.parametrize("name", sorted(ALL_TEXTS))
    def test_prints_and_reparses(self, name):
        program = parse_program(ALL_TEXTS[name])
        reparsed = parse_program(str(program))
        assert _normalize(reparsed) == _normalize(program)

    def test_expected_stage_classification(self):
        expectations = {
            "PRIM": True,
            "SORTING": True,
            "MATCHING": True,
            "MAX_MATCHING": True,
            "HUFFMAN": True,
            "TSP_GREEDY": True,
            "DIJKSTRA": True,
            "ACTIVITY_SELECTION": True,
            "CONVEX_HULL": True,
            "SPANNING_TREE": True,
            "NAIVE_MATCHING": True,
            "PARTITION_MATCHING": True,
            "KRUSKAL": False,  # the paper's extended class
        }
        for name, expected in expectations.items():
            analysis = analyze_stages(parse_program(ALL_TEXTS[name]))
            assert analysis.is_stage_stratified_program is expected, name

    def test_deviations_reference_real_programs(self):
        for name in texts.DEVIATIONS:
            assert hasattr(texts, name), f"DEVIATIONS names unknown program {name}"

    def test_choice_only_examples_have_no_stage_cliques(self):
        for name in ("EXAMPLE1_ASSIGNMENT", "BI_INJECTIVE_BOTTOM"):
            analysis = analyze_stages(parse_program(ALL_TEXTS[name]))
            assert all(r.kind != "stage" for r in analysis.reports), name

    def test_bottom_students_is_plain(self):
        analysis = analyze_stages(parse_program(texts.BOTTOM_STUDENTS))
        assert all(r.kind == "plain" for r in analysis.reports)


def _normalize(program):
    """Program text with anonymous variables renamed by occurrence, so
    two parses of equivalent sources compare equal."""
    import re

    counter = iter(range(10_000))
    return re.sub(r"_anon#\d+|\b_\b", lambda m: f"_w{next(counter)}", str(program))
