"""Cross-cutting property tests over the program library: greedy
invariants that must hold for *every* input, not just the curated ones."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs import (
    greedy_change,
    greedy_knapsack,
    huffman_tree,
    select_activities,
    sequence_jobs,
)
from repro.workloads import random_jobs


class TestKnapsackProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_never_exceeds_capacity(self, seed):
        rng = random.Random(seed)
        items = [(f"i{k}", rng.randint(1, 8), rng.randint(1, 40)) for k in range(7)]
        capacity = rng.randint(1, 30)
        result = greedy_knapsack(items, capacity, seed=0)
        assert result.total_weight <= capacity

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_maximal_no_remaining_item_fits(self, seed):
        rng = random.Random(seed)
        items = [(f"i{k}", rng.randint(1, 8), rng.randint(1, 40)) for k in range(6)]
        capacity = rng.randint(1, 25)
        result = greedy_knapsack(items, capacity, seed=0)
        taken = {name for name, _, _ in result.items}
        slack = capacity - result.total_weight
        for name, weight, _ in items:
            if name not in taken:
                assert weight > slack, f"{name} still fits"


class TestChangeProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500), st.sets(st.integers(1, 50), min_size=1, max_size=5))
    def test_total_plus_remainder_is_amount(self, amount, coins):
        result = greedy_change(amount, coins, seed=0)
        assert result.total + result.remainder == amount
        assert 0 <= result.remainder < min(coins) or not result.coins

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 300), st.sets(st.integers(1, 30), min_size=1, max_size=4))
    def test_coins_handed_largest_first(self, amount, coins):
        result = greedy_change(amount, coins, seed=0)
        handed = list(result.coins)
        assert handed == sorted(handed, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500))
    def test_unit_coin_always_completes(self, amount):
        result = greedy_change(amount, [1, 7, 13], seed=0)
        assert result.remainder == 0


class TestSchedulingProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_selected_activities_pairwise_compatible(self, seed):
        jobs = random_jobs(12, horizon=50, seed=seed)
        selected = select_activities(jobs, seed=0)
        for first, second in zip(selected, selected[1:]):
            assert second.start >= first.finish

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sequencing_respects_deadlines_and_slots(self, seed):
        rng = random.Random(seed)
        jobs = [
            (f"j{k}", rng.randint(1, 50), rng.randint(1, 4)) for k in range(6)
        ]
        scheduled = sequence_jobs(jobs, seed=0)
        slots = [job.slot for job in scheduled]
        assert len(set(slots)) == len(slots)
        deadlines = {name: d for name, _, d in jobs}
        for job in scheduled:
            assert 1 <= job.slot <= deadlines[job.name]


class TestHuffmanProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from("abcdefg"), st.integers(1, 60), min_size=2, max_size=5
        )
    )
    def test_root_weight_is_total_frequency(self, freqs):
        result = huffman_tree(freqs, seed=0)
        assert result.cost == sum(freqs.values())

    @settings(max_examples=10, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from("abcdefg"), st.integers(1, 60), min_size=2, max_size=5
        )
    )
    def test_every_symbol_is_a_leaf(self, freqs):
        result = huffman_tree(freqs, seed=0)
        leaves = set()

        def walk(node):
            if isinstance(node, tuple) and len(node) == 3 and node[0] == "t":
                walk(node[1])
                walk(node[2])
            else:
                leaves.add(node)

        walk(result.tree)
        assert leaves == set(freqs)
