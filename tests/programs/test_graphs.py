"""Tests for the spanning-tree program APIs (Examples 3, 4, 8)."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import kruskal_mst as baseline_kruskal
from repro.programs.graphs import kruskal_mst, prim_mst, spanning_tree
from repro.workloads import random_connected_graph


def _nx_mst_cost(edges):
    graph = nx.Graph()
    for u, v, c in edges:
        graph.add_edge(u, v, weight=c)
    tree = nx.minimum_spanning_tree(graph)
    return sum(d["weight"] for _, _, d in tree.edges(data=True))


class TestSpanningTree:
    def test_spans_all_reachable_vertices(self, diamond_graph):
        result = spanning_tree(diamond_graph, "a", seed=0)
        assert len(result) == 3  # n - 1 edges
        assert result.vertices() == {"a", "b", "c", "d"}

    def test_each_vertex_entered_once(self, diamond_graph):
        result = spanning_tree(diamond_graph, "a", seed=1)
        entered = [v for _, v, _ in result.edges]
        assert len(entered) == len(set(entered))
        assert "a" not in entered

    def test_different_seeds_can_give_different_trees(self, diamond_graph):
        # The RQL engine resolves "retrieve any" deterministically by
        # insertion order; the basic engine draws from the rng, so the
        # non-determinism of Example 3 shows there.
        trees = {
            frozenset(
                (u, v)
                for u, v, _ in spanning_tree(
                    diamond_graph, "a", seed=s, engine="basic"
                ).edges
            )
            for s in range(10)
        }
        assert len(trees) >= 2  # genuinely non-deterministic


class TestPrim:
    def test_unique_mst(self, diamond_graph):
        result = prim_mst(diamond_graph, "a", seed=0)
        assert result.total_cost == 8
        assert {(u, v) for u, v, _ in result.edges} == {
            ("a", "c"),
            ("c", "b"),
            ("b", "d"),
        }

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(4):
            nodes, edges = random_connected_graph(10, extra_edges=12, seed=seed)
            result = prim_mst(edges, nodes[0], seed=seed)
            assert result.total_cost == _nx_mst_cost(edges)

    def test_selection_order_is_prims_order(self, diamond_graph):
        """Each selected edge must connect the current tree to a new
        vertex — Prim's invariant."""
        result = prim_mst(diamond_graph, "a", seed=0)
        in_tree = {"a"}
        for u, v, _ in result.edges:
            assert u in in_tree
            assert v not in in_tree
            in_tree.add(v)

    def test_two_vertex_graph(self):
        result = prim_mst([("a", "b", 7)], "a")
        assert result.total_cost == 7


class TestKruskal:
    def test_unique_mst(self, diamond_graph):
        result = kruskal_mst(diamond_graph, seed=0)
        assert result.total_cost == 8

    def test_matches_baseline_on_random_graphs(self):
        for seed in range(3):
            nodes, edges = random_connected_graph(7, extra_edges=7, seed=seed)
            result = kruskal_mst(edges, nodes, seed=seed)
            _, expected = baseline_kruskal(edges)
            assert result.total_cost == expected

    def test_edges_selected_in_cost_order(self, diamond_graph):
        result = kruskal_mst(diamond_graph, seed=0)
        costs = [c for _, _, c in result.edges]
        assert costs == sorted(costs)

    def test_nodes_inferred_from_edges(self, diamond_graph):
        result = kruskal_mst(diamond_graph)
        assert len(result) == 3


class TestAgreementProperty:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1000))
    def test_prim_equals_kruskal_equals_networkx(self, seed):
        nodes, edges = random_connected_graph(8, extra_edges=6, seed=seed)
        expected = _nx_mst_cost(edges)
        assert prim_mst(edges, nodes[0], seed=seed).total_cost == expected
        assert kruskal_mst(edges, nodes, seed=seed).total_cost == expected
