"""Tests for the gift-wrapping convex hull program."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import convex_hull as baseline_hull
from repro.programs import convex_hull
from repro.workloads import random_points


def _is_ccw(hull):
    n = len(hull)
    for i in range(n):
        o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
        cross = (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
        if cross <= 0:
            return False
    return True


class TestConvexHull:
    def test_triangle(self):
        points = [(0, 0), (4, 0), (2, 3)]
        hull = convex_hull(points, seed=0)
        assert set(hull) == set(points)

    def test_interior_points_excluded(self):
        points = [(0, 0), (10, 0), (10, 10), (0, 10), (5, 5), (3, 7)]
        # perturb to avoid the collinear square edges? square corners are
        # fine: no three of the six points are collinear.
        hull = convex_hull(points, seed=0)
        assert set(hull) == {(0, 0), (10, 0), (10, 10), (0, 10)}

    def test_starts_at_bottom_most_point(self):
        points = random_points(8, span=50, seed=3)
        hull = convex_hull(points, seed=0)
        bottom = min(points, key=lambda p: (p[1], p[0]))
        assert hull[0] == bottom

    def test_hull_is_counterclockwise(self):
        points = random_points(9, span=100, seed=4)
        hull = convex_hull(points, seed=0)
        assert _is_ccw(hull)

    def test_matches_monotone_chain(self):
        for seed in range(4):
            points = random_points(10, span=200, seed=seed)
            hull = convex_hull(points, seed=0)
            assert set(hull) == set(baseline_hull(points))

    def test_engines_agree(self):
        points = random_points(8, span=100, seed=7)
        basic = convex_hull(points, seed=0, engine="basic")
        rql = convex_hull(points, seed=0, engine="rql")
        assert basic == rql

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            convex_hull([(0, 0), (1, 1)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            convex_hull([(0, 0), (1, 1), (0, 0), (2, 0)])

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_input_point_inside_or_on_hull(self, seed):
        points = random_points(8, span=500, seed=seed)
        hull = convex_hull(points, seed=0)
        # A point is inside the ccw hull iff it is left of (or on) every
        # directed hull edge.
        for p in points:
            for i in range(len(hull)):
                a, b = hull[i], hull[(i + 1) % len(hull)]
                cross = (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
                assert cross >= 0
