"""Tests for the greedy knapsack program."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_knapsack as baseline_knapsack
from repro.programs import greedy_knapsack


class TestGreedyKnapsack:
    def test_textbook_instance(self):
        items = [("gold", 10, 60), ("silver", 20, 100), ("bronze", 30, 120)]
        result = greedy_knapsack(items, 50, seed=0)
        assert result.total_value == 160
        assert result.total_weight == 30

    def test_capacity_respected(self):
        items = [(f"i{k}", k + 1, (k + 1) * 2) for k in range(8)]
        result = greedy_knapsack(items, 10, seed=0)
        assert result.total_weight <= 10

    def test_takes_in_ratio_order(self):
        items = [("a", 2, 10), ("b", 4, 10), ("c", 1, 10)]
        result = greedy_knapsack(items, 100, seed=0)
        ratios = [v / w for _, w, v in result.items]
        assert ratios == sorted(ratios, reverse=True)

    def test_item_skipped_when_too_heavy_then_smaller_taken(self):
        items = [("big", 10, 100), ("small", 3, 20)]
        result = greedy_knapsack(items, 5, seed=0)
        assert [name for name, _, _ in result.items] == ["small"]

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            greedy_knapsack([("zero", 0, 5)], 10)

    def test_empty_items(self):
        result = greedy_knapsack([], 10, seed=0)
        assert result.items == ()
        assert result.total_value == 0

    def test_engines_agree(self):
        items = [(f"i{k}", k + 1, (3 * k + 2) % 11 + 1) for k in range(6)]
        basic = greedy_knapsack(items, 12, seed=0, engine="basic")
        rql = greedy_knapsack(items, 12, seed=0, engine="rql")
        assert basic.total_value == rql.total_value

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_procedural_greedy(self, seed):
        rng = random.Random(seed)
        items = [
            (f"i{k}", rng.randint(1, 9), rng.randint(1, 50)) for k in range(6)
        ]
        # Distinct ratios so tie-breaking cannot diverge.
        if len({v / w for _, w, v in items}) != len(items):
            return
        capacity = rng.randint(5, 25)
        declarative = greedy_knapsack(items, capacity, seed=0)
        _, _, value = baseline_knapsack(items, capacity)
        assert declarative.total_value == value
