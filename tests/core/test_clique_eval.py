"""Unit tests for the shared clique-evaluation helpers."""

from __future__ import annotations


from repro.core.clique_eval import (
    body_solutions,
    evaluate_rule_once,
    extrema_filter,
    saturate,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.storage.database import Database


def _db(**relations):
    db = Database()
    for name, facts in relations.items():
        db.assert_all(name, facts)
    return db


class TestExtremaFilter:
    def _solutions(self, rule, db):
        return body_solutions(rule, db)

    def test_global_least(self):
        rule = parse_rule("pick(X, C) <- p(X, C), least(C).")
        db = _db(p=[("a", 3), ("b", 1), ("c", 2)])
        survivors = extrema_filter(self._solutions(rule, db), rule.extrema_goals)
        assert [s["X"] for s in survivors] == ["b"]

    def test_grouped_least_keeps_one_per_group(self):
        rule = parse_rule("pick(X, G, C) <- p(X, G, C), least(C, G).")
        db = _db(p=[("a", "g1", 3), ("b", "g1", 1), ("c", "g2", 2)])
        survivors = extrema_filter(self._solutions(rule, db), rule.extrema_goals)
        assert {s["X"] for s in survivors} == {"b", "c"}

    def test_ties_survive_together(self):
        rule = parse_rule("pick(X, C) <- p(X, C), least(C).")
        db = _db(p=[("a", 1), ("b", 1), ("c", 2)])
        survivors = extrema_filter(self._solutions(rule, db), rule.extrema_goals)
        assert {s["X"] for s in survivors} == {"a", "b"}

    def test_most(self):
        rule = parse_rule("pick(X, C) <- p(X, C), most(C).")
        db = _db(p=[("a", 3), ("b", 9)])
        survivors = extrema_filter(self._solutions(rule, db), rule.extrema_goals)
        assert [s["X"] for s in survivors] == ["b"]

    def test_sequential_extrema(self):
        """Two goals apply in order: max profit, then max slot among the
        max-profit candidates (the job-sequencing device)."""
        rule = parse_rule("pick(X, P, S) <- p(X, P, S), most(P), most(S).")
        db = _db(p=[("a", 9, 1), ("b", 9, 3), ("c", 5, 9)])
        survivors = extrema_filter(self._solutions(rule, db), rule.extrema_goals)
        assert [s["X"] for s in survivors] == ["b"]

    def test_empty_solutions(self):
        rule = parse_rule("pick(X, C) <- p(X, C), least(C).")
        assert extrema_filter([], rule.extrema_goals) == []


class TestEvaluateRuleOnce:
    def test_returns_only_new_facts(self):
        rule = parse_rule("q(X) <- p(X).")
        db = _db(p=[("a",), ("b",)])
        db.assert_fact("q", ("a",))
        new = evaluate_rule_once(rule, db)
        assert new == [("b",)]

    def test_initial_bindings_parameterise(self):
        rule = parse_rule("view(X, I) <- p(X, J), J <= I, most(J, (X, I)).")
        db = _db(p=[("a", 1), ("a", 3), ("a", 5)])
        new = evaluate_rule_once(rule, db, initial={"I": 4})
        assert new == [("a", 4)]


class TestSaturate:
    TC = parse_program(
        "path(X, Y) <- edge(X, Y). path(X, Y) <- path(X, Z), edge(Z, Y)."
    )

    def test_full_saturation(self):
        db = _db(edge=[(1, 2), (2, 3)])
        produced = saturate(self.TC.proper_rules(), {("path", 2)}, db)
        assert set(produced[("path", 2)]) == {(1, 2), (2, 3), (1, 3)}

    def test_seeded_saturation_only_extends(self):
        db = _db(edge=[(1, 2), (2, 3)])
        saturate(self.TC.proper_rules(), {("path", 2)}, db)
        # A new edge arrives; drive only its consequences.
        db.assert_fact("edge", (3, 4))
        produced = saturate(
            self.TC.proper_rules(),
            {("path", 2), ("edge", 2)},
            db,
            seed_deltas={("edge", 2): [(3, 4)]},
        )
        assert set(produced.get(("path", 2), [])) == {(3, 4), (2, 4), (1, 4)}

    def test_empty_seed_is_noop(self):
        db = _db(edge=[(1, 2)])
        produced = saturate(
            self.TC.proper_rules(), {("path", 2)}, db, seed_deltas={}
        )
        assert produced == {}
