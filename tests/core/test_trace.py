"""Tests for the engine trace facility."""

from __future__ import annotations

import random

from repro.core.greedy_engine import GreedyStageEngine
from repro.core.stage_engine import BasicStageEngine
from repro.core.choice_fixpoint import ChoiceFixpointEngine
from repro.datalog.parser import parse_program
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database


def _prim_db(diamond_graph):
    db = Database()
    db.assert_all("g", symmetric_edges(diamond_graph))
    db.assert_fact("source", ("a",))
    return db


class TestTrace:
    def test_disabled_by_default(self, diamond_graph):
        engine = GreedyStageEngine(parse_program(texts.PRIM), rng=random.Random(0))
        engine.run(_prim_db(diamond_graph))
        assert engine.trace == []

    def test_choose_events_match_selected_tree(self, diamond_graph):
        engine = GreedyStageEngine(
            parse_program(texts.PRIM), rng=random.Random(0), record_trace=True
        )
        db = engine.run(_prim_db(diamond_graph))
        chosen = [e for e in engine.trace if e.kind == "choose"]
        assert [e.fact for e in chosen] == sorted(
            (f for f in db.facts("prm", 4) if f[0] != "nil"), key=lambda f: f[3]
        )
        assert [e.stage for e in chosen] == [1, 2, 3]

    def test_retire_events_record_rejections(self, diamond_graph):
        engine = GreedyStageEngine(
            parse_program(texts.PRIM), rng=random.Random(0), record_trace=True
        )
        engine.run(_prim_db(diamond_graph))
        retired = [e for e in engine.trace if e.kind == "retire"]
        # At least the reverse edges into already-settled vertices retire.
        assert retired
        assert all(e.predicate == ("new_g", 4) for e in retired)

    def test_basic_engine_traces_too(self, diamond_graph):
        engine = BasicStageEngine(
            parse_program(texts.PRIM), rng=random.Random(0), record_trace=True
        )
        engine.run(_prim_db(diamond_graph))
        assert [e.kind for e in engine.trace] == ["choose"] * 3

    def test_choice_fixpoint_traces(self, takes_pairs):
        engine = ChoiceFixpointEngine(
            parse_program(texts.EXAMPLE1_ASSIGNMENT),
            rng=random.Random(0),
            record_trace=True,
        )
        db = Database()
        db.assert_all("takes", takes_pairs)
        engine.run(db)
        assert len([e for e in engine.trace if e.kind == "choose"]) == 2
