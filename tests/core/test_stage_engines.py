"""Tests for the Alternating Stage-Choice Fixpoint — basic and (R,Q,L)
modes — on every stage program of the paper."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.baselines import (
    greedy_matching,
    heapsort,
    huffman_tree as baseline_huffman,
    kruskal_mst as baseline_kruskal,
    nearest_neighbor_chain,
    prim_mst as baseline_prim,
)
from repro.core.compiler import solve_program
from repro.core.greedy_engine import GreedyStageEngine
from repro.core.stage_engine import BasicStageEngine
from repro.datalog.parser import parse_program
from repro.errors import StageAnalysisError
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database
from repro.workloads import complete_graph, random_connected_graph

ENGINES = ("basic", "rql")


@pytest.mark.parametrize("engine", ENGINES)
class TestSorting:
    def test_matches_heapsort(self, engine):
        items = [("a", 7), ("b", 1), ("c", 4), ("d", 2), ("e", 9)]
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0, engine=engine)
        rows = sorted((f for f in db.facts("sp", 3) if f[2] > 0), key=lambda f: f[2])
        assert [f[1] for f in rows] == heapsort([c for _, c in items])

    def test_stage_values_are_consecutive(self, engine):
        items = [(f"x{i}", i * 3 % 7) for i in range(7)]
        db = solve_program(texts.SORTING, facts={"p": items}, seed=0, engine=engine)
        stages = sorted(f[2] for f in db.facts("sp", 3))
        assert stages == list(range(len(items) + 1))


@pytest.mark.parametrize("engine", ENGINES)
class TestPrim:
    def test_unique_mst_is_found(self, engine, diamond_graph):
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(diamond_graph), "source": [("a",)]},
            seed=3,
            engine=engine,
        )
        tree = [f for f in db.facts("prm", 4) if f[0] != "nil"]
        assert sum(f[2] for f in tree) == 8
        assert {(f[0], f[1]) for f in tree} == {("a", "c"), ("c", "b"), ("b", "d")}

    def test_matches_procedural_prim_on_random_graphs(self, engine):
        for seed in range(3):
            nodes, edges = random_connected_graph(12, extra_edges=15, seed=seed)
            db = solve_program(
                texts.PRIM,
                facts={"g": symmetric_edges(edges), "source": [(nodes[0],)]},
                seed=seed,
                engine=engine,
            )
            declarative = sum(f[2] for f in db.facts("prm", 4))
            _, procedural = baseline_prim(edges, nodes[0])
            assert declarative == procedural

    def test_root_is_never_reentered(self, engine, diamond_graph):
        db = solve_program(
            texts.PRIM,
            facts={"g": symmetric_edges(diamond_graph), "source": [("a",)]},
            seed=0,
            engine=engine,
        )
        targets = [f[1] for f in db.facts("prm", 4) if f[0] != "nil"]
        assert "a" not in targets


@pytest.mark.parametrize("engine", ENGINES)
class TestMatching:
    def test_is_a_matching_and_maximal(self, engine):
        arcs = [
            ("a", "x", 3),
            ("a", "y", 1),
            ("b", "x", 2),
            ("b", "y", 4),
            ("c", "z", 9),
        ]
        db = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0, engine=engine)
        selected = [f for f in db.facts("matching", 4) if f[3] > 0]
        sources = [f[0] for f in selected]
        targets = [f[1] for f in selected]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)
        # Maximality: no remaining arc has both endpoints free.
        for x, y, _ in arcs:
            assert x in sources or y in targets

    def test_matches_procedural_greedy(self, engine):
        arcs = [
            (f"l{i}", f"r{j}", (i * 7 + j * 13) % 19 + 1)
            for i in range(5)
            for j in range(5)
        ]
        db = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0, engine=engine)
        declarative = sum(f[2] for f in db.facts("matching", 4))
        _, procedural = greedy_matching(arcs)
        assert declarative == procedural


@pytest.mark.parametrize("engine", ENGINES)
class TestHuffman:
    def test_clrs_example_is_optimal(self, engine, clrs_frequencies):
        db = solve_program(
            texts.HUFFMAN,
            facts={"letter": list(clrs_frequencies.items())},
            seed=0,
            engine=engine,
        )
        merges = [f for f in db.facts("h", 3) if f[2] > 0]
        assert len(merges) == len(clrs_frequencies) - 1
        _, optimal_wpl = baseline_huffman(clrs_frequencies)
        assert sum(f[1] for f in merges) == optimal_wpl

    def test_each_subtree_used_once(self, engine):
        freqs = {"a": 5, "b": 5, "c": 5, "d": 5}
        db = solve_program(
            texts.HUFFMAN, facts={"letter": list(freqs.items())}, seed=1, engine=engine
        )
        used = []
        for tree, _, stage in db.facts("h", 3):
            if stage > 0:
                used.append(tree[1])
                used.append(tree[2])
        assert len(used) == len(set(map(repr, used)))


@pytest.mark.parametrize("engine", ENGINES)
class TestTSP:
    def test_hamiltonian_on_complete_graph(self, engine):
        _, edges = complete_graph(7, seed=5)
        arcs = symmetric_edges(edges)
        db = solve_program(texts.TSP_GREEDY, facts={"g": arcs}, seed=0, engine=engine)
        chain = sorted(db.facts("tsp_chain", 4), key=lambda f: f[3])
        assert len(chain) == 6  # n - 1 arcs
        visited = [chain[0][0]] + [f[1] for f in chain]
        assert len(set(visited)) == 7

    def test_matches_nearest_neighbor(self, engine):
        # Directed arcs with pairwise-distinct costs: no ties, so the
        # declarative chain and the procedural one must coincide exactly.
        rng = random.Random(11)
        nodes = [f"n{i}" for i in range(6)]
        costs = rng.sample(range(1, 200), len(nodes) * (len(nodes) - 1))
        arcs = [
            (a, b, costs.pop())
            for a, b in itertools.permutations(nodes, 2)
        ]
        db = solve_program(texts.TSP_GREEDY, facts={"g": arcs}, seed=0, engine=engine)
        declarative = sum(f[2] for f in db.facts("tsp_chain", 4))
        _, procedural = nearest_neighbor_chain(arcs)
        assert declarative == procedural


@pytest.mark.parametrize("engine", ENGINES)
class TestKruskal:
    def test_mst_cost_matches_union_find_kruskal(self, engine, diamond_graph):
        nodes = sorted({u for u, _, _ in diamond_graph} | {v for _, v, _ in diamond_graph})
        db = solve_program(
            texts.KRUSKAL,
            facts={"g": symmetric_edges(diamond_graph), "node": [(n,) for n in nodes]},
            seed=0,
            engine=engine,
        )
        tree = [f for f in db.facts("kruskal", 4) if f[3] > 0]
        _, expected = baseline_kruskal(diamond_graph)
        assert sum(f[2] for f in tree) == expected
        assert len(tree) == len(nodes) - 1

    def test_random_graph(self, engine):
        nodes, edges = random_connected_graph(8, extra_edges=8, seed=4)
        db = solve_program(
            texts.KRUSKAL,
            facts={"g": symmetric_edges(edges), "node": [(n,) for n in nodes]},
            seed=0,
            engine=engine,
        )
        tree = [f for f in db.facts("kruskal", 4) if f[3] > 0]
        _, expected = baseline_kruskal(edges)
        assert sum(f[2] for f in tree) == expected


class TestEngineSpecifics:
    def test_rql_engine_uses_structure_for_prim(self, diamond_graph):
        program = parse_program(texts.PRIM)
        engine = GreedyStageEngine(program, rng=random.Random(0))
        db = Database()
        db.assert_all("g", symmetric_edges(diamond_graph))
        db.assert_fact("source", ("a",))
        engine.run(db)
        assert ("prm", 4) in engine.rql_structures
        structure = engine.rql_structures[("prm", 4)]
        assert structure.stats.retrieved >= 3
        assert not engine.fallbacks

    def test_rql_falls_back_on_nonconforming_shape(self):
        # Two positive goals carry no extremum: no unique candidate atom.
        source = """
        p(nil, nil, 0).
        p(X, Y, I) <- next(I), q(X), r(Y).
        """
        engine = GreedyStageEngine(parse_program(source), rng=random.Random(0))
        db = Database()
        db.assert_all("q", [("a",)])
        db.assert_all("r", [("b",)])
        engine.run(db)
        assert engine.fallbacks
        assert len([f for f in db.facts("p", 3) if f[2] > 0]) == 1

    def test_strict_mode_rejects_kruskal(self):
        program = parse_program(texts.KRUSKAL)
        engine = BasicStageEngine(program, allow_extended=False)
        db = Database()
        db.assert_all("g", [("a", "b", 1), ("b", "a", 1)])
        db.assert_all("node", [("a",), ("b",)])
        with pytest.raises(StageAnalysisError):
            engine.run(db)

    def test_prim_congruence_collapses_frontier(self, diamond_graph):
        """The paper's r-congruence for Prim: one queue entry per target
        vertex, so the queue never exceeds n."""
        program = parse_program(texts.PRIM)
        engine = GreedyStageEngine(program, rng=random.Random(0))
        db = Database()
        db.assert_all("g", symmetric_edges(diamond_graph))
        db.assert_fact("source", ("a",))
        engine.run(db)
        structure = engine.rql_structures[("prm", 4)]
        assert structure.spec.signature_positions == (1,)

    def test_matching_congruence_keeps_arcs(self):
        program = parse_program(texts.MATCHING)
        engine = GreedyStageEngine(program, rng=random.Random(0))
        db = Database()
        db.assert_all("g", [("a", "x", 1), ("b", "y", 2)])
        engine.run(db)
        structure = engine.rql_structures[("matching", 4)]
        assert structure.spec.signature_positions == (0, 1)


class TestMaxStages:
    def test_basic_engine_aborts_on_runaway_program(self):
        """The paper's literal Huffman (guards evaluated at formation
        stage) never terminates: subtrees get reused through the opposite
        child position and merging continues forever.  The safety valve
        turns the divergence into an error — and documents why the
        library's HUFFMAN text moves the guards (texts.DEVIATIONS)."""
        literal_huffman = parse_program(
            """
            h(X, C, 0) <- letter(X, C).
            h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I,
                                least(C, I), choice(X, I), choice(Y, I).
            feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K), X != Y,
                                       not (subtree(X, L1), L1 < I),
                                       not (subtree(Y, L2), L2 < I),
                                       I = max(J, K), C = C1 + C2.
            subtree(X, I) <- h(t(X, _), _, I).
            subtree(X, I) <- h(t(_, X), _, I).
            """
        )
        from repro.errors import EvaluationError

        engine = BasicStageEngine(
            literal_huffman, rng=random.Random(0), max_stages=15
        )
        db = Database()
        db.assert_all("letter", [("a", 5), ("b", 2), ("c", 1)])
        with pytest.raises(EvaluationError, match="max_stages"):
            engine.run(db)

    def test_terminating_program_unaffected_by_generous_limit(self):
        items = [("a", 3), ("b", 1), ("c", 2)]
        program = parse_program(texts.SORTING)
        engine = GreedyStageEngine(program, rng=random.Random(0), max_stages=100)
        db = Database()
        db.assert_all("p", items)
        engine.run(db)
        assert len(db.relation("sp", 3)) == 4

    def test_greedy_engine_enforces_limit(self):
        items = [(f"x{i}", i) for i in range(10)]
        program = parse_program(texts.SORTING)
        from repro.errors import EvaluationError

        engine = GreedyStageEngine(program, rng=random.Random(0), max_stages=3)
        db = Database()
        db.assert_all("p", items)
        with pytest.raises(EvaluationError, match="max_stages"):
            engine.run(db)
