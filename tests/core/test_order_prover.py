"""Direct tests for the ordering-inference engine behind the
stage-stratification check."""

from __future__ import annotations


from repro.core.stage_analysis import _OrderProver
from repro.datalog.atoms import Comparison
from repro.datalog.terms import Const, Struct, Var


def _comp(text_op, left, right):
    return Comparison(text_op, left, right)


class TestDirectEdges:
    def test_strict_less(self):
        p = _OrderProver()
        p.ingest(_comp("<", Var("J"), Var("I")))
        assert p.proves_lt("J", "I")
        assert not p.proves_lt("I", "J")

    def test_non_strict(self):
        p = _OrderProver()
        p.ingest(_comp("<=", Var("J"), Var("I")))
        assert p.proves_le("J", "I")
        assert not p.proves_lt("J", "I")

    def test_greater_reverses(self):
        p = _OrderProver()
        p.ingest(_comp(">", Var("I"), Var("J")))
        assert p.proves_lt("J", "I")

    def test_reflexive_le(self):
        assert _OrderProver().proves_le("X", "X")


class TestArithmetic:
    def test_increment_gives_strict(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I"), Struct("+", (Var("I1"), Const(1)))))
        assert p.proves_lt("I1", "I")

    def test_constant_first_in_sum(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I"), Struct("+", (Const(2), Var("I1")))))
        assert p.proves_lt("I1", "I")

    def test_zero_increment_gives_equality(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I"), Struct("+", (Var("J"), Const(0)))))
        assert p.proves_le("I", "J")
        assert p.proves_le("J", "I")
        assert not p.proves_lt("J", "I")

    def test_decrement(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I1"), Struct("-", (Var("I"), Const(1)))))
        assert p.proves_lt("I1", "I")

    def test_max_bounds_both_arguments(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I"), Struct("max", (Var("J"), Var("K")))))
        assert p.proves_le("J", "I")
        assert p.proves_le("K", "I")
        assert not p.proves_lt("J", "I")

    def test_min_bounds_result(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("I"), Struct("min", (Var("J"), Var("K")))))
        assert p.proves_le("I", "J")
        assert p.proves_le("I", "K")

    def test_variable_equality(self):
        p = _OrderProver()
        p.ingest(_comp("=", Var("A"), Var("B")))
        p.ingest(_comp("<", Var("B"), Var("C")))
        assert p.proves_lt("A", "C")


class TestTransitivity:
    def test_chain_of_le_stays_non_strict(self):
        p = _OrderProver()
        p.ingest(_comp("<=", Var("A"), Var("B")))
        p.ingest(_comp("<=", Var("B"), Var("C")))
        assert p.proves_le("A", "C")
        assert not p.proves_lt("A", "C")

    def test_one_strict_edge_makes_path_strict(self):
        p = _OrderProver()
        p.ingest(_comp("<=", Var("A"), Var("B")))
        p.ingest(_comp("<", Var("B"), Var("C")))
        p.ingest(_comp("<=", Var("C"), Var("D")))
        assert p.proves_lt("A", "D")

    def test_unrelated_variables_prove_nothing(self):
        p = _OrderProver()
        p.ingest(_comp("<", Var("A"), Var("B")))
        assert not p.proves_le("A", "Z")
        assert not p.proves_lt("Z", "B")

    def test_non_variable_comparisons_ignored(self):
        p = _OrderProver()
        p.ingest(_comp("<", Const(1), Var("I")))  # no var-var edge
        assert not p.proves_lt("1", "I")
