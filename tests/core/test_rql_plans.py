"""Regression tests pinning the derived (R, Q, L) plan of every paper
program: candidate atom, cost position, congruence signature and
maximisation mode.  Each of these encodes a soundness argument spelled
out in docs/semantics.md — a change here needs a matching argument."""

from __future__ import annotations

import random


from repro.core.greedy_engine import GreedyStageEngine, RQLPlan
from repro.datalog.parser import parse_program
from repro.programs import texts


def _plan_for(source: str, pred: str, arity: int) -> RQLPlan:
    engine = GreedyStageEngine(parse_program(source), rng=random.Random(0))
    report = engine.analysis.report_for(pred, arity)
    plan = engine._rql_plan(report)
    assert isinstance(plan, RQLPlan), f"unexpected fallback: {plan}"
    return plan


class TestPlanShapes:
    def test_prim_frontier_collapses_per_target(self):
        plan = _plan_for(texts.PRIM, "prm", 4)
        assert plan.candidate_atom.pred == "new_g"
        assert plan.spec.cost_position == 2
        assert plan.spec.signature_positions == (1,)  # Y only
        assert not plan.spec.maximize

    def test_sorting_keeps_every_tuple(self):
        plan = _plan_for(texts.SORTING, "sp", 3)
        assert plan.candidate_atom.pred == "p"
        # No choice FD licenses collapse: cost stays in the signature.
        assert plan.spec.signature_positions == (0, 1)

    def test_matching_keeps_one_entry_per_arc(self):
        plan = _plan_for(texts.MATCHING, "matching", 4)
        assert plan.candidate_atom.pred == "g"
        assert plan.spec.signature_positions == (0, 1)
        assert plan.spec.cost_position == 2

    def test_max_matching_maximises(self):
        plan = _plan_for(texts.MAX_MATCHING, "matching", 4)
        assert plan.spec.maximize

    def test_huffman_candidate_is_feasible(self):
        plan = _plan_for(texts.HUFFMAN, "h", 3)
        assert plan.candidate_atom.pred == "feasible"
        assert plan.spec.cost_position == 1
        # The pair term stays; feasible's stage argument is dropped.
        assert plan.spec.signature_positions == (0,)

    def test_tsp_keeps_stage_in_signature(self):
        """I = J + 1 is stage-selective, so J must distinguish entries."""
        plan = _plan_for(texts.TSP_GREEDY, "tsp_chain", 4)
        assert plan.candidate_atom.pred == "new_g"
        assert 3 in plan.spec.signature_positions  # J kept
        assert 1 in plan.spec.signature_positions  # Y kept

    def test_dijkstra_decrease_key(self):
        plan = _plan_for(texts.DIJKSTRA, "dist", 3)
        assert plan.candidate_atom.pred == "cand"
        assert plan.spec.signature_positions == (0,)  # per-vertex frontier

    def test_kruskal_candidate_is_the_edge_relation(self):
        plan = _plan_for(texts.KRUSKAL, "kruskal", 4)
        assert plan.candidate_atom.pred == "g"
        # No choice goals: cost joins the signature (no collapse).
        assert plan.spec.signature_positions == (0, 1, 2)

    def test_convex_hull_keeps_determined_var_used_in_guard(self):
        plan = _plan_for(texts.CONVEX_HULL, "hull", 3)
        assert plan.candidate_atom.pred == "cand"
        # Q is choice-determined but consulted by the cw_witness guard.
        assert 1 in plan.spec.signature_positions

    def test_knapsack_candidate_carries_the_ratio(self):
        plan = _plan_for(texts.GREEDY_KNAPSACK, "take", 4)
        assert plan.candidate_atom.pred == "weighted"
        assert plan.spec.cost_position == 3
        assert plan.spec.maximize


class TestPlanRejections:
    def _fallback_reason(self, source: str, pred: str, arity: int) -> str:
        engine = GreedyStageEngine(parse_program(source), rng=random.Random(0))
        report = engine.analysis.report_for(pred, arity)
        plan = engine._rql_plan(report)
        assert isinstance(plan, str)
        return plan

    def test_job_sequencing_two_extrema(self):
        reason = self._fallback_reason(texts.JOB_SEQUENCING, "seq", 4)
        assert "extrema" in reason

    def test_coin_change_head_not_from_candidate(self):
        reason = self._fallback_reason(texts.COIN_CHANGE, "change", 3)
        assert "one-fact-one-firing" in reason
