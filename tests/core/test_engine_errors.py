"""Error-path tests for the engines: programs outside the supported
classes must be rejected with precise exceptions, never mis-evaluated."""

from __future__ import annotations

import pytest

from repro.core.choice_fixpoint import ChoiceFixpointEngine
from repro.core.compiler import solve_program
from repro.core.greedy_engine import GreedyStageEngine
from repro.core.stage_engine import BasicStageEngine
from repro.datalog.parser import parse_program
from repro.errors import (
    EvaluationError,
    StageAnalysisError,
    StratificationError,
)
from repro.storage.database import Database


class TestUnsupportedPrograms:
    def test_unstratified_negation_rejected_by_all_engines(self):
        win = "win(X) <- move(X, Y), not win(Y)."
        facts = {"move": [(1, 2), (2, 3)]}
        for engine in ("rql", "basic", "choice"):
            with pytest.raises(StratificationError):
                solve_program(win, facts=facts, engine=engine)

    def test_non_premappable_extrema_through_recursion_rejected(self):
        # Premappability (docs/api.md, "Extrema pushdown") needs the cost
        # chain to reach the head untouched; the C1 < 10 guard consumes
        # C1, so pruning dominated facts could change the model — every
        # engine must refuse under both policies.
        source = """
        short(X, Y, C) <- g(X, Y, C).
        short(X, Z, C) <- short(X, Y, C1), g(Y, Z, C2), C1 < 10,
                          C = C1 + C2, least(C, (X, Z)).
        """
        for engine in ("rql", "basic", "choice", "naive", "seminaive"):
            for extrema in ("pushdown", "post"):
                with pytest.raises(StratificationError):
                    solve_program(
                        source,
                        facts={"g": [("a", "b", 1)]},
                        engine=engine,
                        extrema=extrema,
                    )

    def test_premappable_extrema_through_recursion_accepted(self):
        # The same clique without the guard is premappable: the group
        # (X, Z) covers the head key and C flows monotonically, so the
        # engines evaluate it (all-pairs shortest paths) instead of
        # rejecting.
        source = """
        short(X, Y, C) <- g(X, Y, C).
        short(X, Z, C) <- short(X, Y, C1), g(Y, Z, C2),
                          C = C1 + C2, least(C, (X, Z)).
        """
        facts = {"g": [("a", "b", 1), ("b", "c", 2), ("a", "c", 9)]}
        db = solve_program(source, facts=facts)
        assert sorted(db.facts("short", 3)) == [
            ("a", "b", 1),
            ("a", "c", 3),
            ("b", "c", 2),
        ]

    def test_stage_clique_with_two_stage_arguments_rejected(self):
        # The next variable lands in two head positions: the predicate
        # accumulates two stage arguments and must be refused rather than
        # silently mis-run.
        program = parse_program(
            """
            p(nil, 0, 0).
            p(X, I, I) <- next(I), q(X).
            """
        )
        engine = BasicStageEngine(program)
        db = Database()
        db.assert_all("q", [("a",)])
        with pytest.raises(StageAnalysisError):
            engine.run(db)

    def test_choice_engine_refuses_next(self):
        with pytest.raises(EvaluationError):
            ChoiceFixpointEngine(parse_program("p(X, I) <- next(I), q(X)."))


class TestEngineStateIsolation:
    def test_each_run_gets_fresh_memos(self):
        """Running the same engine class twice must not leak chosen state
        between runs (compile once, run many)."""
        from repro.core.compiler import compile_program
        from repro.programs import texts

        compiled = compile_program(texts.EXAMPLE1_ASSIGNMENT, engine="choice")
        takes = [("s1", "c1"), ("s2", "c1")]
        first = compiled.run(facts={"takes": takes}, seed=0)
        second = compiled.run(facts={"takes": takes}, seed=0)
        assert first == second
        assert len(first.relation("a_st", 2)) == 1

    def test_database_reuse_accumulates(self):
        """Evaluating into a pre-populated database keeps prior facts."""
        db = solve_program("p(1).")
        solve_program("q(X) <- p(X).", facts=db)
        assert (1,) in db.relation("q", 1)


class TestFallbackTransparency:
    def test_fallback_reason_is_reported(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X), r(X).
        """
        program = parse_program(source)
        engine = GreedyStageEngine(program)
        db = Database()
        db.assert_all("q", [("a",)])
        db.assert_all("r", [("a",)])
        engine.run(db)
        (reason,) = engine.fallbacks.values()
        assert "positive goal" in reason

    def test_multiple_next_rules_fall_back(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X).
        p(X, I) <- next(I), r(X).
        """
        program = parse_program(source)
        engine = GreedyStageEngine(program)
        db = Database()
        db.assert_all("q", [("a",)])
        db.assert_all("r", [("b",)])
        engine.run(db)
        assert any("next rules" in reason for reason in engine.fallbacks.values())
        derived = {f[0] for f in db.facts("p", 2)}
        assert derived == {"nil", "a", "b"}
