"""Tests for the compile/run front door."""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_program, solve_program
from repro.errors import EvaluationError, ParseError, SafetyError
from repro.programs import texts
from repro.storage.database import Database


class TestCompile:
    def test_compile_from_text(self):
        compiled = compile_program(texts.SORTING)
        assert compiled.is_stage_stratified
        assert compiled.engine == "rql"

    def test_compile_from_program(self):
        from repro.datalog.parser import parse_program

        compiled = compile_program(parse_program(texts.PRIM))
        assert compiled.is_stage_stratified

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            compile_program("p(a")

    def test_safety_error_propagates(self):
        with pytest.raises(SafetyError):
            compile_program("p(X, Y) <- q(X).")

    def test_unknown_engine_rejected(self):
        with pytest.raises(EvaluationError):
            compile_program(texts.SORTING, engine="warp")
        with pytest.raises(EvaluationError):
            compile_program(texts.SORTING).run(engine="warp")


class TestRun:
    def test_facts_from_mapping(self):
        db = solve_program(texts.SORTING, facts={"p": [("a", 2), ("b", 1)]}, seed=0)
        assert len(db.relation("sp", 3)) == 3

    def test_facts_from_database_mutated_in_place(self):
        db = Database()
        db.assert_all("p", [("a", 2)])
        out = solve_program(texts.SORTING, facts=db, seed=0)
        assert out is db
        assert len(db.relation("sp", 3)) == 2

    def test_no_facts_runs_on_program_facts_alone(self):
        db = solve_program("p(1). q(X) <- p(X).")
        assert (1,) in db.relation("q", 1)

    def test_engine_override_at_run_time(self):
        compiled = compile_program(texts.SORTING)
        basic = compiled.run(facts={"p": [("a", 1), ("b", 2)]}, seed=0, engine="basic")
        rql = compiled.run(facts={"p": [("a", 1), ("b", 2)]}, seed=0, engine="rql")
        assert basic == rql

    def test_last_engine_exposed(self):
        compiled = compile_program(texts.SORTING)
        compiled.run(facts={"p": [("a", 1)]}, seed=0)
        assert compiled.last_engine is not None
        assert compiled.last_engine.stats.gamma_firings == 1

    def test_seed_reproducibility(self, takes_pairs):
        runs = {
            frozenset(
                solve_program(
                    texts.EXAMPLE1_ASSIGNMENT,
                    facts={"takes": takes_pairs},
                    seed=5,
                    engine="choice",
                ).facts("a_st", 2)
            )
            for _ in range(3)
        }
        assert len(runs) == 1

    def test_plain_engines_for_plain_programs(self):
        text = "path(X, Y) <- edge(X, Y). path(X, Y) <- path(X, Z), edge(Z, Y)."
        for engine in ("naive", "seminaive", "basic", "rql"):
            db = solve_program(text, facts={"edge": [(1, 2), (2, 3)]}, engine=engine)
            assert len(db.relation("path", 2)) == 3
