"""Tests for the next/choice/extrema rewriting pipeline (Sections 2–3)."""

from __future__ import annotations

import pytest

from repro.core.rewriting import (
    CHOSEN_PREFIX,
    DIFFCHOICE_PREFIX,
    expand_next,
    rewrite_choice,
    rewrite_extrema,
    rewrite_program,
)
from repro.datalog.atoms import Comparison
from repro.datalog.naive import NaiveEngine
from repro.datalog.parser import parse_program
from repro.errors import RewriteError
from repro.storage.database import Database


class TestNextExpansion:
    def test_macro_shape(self):
        program = parse_program("p(X, I) <- next(I), q(X).")
        expanded = expand_next(program).rules[0]
        assert not expanded.next_goals
        # body: q(X), p(_, I1), I = I1 + 1, choice(I, X), choice(X, I)
        assert [a.pred for a in expanded.positive] == ["q", "p"]
        assert len(expanded.choice_goals) == 2
        (assign,) = expanded.comparisons
        assert assign.op == "="
        assert assign.right.functor == "+"

    def test_choice_directions(self):
        program = parse_program("p(X, Y, I) <- next(I), q(X, Y).")
        expanded = expand_next(program).rules[0]
        first, second = expanded.choice_goals
        # choice(I, W) then choice(W, I)
        assert len(first.left) == 1 and len(first.right) == 2
        assert len(second.left) == 2 and len(second.right) == 1

    def test_stage_var_must_be_in_head(self):
        program = parse_program("p(X) <- next(I), q(X).")
        with pytest.raises(RewriteError):
            expand_next(program)

    def test_two_next_goals_rejected(self):
        program = parse_program("p(I, J) <- next(I), next(J), q(I, J).")
        with pytest.raises(RewriteError):
            expand_next(program)

    def test_non_next_rules_untouched(self):
        program = parse_program("p(X) <- q(X).")
        assert expand_next(program).rules == program.rules


class TestChoiceRewriting:
    def test_example2_structure(self):
        """The paper's Example 2: one top rule, guarded chosen, completion
        rule, and one diffChoice rule per FD."""
        program = parse_program(
            "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs)."
        )
        rewritten = rewrite_choice(program)
        heads = [r.head.pred for r in rewritten.rules]
        assert heads.count("a_st") == 1
        assert heads.count(f"{CHOSEN_PREFIX}1") == 2  # guarded + completion
        assert heads.count(f"{DIFFCHOICE_PREFIX}1") == 2

    def test_guarded_chosen_rule_has_negation(self):
        program = parse_program("p(X, Y) <- q(X, Y), choice(X, Y).")
        rewritten = rewrite_choice(program)
        guarded = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and r.negative
        ]
        assert len(guarded) == 1
        assert guarded[0].negative[0].atom.pred.startswith(DIFFCHOICE_PREFIX)

    def test_extrema_migrate_to_chosen_rule(self):
        program = parse_program(
            "p(X, C) <- q(X, C), least(C), choice(X, C)."
        )
        rewritten = rewrite_choice(program)
        top = [r for r in rewritten.rules if r.head.pred == "p"][0]
        assert not top.extrema_goals  # eliminated from the top rule
        guarded = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and r.negative
        ][0]
        assert guarded.extrema_goals

    def test_diffchoice_renames_all_non_left_control_vars(self):
        program = parse_program(
            "p(X, Y, C) <- q(X, Y, C), choice(Y, X)."
        )
        rewritten = rewrite_choice(program)
        diff = [r for r in rewritten.rules if r.head.pred.startswith(DIFFCHOICE_PREFIX)]
        (rule,) = diff
        witness = [a for a in rule.positive if a.pred.startswith(CHOSEN_PREFIX)][0]
        head_names = {v.name for v in rule.head.variables()}
        witness_names = {v.name for v in witness.variables()}
        # Only the FD's left side (Y) is shared with the head.
        assert head_names & witness_names == {"Y"}

    def test_rules_without_choice_untouched(self):
        program = parse_program("p(X) <- q(X).")
        assert rewrite_choice(program).rules == program.rules

    def test_next_must_be_expanded_first(self):
        program = parse_program("p(X, I) <- next(I), q(X), choice(X, I).")
        with pytest.raises(RewriteError):
            rewrite_choice(program)


class TestExtremaRewriting:
    def test_least_becomes_negated_conjunction(self):
        program = parse_program(
            "bttm(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs)."
        )
        rewritten = rewrite_extrema(program).rules[0]
        assert not rewritten.extrema_goals
        (conj,) = rewritten.negated_conjunctions
        inner_comp = [l for l in conj.literals if isinstance(l, Comparison)]
        assert any(c.op == "<" for c in inner_comp)

    def test_group_vars_are_shared(self):
        program = parse_program("p(C, G) <- q(C, G), least(C, G).")
        rewritten = rewrite_extrema(program).rules[0]
        (conj,) = rewritten.negated_conjunctions
        inner_names = {v.name for v in conj.variables()}
        assert "G" in inner_names  # shared
        assert "C" not in inner_names or True  # C is renamed in the copy
        inner_atom = [l for l in conj.literals if not isinstance(l, Comparison)][0]
        assert inner_atom.args[1].name == "G"
        assert inner_atom.args[0].name != "C"

    def test_most_uses_greater_than(self):
        program = parse_program("p(C) <- q(C), most(C).")
        rewritten = rewrite_extrema(program).rules[0]
        (conj,) = rewritten.negated_conjunctions
        comp = [l for l in conj.literals if isinstance(l, Comparison)][0]
        assert comp.op == ">"

    def test_rewritten_extrema_evaluates_like_the_engine(self):
        """The rewritten (pure negation) program is stratified and must
        compute the same answer through the plain naive engine as the
        extrema engine computes natively — the paper's Section 2 example."""
        source = "bttm_st(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs)."
        takes = [
            ("andy", "engl", 4),
            ("mark", "engl", 2),
            ("ann", "math", 3),
            ("mark", "math", 2),
        ]
        rewritten = rewrite_extrema(parse_program(source))
        db = Database()
        db.assert_all("takes", takes)
        NaiveEngine(rewritten).run(db)
        assert set(db.relation("bttm_st", 3)) == {
            ("mark", "engl", 2),
            ("mark", "math", 2),
        }


class TestFullPipeline:
    def test_prim_rewrites_to_pure_negative_program(self):
        program = parse_program(
            """
            prm(nil, a, 0, 0).
            prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
            new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
            """
        )
        rewritten = rewrite_program(program)
        for rule in rewritten.rules:
            assert not rule.has_meta_goals

    def test_least_group_sharing_in_next_rule(self):
        """In the rewritten Prim next rule the least copy must share the
        stage variable I (group = (I)) — the paper's stratification hinges
        on exactly this."""
        program = parse_program(
            """
            prm(nil, a, 0, 0).
            prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
            new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
            """
        )
        rewritten = rewrite_program(program)
        guarded = [
            r
            for r in rewritten.rules
            if r.head.pred.startswith(CHOSEN_PREFIX) and r.negated_conjunctions
        ]
        (rule,) = guarded
        (conj,) = rule.negated_conjunctions
        inner_names = {v.name for v in conj.variables()}
        assert "I" in inner_names
