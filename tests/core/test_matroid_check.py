"""Tests for the least-propagation certificates — the implemented slice
of the paper's Section 7 open problem."""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.core.matroid_check import certify_greedy_exactness, push_least
from repro.programs import texts
from repro.semantics.optimize import model_objective, optimal_choice_models

MATCH_OBJECTIVE = model_objective("matching", 4, 2)

SINGLE_FD_NAIVE = """
matching(nil, nil, 0, 0).
matching(X, Y, C, I) <- next(I), g(X, Y, C), choice(X, Y).
"""


class TestCertificates:
    def test_sorting_is_free(self):
        (certificate,) = certify_greedy_exactness(texts.SORTING)
        assert certificate.verdict == "free"
        assert certificate.is_exact

    def test_single_fd_is_partition(self):
        (certificate,) = certify_greedy_exactness(SINGLE_FD_NAIVE)
        assert certificate.verdict == "partition"
        assert certificate.is_exact
        assert "Rado-Edmonds" in certificate.reason

    def test_two_fds_are_intersection(self):
        (certificate,) = certify_greedy_exactness(texts.NAIVE_MATCHING)
        assert certificate.verdict == "intersection"
        assert not certificate.is_exact

    def test_prim_is_partition_on_targets(self):
        certificates = certify_greedy_exactness(texts.PRIM)
        (certificate,) = certificates
        assert certificate.verdict == "partition"

    def test_cost_candidates_listed(self):
        (certificate,) = certify_greedy_exactness(SINGLE_FD_NAIVE)
        assert "C" in certificate.cost_candidates


class TestPushLeast:
    def test_pushed_program_has_the_extremum(self):
        program = push_least(SINGLE_FD_NAIVE, "C")
        next_rules = [r for r in program.rules if r.is_next_rule]
        assert len(next_rules) == 1
        assert next_rules[0].extrema_goals

    def test_pushed_greedy_attains_the_specification_optimum(self):
        """The compiled greedy equals the enumerate-then-select optimum —
        the transformation the paper performs by hand."""
        arcs = [("a", "x", 4), ("a", "y", 1), ("b", "x", 2), ("b", "z", 7)]
        best, _ = optimal_choice_models(
            SINGLE_FD_NAIVE, facts={"g": arcs}, objective=MATCH_OBJECTIVE
        )
        compiled = push_least(SINGLE_FD_NAIVE, "C")
        db = solve_program(compiled, facts={"g": arcs}, seed=0)
        greedy = sum(f[2] for f in db.facts("matching", 4) if f[3] > 0)
        assert greedy == best

    def test_intersection_rules_left_untouched_by_default(self):
        with pytest.raises(ValueError, match="eligible"):
            push_least(texts.NAIVE_MATCHING, "C")

    def test_force_push_reproduces_example7(self):
        """Forcing the push onto the two-FD naive program yields exactly
        Example 7's greedy (heuristic, not exact) — the paper's own
        compilation."""
        program = push_least(texts.NAIVE_MATCHING, "C", require_certificate=False)
        arcs = [("a", "x", 3), ("a", "y", 1), ("b", "x", 2), ("b", "y", 4)]
        forced = solve_program(program, facts={"g": arcs}, seed=0)
        reference = solve_program(texts.MATCHING, facts={"g": arcs}, seed=0)
        assert set(forced.facts("matching", 4)) == set(reference.facts("matching", 4))

    def test_unknown_cost_var_rejected(self):
        with pytest.raises(ValueError):
            push_least(SINGLE_FD_NAIVE, "Z")

    def test_existing_extremum_rejected(self):
        with pytest.raises(ValueError, match="already"):
            push_least(texts.MATCHING, "C", require_certificate=False)

    def test_most_direction(self):
        program = push_least(SINGLE_FD_NAIVE, "C", minimize=False)
        arcs = [("a", "x", 1), ("a", "y", 9)]
        db = solve_program(program, facts={"g": arcs}, seed=0)
        picked = [f for f in db.facts("matching", 4) if f[3] > 0]
        assert picked[0][2] == 9
