"""Tests for online (incremental) greedy evaluation."""

from __future__ import annotations

import random

import pytest

from repro.core.greedy_engine import GreedyStageEngine
from repro.datalog.parser import parse_program
from repro.errors import EvaluationError
from repro.programs import texts
from repro.programs._run import symmetric_edges
from repro.storage.database import Database


def _prim_engine():
    return GreedyStageEngine(parse_program(texts.PRIM), rng=random.Random(0))


class TestExtend:
    def test_new_vertex_joins_the_tree(self):
        engine = _prim_engine()
        db = Database()
        db.assert_all("g", symmetric_edges([("a", "b", 4), ("a", "c", 1), ("b", "c", 2)]))
        db.assert_fact("source", ("a",))
        engine.run(db)
        assert len([f for f in db.facts("prm", 4) if f[0] != "nil"]) == 2
        engine.extend({"g": symmetric_edges([("c", "d", 7), ("b", "d", 5)])})
        tree = [f for f in db.facts("prm", 4) if f[0] != "nil"]
        assert len(tree) == 3
        # The cheaper of the two arriving edges into d was selected.
        assert ("b", "d", 5, 3) in tree

    def test_earlier_selections_are_never_revisited(self):
        """Online semantics: a cheaper edge arriving late does not replace
        an already-selected one (unlike a fresh run)."""
        engine = _prim_engine()
        db = Database()
        db.assert_all("g", symmetric_edges([("a", "b", 10)]))
        db.assert_fact("source", ("a",))
        engine.run(db)
        engine.extend({"g": symmetric_edges([("a", "b", 1)])})
        tree = [f for f in db.facts("prm", 4) if f[0] != "nil"]
        assert tree == [("a", "b", 10, 1)]

    def test_online_sort_appends_at_later_stages(self):
        engine = GreedyStageEngine(parse_program(texts.SORTING), rng=random.Random(0))
        db = Database()
        db.assert_all("p", [("a", 5), ("b", 2)])
        engine.run(db)
        engine.extend({"p": [("c", 1)]})
        rows = sorted(db.facts("sp", 3), key=lambda f: f[2])
        assert [f[0] for f in rows] == ["nil", "b", "a", "c"]

    def test_multiple_extensions_accumulate(self):
        engine = GreedyStageEngine(parse_program(texts.SORTING), rng=random.Random(0))
        db = Database()
        db.assert_all("p", [("a", 1)])
        engine.run(db)
        engine.extend({"p": [("b", 2)]})
        engine.extend({"p": [("c", 3)]})
        assert len(db.relation("sp", 3)) == 4

    def test_duplicate_facts_are_ignored(self):
        engine = GreedyStageEngine(parse_program(texts.SORTING), rng=random.Random(0))
        db = Database()
        db.assert_all("p", [("a", 1)])
        engine.run(db)
        engine.extend({"p": [("a", 1)]})
        assert len(db.relation("sp", 3)) == 2  # exit + one selection

    def test_extend_without_run_rejected(self):
        engine = _prim_engine()
        with pytest.raises(EvaluationError, match="prior run"):
            engine.extend({"g": []})

    def test_extend_with_fallback_clique_rejected(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X), r(X).
        """
        engine = GreedyStageEngine(parse_program(source), rng=random.Random(0))
        db = Database()
        db.assert_all("q", [("a",)])
        db.assert_all("r", [("a",)])
        engine.run(db)
        with pytest.raises(EvaluationError, match="RQL mode"):
            engine.extend({"q": [("b",)]})

    def test_extended_matching_stays_a_matching(self):
        engine = GreedyStageEngine(parse_program(texts.MATCHING), rng=random.Random(0))
        db = Database()
        db.assert_all("g", [("a", "x", 3), ("b", "y", 1)])
        engine.run(db)
        engine.extend({"g": [("a", "z", 1), ("c", "x", 2), ("c", "w", 9)]})
        selected = [f for f in db.facts("matching", 4) if f[3] > 0]
        sources = [f[0] for f in selected]
        targets = [f[1] for f in selected]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)
        # a and x were already matched; only the fresh pair (c, w) fits.
        assert ("c", "w", 9, 3) in selected
