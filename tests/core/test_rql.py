"""Tests for the (R, Q, L) storage structure and r-congruence (Section 6)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rql import CongruenceSpec, RQLStructure


def prim_spec():
    """new_g(X, Y, C, J): signature = (Y,), cost at 2, stage at 3."""
    return CongruenceSpec(arity=4, signature_positions=(1,), cost_position=2)


def matching_spec():
    """g(X, Y, C): signature = (X, Y), cost at 2."""
    return CongruenceSpec(arity=3, signature_positions=(0, 1), cost_position=2)


class TestInsertion:
    def test_plain_insert_and_pop(self):
        d = RQLStructure(matching_spec())
        d.insert(("a", "x", 5))
        d.insert(("b", "y", 2))
        assert d.pop() == ("b", "y", 2)
        assert d.pop() == ("a", "x", 5)
        assert d.pop() is None

    def test_congruent_cheaper_fact_replaces(self):
        d = RQLStructure(prim_spec())
        d.insert(("a", "y", 9, 0))
        d.insert(("b", "y", 3, 1))  # congruent (same Y), cheaper
        assert len(d) == 1
        assert d.pop() == ("b", "y", 3, 1)
        assert d.stats.replaced == 1

    def test_congruent_costlier_fact_is_redundant(self):
        d = RQLStructure(prim_spec())
        d.insert(("a", "y", 3, 0))
        d.insert(("b", "y", 9, 1))
        assert len(d) == 1
        assert d.pop() == ("a", "y", 3, 0)
        assert d.stats.redundant == 1

    def test_equal_cost_keeps_first(self):
        d = RQLStructure(prim_spec())
        d.insert(("a", "y", 3, 0))
        d.insert(("b", "y", 3, 1))
        assert d.pop() == ("a", "y", 3, 0)

    def test_fact_congruent_to_used_goes_to_r(self):
        d = RQLStructure(prim_spec())
        d.insert(("a", "y", 3, 0))
        fact = d.pop()
        d.mark_used(fact)
        d.insert(("b", "y", 1, 2))  # cheaper, but y already used
        assert len(d) == 0
        assert d.stats.redundant == 1

    def test_duplicate_fact_ignored(self):
        d = RQLStructure(prim_spec())
        assert d.insert(("a", "y", 3, 0)) is True
        assert d.insert(("a", "y", 3, 0)) is False
        assert len(d) == 1

    def test_distinct_signatures_coexist(self):
        d = RQLStructure(matching_spec())
        d.insert(("a", "x", 3))
        d.insert(("a", "y", 1))
        assert len(d) == 2


class TestRetrieval:
    def test_pop_skips_used_signatures(self):
        d = RQLStructure(prim_spec())
        d.insert(("a", "y", 1, 0))
        d.insert(("a", "z", 2, 0))
        first = d.pop()
        d.mark_used(first)
        # A congruent fact slipped in before mark_used would be skipped.
        d.insert(("b", "z", 5, 1))
        second = d.pop()
        assert second[1] == "z"
        assert d.pop() == ("b", "z", 5, 1) or d.pop() is None

    def test_mark_redundant_counts(self):
        d = RQLStructure(matching_spec())
        d.insert(("a", "x", 1))
        fact = d.pop()
        d.mark_redundant(fact)
        assert d.stats.rejected_at_retrieval == 1

    def test_fifo_when_no_cost(self):
        spec = CongruenceSpec(arity=2, signature_positions=(0, 1), cost_position=None)
        d = RQLStructure(spec)
        d.insert(("b", 1))
        d.insert(("a", 2))
        assert d.pop() == ("b", 1)

    def test_most_mode_pops_greatest(self):
        spec = CongruenceSpec(
            arity=2, signature_positions=(0,), cost_position=1, maximize=True
        )
        d = RQLStructure(spec)
        d.insert(("a", 1))
        d.insert(("b", 9))
        d.insert(("c", 5))
        assert d.pop() == ("b", 9)

    def test_most_mode_replacement_keeps_greater(self):
        spec = CongruenceSpec(
            arity=2, signature_positions=(0,), cost_position=1, maximize=True
        )
        d = RQLStructure(spec)
        d.insert(("a", 1))
        d.insert(("a", 9))
        assert d.pop() == ("a", 9)

    def test_keep_redundant_retains_facts(self):
        d = RQLStructure(prim_spec(), keep_redundant=True)
        d.insert(("a", "y", 1, 0))
        d.insert(("b", "y", 9, 1))
        assert d.redundant_facts == [("b", "y", 9, 1)]


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 100)),
            max_size=150,
        )
    )
    def test_queue_holds_cheapest_per_signature(self, facts):
        """Invariant: after any insertion sequence, popping drains exactly
        the per-signature minima, in global cost order."""
        d = RQLStructure(matching_spec())
        best = {}
        for i, (x, y, c) in enumerate(facts):
            fact = (f"x{x}", f"y{y}", (c, i))  # distinct costs via tiebreak
            d.insert(fact)
            key = (fact[0], fact[1])
            if key not in best or fact[2] < best[key][2]:
                best[key] = fact
        popped = []
        while True:
            fact = d.pop()
            if fact is None:
                break
            popped.append(fact)
        assert sorted(popped) == sorted(best.values())
        costs = [f[2] for f in popped]
        assert costs == sorted(costs)
