"""Tests for the Choice Fixpoint procedure (Section 2)."""

from __future__ import annotations

import random

import pytest

from repro.core.choice_fixpoint import ChoiceFixpointEngine
from repro.datalog.parser import parse_program
from repro.errors import EvaluationError, StratificationError
from repro.programs import texts
from repro.storage.database import Database


def _run(source, rng=None, **facts):
    db = Database()
    for name, rows in facts.items():
        db.assert_all(name, rows)
    engine = ChoiceFixpointEngine(parse_program(source), rng=rng)
    engine.run(db)
    return db, engine


class TestExample1:
    def test_output_is_a_maximal_fd_consistent_assignment(self, takes_pairs):
        db, _ = _run(texts.EXAMPLE1_ASSIGNMENT, rng=random.Random(0), takes=takes_pairs)
        assignment = set(db.facts("a_st", 2))
        students = [s for s, _ in assignment]
        courses = [c for _, c in assignment]
        assert len(set(students)) == len(students)
        assert len(set(courses)) == len(courses)
        # Maximality: both courses must be assigned (a student exists for each).
        assert len(assignment) == 2

    def test_all_three_paper_models_reachable(self, takes_pairs):
        models = set()
        for seed in range(30):
            db, _ = _run(
                texts.EXAMPLE1_ASSIGNMENT, rng=random.Random(seed), takes=takes_pairs
            )
            models.add(frozenset(db.facts("a_st", 2)))
        expected = {
            frozenset({("andy", "engl"), ("ann", "math")}),
            frozenset({("andy", "engl"), ("mark", "math")}),
            frozenset({("mark", "engl"), ("ann", "math")}),
        }
        assert models == expected

    def test_seeded_runs_are_reproducible(self, takes_pairs):
        a, _ = _run(texts.EXAMPLE1_ASSIGNMENT, rng=random.Random(7), takes=takes_pairs)
        b, _ = _run(texts.EXAMPLE1_ASSIGNMENT, rng=random.Random(7), takes=takes_pairs)
        assert a == b

    def test_gamma_firings_counted(self, takes_pairs):
        _, engine = _run(
            texts.EXAMPLE1_ASSIGNMENT, rng=random.Random(0), takes=takes_pairs
        )
        assert engine.stats.gamma_firings == 2


class TestMixedChoiceAndLeast:
    def test_bi_injective_bottom_pairs(self, takes_grades):
        """Section 2: exactly the two one-fact models M1, M2."""
        models = set()
        for seed in range(20):
            db, _ = _run(
                texts.BI_INJECTIVE_BOTTOM, rng=random.Random(seed), takes=takes_grades
            )
            models.add(frozenset(db.facts("bi_st_c", 3)))
        assert models == {
            frozenset({("mark", "engl", 2)}),
            frozenset({("mark", "math", 2)}),
        }


class TestRecursiveChoice:
    def test_recursive_spanning_tree_without_next(self):
        """Example 3's first formulation: recursion through choice."""
        source = """
        st(nil, a, 0).
        st(X, Y, C) <- st(_, X, _), g(X, Y, C), choice(Y, (X, C)).
        """
        edges = []
        for u, v, c in [("a", "b", 1), ("b", "c", 2), ("a", "c", 3)]:
            edges += [(u, v, c), (v, u, c)]
        db, _ = _run(source, rng=random.Random(1), g=edges)
        tree = [f for f in db.facts("st", 3) if f[0] != "nil"]
        # Spanning: every vertex entered exactly once.
        entered = [y for _, y, _ in tree]
        assert sorted(entered) == ["b", "c"]


class TestPlainAndStratifiedParts:
    def test_extrema_in_lower_stratum(self):
        source = """
        cheapest(X, C) <- g(X, C), least(C).
        pick(X) <- cheapest(X, C), choice((), X).
        """
        db, _ = _run(source, rng=random.Random(0), g=[("a", 3), ("b", 1), ("c", 1)])
        picks = set(db.facts("pick", 1))
        assert len(picks) == 1
        assert picks <= {("b",), ("c",)}

    def test_plain_recursion_still_works(self):
        source = """
        path(X, Y) <- edge(X, Y).
        path(X, Y) <- path(X, Z), edge(Z, Y).
        """
        db, _ = _run(source, edge=[(1, 2), (2, 3)])
        assert (1, 3) in db.relation("path", 2)


class TestRejections:
    def test_next_goals_rejected(self):
        with pytest.raises(EvaluationError):
            ChoiceFixpointEngine(parse_program("p(X, I) <- next(I), q(X)."))

    def test_extrema_through_recursion_rejected(self):
        source = """
        p(X, C) <- q(X, C).
        p(X, C) <- p(X, D), r(D, C), least(C).
        """
        with pytest.raises(StratificationError):
            _run(source, q=[("a", 1)], r=[(1, 2)])
