"""Extrema pushdown: premappability analysis, the best-value lattice, and
the policy equivalence pushdown == post on every engine.

The optimisation (docs/api.md, "Extrema pushdown") follows the
premappability line of Zaniolo et al. (see PAPERS.md): when a recursive
clique's ``least``/``most`` goal satisfies the monotone-cost-flow
conditions, the extremum commutes with the fixpoint and dominated facts
can be pruned the moment a better one appears.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import ENGINES, solve_program
from repro.core.extrema_lattice import BestTable, PremapSpec, dominated_facts
from repro.core.rewriting import premappable_extrema
from repro.datalog.parser import parse_program
from repro.datalog.plans import EXTREMA_POLICIES
from repro.datalog.seminaive import SeminaiveEngine
from repro.errors import EvaluationError, StratificationError
from repro.obs.tracer import Tracer
from repro.programs import (
    bottleneck_distances,
    shortest_distances,
    texts,
    widest_capacities,
)


def _clique_of(source):
    """The (rules, predicates) pair of the program's recursive clique."""
    from repro.datalog.dependency import DependencyGraph

    program = parse_program(source)
    for group in DependencyGraph(program).evaluation_order():
        for clique in group:
            if clique.is_recursive:
                return clique.rules, clique.predicates
    raise AssertionError("no recursive clique in program")


SHORTEST = """
dist(S, 0) <- source(S).
dist(Y, D) <- dist(X, DX), g(X, Y, C), D = DX + C, least(D, Y).
"""

EDGES = [
    ("a", "b", 1),
    ("a", "c", 4),
    ("b", "c", 1),
    ("b", "d", 5),
    ("c", "d", 2),
    ("a", "d", 9),
]
FACTS = {"g": EDGES, "source": [("a",)]}
SHORTEST_MODEL = [("a", 0), ("b", 1), ("c", 2), ("d", 4)]


class TestPremappability:
    def test_shortest_path_spec(self):
        specs = premappable_extrema(*_clique_of(SHORTEST))
        assert specs is not None
        spec = specs[("dist", 2)]
        assert spec.cost_position == 1
        assert spec.group_positions == (0,)
        assert spec.direction == "least"

    def test_most_with_min_combiner(self):
        specs = premappable_extrema(*_clique_of(texts.WIDEST_PATH))
        assert specs is not None
        assert specs[("wide", 2)].direction == "most"

    def test_tuple_group_covers_two_positions(self):
        specs = premappable_extrema(
            *_clique_of(
                """
                short(X, Y, C) <- g(X, Y, C).
                short(X, Z, C) <- short(X, Y, C1), g(Y, Z, C2),
                                  C = C1 + C2, least(C, (X, Z)).
                """
            )
        )
        assert specs is not None
        assert specs[("short", 3)].group_positions == (0, 1)

    @pytest.mark.parametrize(
        "body",
        [
            # A guard consuming the chained cost breaks premappability:
            # pruning a dominated fact could disable a derivation that
            # only the dominated cost satisfied.
            "dist(X, DX), g(X, Y, C), DX < 10, D = DX + C, least(D, Y)",
            # Non-monotone combiners.
            "dist(X, DX), g(X, Y, C), D = DX * C, least(D, Y)",
            "dist(X, DX), g(X, Y, C), D = C - DX, least(D, Y)",
            # The recursive cost variable may not land in the head group.
            "dist(X, DX), g(X, Y, C), D = DX + C, least(D, DX)",
            # Cost must be a head variable, not an expression input only.
            "dist(X, DX), g(X, Y, C), D = DX + C, least(DX, Y)",
        ],
    )
    def test_rejected_bodies(self, body):
        rules, predicates = _clique_of(
            f"dist(S, 0) <- source(S).\ndist(Y, D) <- {body}."
        )
        assert premappable_extrema(rules, predicates) is None

    def test_shared_cost_variable_between_clique_atoms_rejected(self):
        # Joining two clique atoms on their cost positions makes the cost
        # an equality filter; pruning one side can starve the join.
        rules, predicates = _clique_of(
            """
            p(X, C) <- e(X, C).
            p(Y, D) <- p(X, C), p(Z, C), g(X, Y, W), D = C + W, least(D, Y).
            """
        )
        assert premappable_extrema(rules, predicates) is None

    def test_rule_without_extrema_in_clique_rejected(self):
        rules, predicates = _clique_of(
            """
            dist(S, 0) <- source(S).
            dist(Y, D) <- dist(X, DX), g(X, Y, C), D = DX + C, least(D, Y).
            dist(Y, D) <- dist(X, D), h(X, Y).
            """
        )
        assert premappable_extrema(rules, predicates) is None

    def test_subtraction_monotone_in_left_argument_accepted(self):
        specs = premappable_extrema(
            *_clique_of(
                """
                p(S, 100) <- source(S).
                p(Y, D) <- p(X, DX), g(X, Y, C), D = DX - C, most(D, Y).
                """
            )
        )
        assert specs is not None


class TestBestTable:
    SPEC = PremapSpec(("d", 2), cost_position=1, group_positions=(0,), direction="least")

    def _table(self):
        return BestTable({("d", 2): self.SPEC})

    def test_insert_displace_reject(self):
        table = self._table()
        assert table.observe(("d", 2), ("a", 5)) == (True, [])
        accepted, displaced = table.observe(("d", 2), ("a", 3))
        assert accepted and displaced == [("a", 5)]
        assert table.observe(("d", 2), ("a", 7)) == (False, [])

    def test_ties_kept(self):
        table = self._table()
        table.observe(("d", 2), ("a", 3))
        accepted, displaced = table.observe(("d", 2), ("a", 3))
        assert accepted and displaced == []

    def test_groups_independent(self):
        table = self._table()
        table.observe(("d", 2), ("a", 3))
        assert table.observe(("d", 2), ("b", 9)) == (True, [])
        assert table.best_cost(("d", 2), ("a",)) != table.best_cost(("d", 2), ("b",))

    def test_dominated_facts_matches_table(self):
        facts = [("a", 5), ("a", 3), ("a", 3), ("b", 2)]
        assert dominated_facts(facts, self.SPEC) == [("a", 5)]


class TestPolicyEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("extrema", EXTREMA_POLICIES)
    def test_shortest_path_model(self, engine, extrema):
        db = solve_program(SHORTEST, facts=FACTS, engine=engine, extrema=extrema)
        assert sorted(db.facts("dist", 2)) == SHORTEST_MODEL

    def test_pushdown_prunes_and_traces(self):
        program = parse_program(
            SHORTEST + "".join(f"g({u}, {v}, {c}).\n" for u, v, c in EDGES)
            + "source(a).\n"
        )
        tracer = Tracer(enabled=True)
        engine = SeminaiveEngine(program, tracer=tracer, extrema="pushdown")
        engine.run()
        assert engine.stats.facts_pruned_extrema > 0
        (event,) = tracer.events("extrema-pushdown")
        assert event.attrs["policy"] == "pushdown"
        assert event.attrs["predicates"] == ["dist/2"]
        assert event.attrs["pruned"] == engine.stats.facts_pruned_extrema

    def test_pushdown_terminates_on_cyclic_sum_graph(self):
        # A cost-positive cycle has an infinite un-pruned fixpoint; the
        # pushdown policy converges because every group's best can only
        # improve finitely often.
        cyclic = {"g": EDGES + [("d", "a", 1)], "source": [("a",)]}
        db = solve_program(SHORTEST, facts=cyclic, engine="seminaive")
        assert sorted(db.facts("dist", 2)) == SHORTEST_MODEL

    def test_non_recursive_extrema_now_supported_by_plain_engines(self):
        # The naive/seminaive constructors previously refused every
        # least/most; stratified (non-recursive) extrema evaluate there
        # now, matching the stage engines.
        facts = {"takes": [("ann", "db", 3), ("bob", "db", 2), ("cal", "os", 2)]}
        expected = sorted(
            solve_program(texts.BOTTOM_STUDENTS, facts=facts, engine="rql").facts(
                "bttm_st", 3
            )
        )
        for engine in ("naive", "seminaive"):
            db = solve_program(texts.BOTTOM_STUDENTS, facts=facts, engine=engine)
            assert sorted(db.facts("bttm_st", 3)) == expected

    def test_choice_still_refused_by_plain_engines(self):
        with pytest.raises(EvaluationError):
            SeminaiveEngine(parse_program("p(X) <- q(X), choice((), X)."))

    def test_unknown_policy_rejected(self):
        with pytest.raises(EvaluationError):
            solve_program(SHORTEST, facts=FACTS, extrema="sideways")

    def test_non_premappable_raises_under_both_policies(self):
        source = """
        p(X, C) <- e(X, C).
        p(Y, D) <- p(X, DX), g(X, Y, C), D = DX * C, least(D, Y).
        """
        for extrema in EXTREMA_POLICIES:
            with pytest.raises(StratificationError):
                solve_program(
                    source,
                    facts={"e": [("a", 2)], "g": [("a", "b", 3)]},
                    engine="seminaive",
                    extrema=extrema,
                )


class TestWrappers:
    def test_shortest_distances(self):
        assert shortest_distances(EDGES, "a", directed=True) == dict(SHORTEST_MODEL)

    def test_bottleneck_distances(self):
        got = bottleneck_distances(EDGES, "a", directed=True)
        assert got == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_widest_capacities(self):
        got = widest_capacities(EDGES, "a", directed=True)
        # cap0 = max edge + 1 = 10 at the source; d's widest route is the
        # direct a -> d arc of capacity 9.
        assert got == {"a": 10, "b": 1, "c": 4, "d": 9}

    def test_wrappers_policy_invariant(self):
        for extrema in EXTREMA_POLICIES:
            assert shortest_distances(
                EDGES, "a", directed=True, extrema=extrema
            ) == dict(SHORTEST_MODEL)
