"""Tests for the Section 4 compile-time analysis: stage predicates,
stage cliques and stage-stratification — including the paper's own
positive and negative examples."""

from __future__ import annotations

import pytest

from repro.core.stage_analysis import analyze_stages, infer_stage_positions
from repro.datalog.parser import parse_program
from repro.programs import texts


def _report_for(analysis, name, arity):
    report = analysis.report_for(name, arity)
    assert report is not None, f"no clique containing {name}/{arity}"
    return report


class TestStagePositionInference:
    def test_next_seeds_head_position(self):
        program = parse_program("sp(X, C, I) <- next(I), p(X, C).")
        positions = infer_stage_positions(program)
        assert positions[("sp", 3)] == {2}

    def test_propagation_through_flat_rule(self):
        program = parse_program(texts.PRIM)
        positions = infer_stage_positions(program)
        assert positions[("prm", 4)] == {3}
        assert positions[("new_g", 4)] == {3}

    def test_propagation_through_arithmetic(self):
        program = parse_program(texts.HUFFMAN)
        positions = infer_stage_positions(program)
        assert positions[("h", 3)] == {2}
        assert positions[("feasible", 3)] == {2}  # via I = max(J, K)
        assert positions[("subtree", 2)] == {1}

    def test_propagation_through_order_comparison(self):
        program = parse_program(texts.KRUSKAL)
        positions = infer_stage_positions(program)
        assert positions[("last_comp", 3)] == {2}  # via I1 <= I
        assert positions[("comp", 3)] == {2}
        assert positions[("kruskal", 4)] == {3}

    def test_cross_clique_stage_values_do_not_pollute(self):
        """Kruskal's component ids are comp0 stages used as data; comp
        must not acquire a second stage argument."""
        program = parse_program(texts.KRUSKAL)
        positions = infer_stage_positions(program)
        assert positions[("comp0", 2)] == {1}
        assert positions[("comp", 3)] == {2}  # not {1, 2}


class TestPaperPrograms:
    @pytest.mark.parametrize(
        "source,pred",
        [
            (texts.PRIM, "prm"),
            (texts.SORTING, "sp"),
            (texts.MATCHING, "matching"),
            (texts.HUFFMAN, "h"),
            (texts.DIJKSTRA, "dist"),
            (texts.ACTIVITY_SELECTION, "sched"),
        ],
    )
    def test_recognised_as_stage_stratified(self, source, pred):
        analysis = analyze_stages(parse_program(source))
        assert analysis.is_stage_stratified_program
        report = analysis.report_for(pred, None or _arity(source, pred))
        assert report.kind == "stage"
        assert report.is_stage_clique
        assert report.is_stage_stratified

    def test_spanning_tree_is_a_stage_clique(self):
        analysis = analyze_stages(parse_program(texts.SPANNING_TREE))
        report = _report_for(analysis, "st", 4)
        assert report.kind == "stage"
        assert report.is_stage_clique

    def test_tsp_clique_contains_exit_choice_rule(self):
        analysis = analyze_stages(parse_program(texts.TSP_GREEDY))
        report = _report_for(analysis, "tsp_chain", 4)
        assert report.kind == "stage"
        assert len(report.exit_choice_rules) == 1
        assert len(report.next_rules) == 1

    def test_kruskal_is_stage_clique_but_not_strictly_stratified(self):
        """The paper: 'Although the negation in flat rules are not strictly
        stratified, the stable model of this program gives a minimum
        spanning tree' — the analysis must flag exactly that."""
        analysis = analyze_stages(parse_program(texts.KRUSKAL))
        report = _report_for(analysis, "kruskal", 4)
        assert report.kind == "stage"
        assert report.is_stage_clique
        assert not report.is_stage_stratified
        assert any("last_comp" in v for v in report.violations)

    def test_example1_is_choice_clique(self):
        analysis = analyze_stages(parse_program(texts.EXAMPLE1_ASSIGNMENT))
        report = _report_for(analysis, "a_st", 2)
        assert report.kind == "choice"

    def test_plain_program(self):
        analysis = analyze_stages(parse_program("p(X) <- q(X)."))
        assert all(r.kind == "plain" for r in analysis.reports)


class TestNegativeExamples:
    def test_least_without_stage_group_loses_stratification(self):
        """The paper's explicit remark: replacing least(C, I) by least(C, _)
        in Prim loses stage-stratification."""
        source = """
        prm(nil, a, 0, 0).
        prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C), choice(Y, X).
        new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
        """
        analysis = analyze_stages(parse_program(source))
        report = _report_for(analysis, "prm", 4)
        assert report.is_stage_clique
        assert not report.is_stage_stratified

    def test_unconstrained_body_stage_fails(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X, J), least(J, I).
        q(X, J) <- p(X, J).
        """
        # q's stage J is not constrained below I in the next rule.
        analysis = analyze_stages(parse_program(source))
        report = _report_for(analysis, "p", 2)
        assert not report.is_stage_stratified

    def test_mixed_next_and_flat_rules_for_one_predicate(self):
        source = """
        p(nil, 0).
        p(X, I) <- next(I), q(X, J), J < I.
        p(X, I) <- p(X, J), r(X), I = J + 1, q(X, I).
        q(X, J) <- p(X, J).
        """
        analysis = analyze_stages(parse_program(source))
        report = _report_for(analysis, "p", 2)
        assert not report.is_stage_clique
        assert any("mixes" in v for v in report.violations)


def _arity(source: str, pred: str) -> int:
    program = parse_program(source)
    for rule in program.rules:
        if rule.head.pred == pred:
            return rule.head.arity
    raise AssertionError(f"{pred} not in program")
