"""The README's Python snippets must actually run.

Documentation that silently rots is worse than none: every fenced
``python`` block in README.md is executed in a shared namespace, in
order.
"""

from __future__ import annotations

import re
from pathlib import Path


README = Path(__file__).parent.parent / "README.md"


def _python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_has_snippets():
    blocks = _python_blocks(README.read_text())
    assert len(blocks) >= 3


def test_readme_snippets_execute():
    namespace: dict = {}
    for index, block in enumerate(_python_blocks(README.read_text())):
        try:
            exec(compile(block, f"README.md block {index}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"README.md python block {index} failed: {exc}\n{block}"
            ) from exc


def test_readme_mentions_every_experiment():
    text = README.read_text()
    assert "E1-E14" in text or "E1–E14" in text


def test_design_and_experiments_docs_exist():
    root = README.parent
    for name in ("DESIGN.md", "EXPERIMENTS.md"):
        assert (root / name).exists(), name
    for name in ("language.md", "semantics.md", "tutorial.md", "paper_map.md", "api.md"):
        assert (root / "docs" / name).exists(), name


def test_shipped_cli_programs_run(tmp_path):
    """The .dl files under examples/programs work through the CLI."""
    import io

    from repro.cli import main

    base = README.parent / "examples" / "programs"
    out = io.StringIO()
    code = main(
        [
            str(base / "prim.dl"),
            "--facts",
            f"g={base / 'campus_edges.csv'}",
            "--facts",
            f"source={base / 'campus_source.csv'}",
            "--query",
            "prm(X, Y, C, I)",
            "--verify",
        ],
        out=out,
    )
    assert code == 0
    assert "% stable model: True" in out.getvalue()

    out = io.StringIO()
    code = main(
        [
            str(base / "sorting.dl"),
            "--facts",
            f"p={base / 'items.csv'}",
            "--query",
            "sp(X, C, I)",
        ],
        out=out,
    )
    assert code == 0
    assert "sp(mars, 1, 1)." in out.getvalue()
