"""Shared fixtures: the paper's running examples as reusable data,
plus a process-hygiene guard for the fault-injection hook slots."""

from __future__ import annotations

import pytest

from repro.programs import texts


@pytest.fixture(autouse=True)
def _no_fault_hook_leaks():
    """Fail the test that leaks a fault-injection hook.

    Every injection surface (relations, heaps, engines, the WAL, the
    incremental repair phases, shard workers) shares the hook slots in
    :func:`repro.robust.faults._hook_targets`.  A test that installs an
    injector with :func:`~repro.robust.faults.install` (process-lifetime,
    no restore) instead of :func:`~repro.robust.faults.inject` /
    :func:`~repro.robust.faults.installed` poisons every later test in
    the process; this guard pins the blame on the leaker."""
    from repro.robust import faults

    yield
    leaked = [
        f"{getattr(holder, '__name__', type(holder).__name__)}.{attr}"
        for holder, attr in faults._hook_targets()
        if getattr(holder, attr) is not None
    ]
    assert not leaked, (
        f"fault hooks leaked by this test: {', '.join(leaked)}; use "
        "faults.inject(...) or faults.installed(...) instead of "
        "faults.install(...)"
    )


@pytest.fixture
def takes_pairs():
    """Example 1's enrolment facts (student, course)."""
    return [
        ("andy", "engl"),
        ("mark", "engl"),
        ("ann", "math"),
        ("mark", "math"),
    ]


@pytest.fixture
def takes_grades():
    """Section 2's graded enrolment facts (student, course, grade)."""
    return [
        ("andy", "engl", 4),
        ("mark", "engl", 2),
        ("ann", "math", 3),
        ("mark", "math", 2),
    ]


@pytest.fixture
def diamond_graph():
    """A 4-vertex graph with unique MST {a-c:1, b-c:2, b-d:5} (cost 8)."""
    return [
        ("a", "b", 4),
        ("a", "c", 1),
        ("b", "c", 2),
        ("b", "d", 5),
        ("c", "d", 8),
    ]


@pytest.fixture
def clrs_frequencies():
    """The classic CLRS Huffman example; optimal WPL = 224."""
    return {"a": 45, "b": 13, "c": 12, "d": 16, "e": 9, "f": 5}


@pytest.fixture
def prim_text():
    return texts.PRIM


@pytest.fixture
def sorting_text():
    return texts.SORTING
