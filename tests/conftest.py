"""Shared fixtures: the paper's running examples as reusable data."""

from __future__ import annotations

import pytest

from repro.programs import texts


@pytest.fixture
def takes_pairs():
    """Example 1's enrolment facts (student, course)."""
    return [
        ("andy", "engl"),
        ("mark", "engl"),
        ("ann", "math"),
        ("mark", "math"),
    ]


@pytest.fixture
def takes_grades():
    """Section 2's graded enrolment facts (student, course, grade)."""
    return [
        ("andy", "engl", 4),
        ("mark", "engl", 2),
        ("ann", "math", 3),
        ("mark", "math", 2),
    ]


@pytest.fixture
def diamond_graph():
    """A 4-vertex graph with unique MST {a-c:1, b-c:2, b-d:5} (cost 8)."""
    return [
        ("a", "b", 4),
        ("a", "c", 1),
        ("b", "c", 2),
        ("b", "d", 5),
        ("c", "d", 8),
    ]


@pytest.fixture
def clrs_frequencies():
    """The classic CLRS Huffman example; optimal WPL = 224."""
    return {"a": 45, "b": 13, "c": 12, "d": 16, "e": 9, "f": 5}


@pytest.fixture
def prim_text():
    return texts.PRIM


@pytest.fixture
def sorting_text():
    return texts.SORTING
