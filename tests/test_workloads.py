"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.storage.unionfind import UnionFind
from repro.workloads import (
    complete_graph,
    grid_graph,
    random_bipartite_arcs,
    random_connected_graph,
    random_costed_relation,
    random_frequency_table,
    random_jobs,
    random_takes,
)


class TestGraphGenerators:
    def test_connected_graph_is_connected(self):
        nodes, edges = random_connected_graph(25, extra_edges=5, seed=3)
        uf = UnionFind(nodes)
        for u, v, _ in edges:
            uf.union(u, v)
        assert uf.component_count == 1

    def test_edge_counts(self):
        _, edges = random_connected_graph(10, extra_edges=7, seed=0)
        assert len(edges) == 9 + 7

    def test_distinct_costs_by_default(self):
        _, edges = random_connected_graph(20, extra_edges=20, seed=1)
        costs = [c for _, _, c in edges]
        assert len(set(costs)) == len(costs)

    def test_complete_graph_size(self):
        nodes, edges = complete_graph(6, seed=0)
        assert len(nodes) == 6
        assert len(edges) == 15

    def test_grid_graph_size(self):
        nodes, edges = grid_graph(3, 4, seed=0)
        assert len(nodes) == 12
        assert len(edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_bipartite_arcs_direction(self):
        arcs = random_bipartite_arcs(3, 4, 2, seed=0)
        assert len(arcs) == 6
        assert all(u.startswith("l") and v.startswith("r") for u, v, _ in arcs)

    def test_generators_are_deterministic(self):
        assert random_connected_graph(8, seed=5) == random_connected_graph(8, seed=5)
        assert complete_graph(5, seed=5) == complete_graph(5, seed=5)

    def test_single_vertex(self):
        nodes, edges = random_connected_graph(1, seed=0)
        assert nodes == ["v0"]
        assert edges == []

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError):
            random_connected_graph(0)


class TestRelationGenerators:
    def test_costed_relation_distinct(self):
        rows = random_costed_relation(30, seed=2)
        costs = [c for _, c in rows]
        assert len(set(costs)) == 30

    def test_frequency_table_is_skewed_positive(self):
        rows = random_frequency_table(20, seed=0)
        assert all(c >= 1 for _, c in rows)
        assert rows[0][1] > rows[-1][1]

    def test_takes_shape(self):
        rows = random_takes(5, 4, 2, seed=0)
        assert len(rows) == 10
        assert all(0 <= g <= 10 for _, _, g in rows)

    def test_jobs_are_well_formed(self):
        for name, start, finish in random_jobs(40, seed=1):
            assert start < finish
