"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.programs import texts

PRIM = texts.PRIM

EDGES_CSV = "a,b,4\nb,a,4\na,c,1\nc,a,1\nb,c,2\nc,b,2\nb,d,5\nd,b,5\n"


@pytest.fixture
def prim_files(tmp_path):
    program = tmp_path / "prim.dl"
    program.write_text(PRIM)
    edges = tmp_path / "edges.csv"
    edges.write_text(EDGES_CSV)
    source = tmp_path / "source.csv"
    source.write_text("a\n")
    return program, edges, source


def _run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRun:
    def test_query_output(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--seed",
            "0",
            "--query",
            "prm(X, Y, C, I)",
        )
        assert code == 0
        assert "prm(a, c, 1, 1)." in output
        assert "prm(b, d, 5, 3)." in output

    def test_default_prints_all_idb(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program), "--facts", f"g={edges}", "--facts", f"source={source}"
        )
        assert code == 0
        assert "prm(" in output
        assert "new_g(" in output

    def test_query_with_constants_filters(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--query",
            "prm(c, Y, C, I)",
        )
        assert code == 0
        lines = [l for l in output.splitlines() if l.startswith("prm(")]
        assert lines == ["prm(c, b, 2, 2)."]

    def test_verify_flag(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--verify",
        )
        assert code == 0
        assert "% stable model: True" in output

    def test_trace_flag(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--trace",
        )
        assert code == 0
        assert "% trace:" in output
        assert "choose prm(" in output

    def test_engine_selection(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--engine",
            "basic",
            "--query",
            "prm(X, Y, C, I)",
        )
        assert code == 0
        assert "prm(a, c, 1, 1)." in output


class TestAnalyze:
    def test_analysis_report(self, prim_files):
        program, _, _ = prim_files
        code, output = _run(str(program), "--analyze")
        assert code == 0
        assert "stage-stratified program: True" in output
        assert "kind: stage" in output

    def test_analysis_reports_violations(self, tmp_path):
        program = tmp_path / "bad.dl"
        program.write_text(
            """
            prm(nil, a, 0, 0).
            prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C), choice(Y, X).
            new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
            """
        )
        code, output = _run(str(program), "--analyze")
        assert code == 0
        assert "stage-stratified program: False" in output
        assert "violation:" in output


class TestErrors:
    def test_missing_program_file(self):
        code, _ = _run("/nonexistent/program.dl")
        assert code == 1

    def test_parse_error(self, tmp_path):
        bad = tmp_path / "bad.dl"
        bad.write_text("p(a")
        code, _ = _run(str(bad))
        assert code == 1

    def test_bad_facts_spec(self, prim_files):
        program, _, _ = prim_files
        code, _ = _run(str(program), "--facts", "nonsense")
        assert code == 1

    def test_csv_cells_typed(self, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("total(C) <- item(_, C), most(C).")
        data = tmp_path / "items.csv"
        data.write_text("widget,2.5\ngadget,7\n")
        code, output = _run(str(program), "--facts", f"item={data}")
        assert code == 0
        assert "total(7)." in output


class TestTraceSubcommand:
    def test_prints_span_tree_and_metrics(self, prim_files):
        program, edges, source = prim_files
        code, output = _run(
            "trace",
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--seed",
            "0",
        )
        assert code == 0
        assert "clique" in output
        assert "gamma-step" in output
        assert "saturation-round" in output
        assert "engine/gamma_firings" in output
        assert "phase/gamma" in output

    def test_writes_jsonl_and_metrics_files(self, prim_files, tmp_path):
        import json

        program, edges, source = prim_files
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run.json"
        code, _ = _run(
            "trace",
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--seed",
            "0",
            "--no-tree",
            "--jsonl",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        )
        assert code == 0
        rows = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert any(row["name"] == "gamma-step" for row in rows)
        metrics = json.loads(metrics_path.read_text())
        assert "gamma" in metrics["phase_seconds"]

    def test_error_exit_code(self):
        code, _ = _run("trace", "/nonexistent/program.dl")
        assert code == 1


class TestTraceFlagsOnMainCommand:
    def test_trace_out_and_metrics_out(self, prim_files, tmp_path):
        import json

        program, edges, source = prim_files
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run.json"
        code, output = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--seed",
            "0",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        )
        assert code == 0
        assert "prm(" in output  # facts still printed
        assert trace_path.exists() and metrics_path.exists()
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["engine/gamma_firings"] > 0

    def test_metrics_out_without_tracing(self, prim_files, tmp_path):
        # --metrics-out alone keeps tracing disabled but still exports
        # the always-on counters and phase timers.
        program, edges, source = prim_files
        import json

        metrics_path = tmp_path / "run.json"
        code, _ = _run(
            str(program),
            "--facts",
            f"g={edges}",
            "--facts",
            f"source={source}",
            "--metrics-out",
            str(metrics_path),
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert "gamma" in metrics["phase_seconds"]
