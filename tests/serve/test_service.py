"""QueryService unit tests: submission, outcomes, degradation, resume,
retries, cancellation and introspection.

The concurrency-heavy properties (zero lost requests under load and
faults) live in ``test_soak.py``; admission/breaker behaviour under
scripted overload lives in ``test_admission.py``.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import solve_program
from repro.errors import ReproError
from repro.robust.faults import FaultInjector, FaultPlan, inject
from repro.robust.governor import Budget
from repro.robust.retry import RetryPolicy
from repro.serve import (
    CANCELLED,
    DEGRADED,
    OK,
    FAILED,
    SHED,
    QueryRequest,
    QueryService,
    ServiceClosed,
)

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(14)]}

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

PATH_FACTS = {"edge": [(1, 2), (2, 3), (3, 4), (4, 5)]}

DIVERGENT = "nat(0). nat(Y) <- nat(X), Y = X + 1."

BROKEN = "p(X) :- q(X, ."


@pytest.fixture()
def service():
    svc = QueryService(workers=2, reset_timeout=60.0)
    yield svc
    svc.close()


class TestOutcomes:
    def test_ok_result_matches_the_direct_pipeline(self, service):
        response = service.evaluate(
            QueryRequest(program=SORTING, facts=SORT_FACTS, seed=3), timeout=30
        )
        assert response.status == OK
        assert response.ok
        direct = solve_program(
            SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=3
        )
        assert response.database.as_dict() == direct.as_dict()

    @pytest.mark.parametrize("engine", ["rql", "basic", "naive", "seminaive"])
    def test_every_engine_family_is_servable(self, service, engine):
        program, facts = (
            (SORTING, SORT_FACTS) if engine in ("rql", "basic") else (PATH, PATH_FACTS)
        )
        response = service.evaluate(
            QueryRequest(program=program, facts=facts, engine=engine, seed=0),
            timeout=30,
        )
        assert response.status == OK

    def test_failed_request_raises_the_typed_engine_error(self, service):
        with pytest.raises(ReproError):
            service.evaluate(QueryRequest(program=BROKEN), timeout=30)

    def test_failed_submit_after_close_is_rejected(self):
        svc = QueryService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(QueryRequest(program=PATH, facts=PATH_FACTS))

    def test_response_carries_latency_and_metrics(self, service):
        response = service.evaluate(
            QueryRequest(program=PATH, facts=PATH_FACTS, seed=0), timeout=30
        )
        assert response.latency_s > 0
        assert response.queue_s >= 0
        assert "counters" in response.metrics


class TestGracefulDegradation:
    def test_budget_exhaustion_returns_a_degraded_response(self, service):
        response = service.evaluate(
            QueryRequest(
                program=SORTING,
                facts=SORT_FACTS,
                seed=3,
                budget=Budget(max_gamma_steps=4),
            ),
            timeout=30,
        )
        assert response.status == DEGRADED
        assert response.ok  # degraded is a usable outcome
        assert response.database is not None
        assert response.partial is not None
        assert response.checkpoint is not None

    def test_degraded_response_resumes_to_the_exact_model(self, service):
        degraded = service.evaluate(
            QueryRequest(
                program=SORTING,
                facts=SORT_FACTS,
                seed=5,
                budget=Budget(max_gamma_steps=5),
            ),
            timeout=30,
        )
        assert degraded.status == DEGRADED
        resumed = service.evaluate(
            QueryRequest(program=SORTING, seed=5, resume_from=degraded.checkpoint),
            timeout=30,
        )
        assert resumed.status == OK
        direct = solve_program(
            SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=5
        )
        assert resumed.database.as_dict() == direct.as_dict()

    def test_degradation_does_not_trip_the_breaker(self):
        svc = QueryService(workers=1, failure_threshold=2, reset_timeout=60.0)
        try:
            for _ in range(4):
                response = svc.evaluate(
                    QueryRequest(
                        program=DIVERGENT,
                        engine="seminaive",
                        budget=Budget(max_rounds=3),
                    ),
                    timeout=30,
                )
                assert response.status == DEGRADED
            # Degraded outcomes are successes to the breaker.
            assert all(
                b["state"] == "closed" for b in svc.stats()["breakers"].values()
            )
        finally:
            svc.close()


class TestRetries:
    def test_transient_fault_is_retried_and_heals_to_the_same_model(self):
        injector = FaultInjector([FaultPlan("engine.saturate", "error", nth=1)])
        svc = QueryService(
            workers=1, retry=RetryPolicy(max_attempts=3, base_delay=0.001)
        )
        try:
            with inject(injector):
                response = svc.evaluate(
                    QueryRequest(program=PATH, facts=PATH_FACTS, seed=0), timeout=30
                )
            assert response.status == OK
            assert response.retries == 1
            assert response.attempts == 2
            direct = solve_program(
                PATH, {k: list(v) for k, v in PATH_FACTS.items()}, seed=0
            )
            assert response.database.as_dict() == direct.as_dict()
        finally:
            svc.close()

    def test_exhausted_retries_fail_with_the_injected_error(self):
        from repro.robust.faults import FaultInjected

        injector = FaultInjector(
            [FaultPlan("engine.saturate", "error", nth=1, repeat=True)]
        )
        svc = QueryService(
            workers=1, retry=RetryPolicy(max_attempts=2, base_delay=0.001)
        )
        try:
            with inject(injector):
                with pytest.raises(FaultInjected):
                    svc.evaluate(
                        QueryRequest(program=PATH, facts=PATH_FACTS, seed=0),
                        timeout=30,
                    )
        finally:
            svc.close()
        assert svc.stats()["counters"]["retries"] == 1

    def test_retry_can_be_disabled(self):
        from repro.robust.faults import FaultInjected

        injector = FaultInjector([FaultPlan("engine.saturate", "error", nth=1)])
        svc = QueryService(workers=1, retry=RetryPolicy(max_attempts=1))
        try:
            with inject(injector):
                with pytest.raises(FaultInjected):
                    svc.evaluate(
                        QueryRequest(program=PATH, facts=PATH_FACTS, seed=0),
                        timeout=30,
                    )
        finally:
            svc.close()


class TestCancellation:
    def test_cancel_mid_run_yields_a_resumable_partial(self):
        svc = QueryService(workers=1)
        try:
            ticket = svc.submit(
                QueryRequest(program=DIVERGENT, engine="seminaive")
            )
            ticket.cancel("operator stop")
            response = ticket.response(timeout=30)
            assert response.status == CANCELLED
            assert not response.ok
            assert response.partial is not None
            assert response.checkpoint is not None
            # Resume the cancelled work under a bounded budget.
            resumed = svc.evaluate(
                QueryRequest(
                    program=DIVERGENT,
                    engine="seminaive",
                    budget=Budget(max_rounds=3),
                    resume_from=response.checkpoint,
                ),
                timeout=30,
            )
            assert resumed.status == DEGRADED
            assert (
                resumed.database.total_facts()
                > response.partial.database.total_facts()
            )
        finally:
            svc.close()

    def test_cancellation_does_not_count_against_the_breaker(self):
        svc = QueryService(workers=1, failure_threshold=1, reset_timeout=60.0)
        try:
            ticket = svc.submit(QueryRequest(program=DIVERGENT, engine="seminaive"))
            ticket.cancel()
            response = ticket.response(timeout=30)
            assert response.status == CANCELLED
            assert all(
                b["state"] == "closed" for b in svc.stats()["breakers"].values()
            )
        finally:
            svc.close()


class TestIntrospection:
    def test_health_reports_workers_and_queue(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_capacity"] == 64
        assert health["queue_depth"] >= 0

    def test_stats_accounts_every_outcome(self, service):
        service.evaluate(QueryRequest(program=PATH, facts=PATH_FACTS), timeout=30)
        try:
            service.evaluate(QueryRequest(program=BROKEN), timeout=30)
        except ReproError:
            pass
        stats = service.stats()
        assert stats["counters"]["submitted"] == 2
        assert stats["counters"][OK] == 1
        assert stats["counters"][FAILED] == 1
        assert "latency_ms_p50" in stats
        assert stats["queue"]["admitted"] == 2

    def test_per_request_trace_is_returned_when_enabled(self):
        svc = QueryService(workers=1, trace=True)
        try:
            response = svc.evaluate(
                QueryRequest(program=PATH, facts=PATH_FACTS), timeout=30
            )
            assert response.trace is not None
            names = {r.name for r in response.trace}
            assert "request" in names
        finally:
            svc.close()

    def test_close_drains_admitted_work(self):
        svc = QueryService(workers=2)
        tickets = [
            svc.submit(QueryRequest(program=PATH, facts=PATH_FACTS, seed=i))
            for i in range(8)
        ]
        svc.close(wait=True)
        for ticket in tickets:
            assert ticket.done
            assert ticket.response(timeout=0.1).status == OK


class TestShutdownResponses:
    """Regression: ``close(wait=False)`` (or a timed-out drain) used to
    join the workers and return with the admitted backlog still queued —
    every caller blocked in ``Ticket.response`` hung forever.  Queued
    tickets must instead resolve with the typed shutdown response."""

    def test_close_without_wait_resolves_queued_tickets(self):
        svc = QueryService(workers=1)
        # A backlog far deeper than one worker clears instantly.
        tickets = [
            svc.submit(QueryRequest(program=SORTING, facts=SORT_FACTS, seed=i))
            for i in range(16)
        ]
        svc.close(wait=False)
        statuses = set()
        for ticket in tickets:
            response = ticket.response(timeout=5)  # must not hang
            statuses.add(response.status)
            if response.status == SHED:
                assert isinstance(response.error, ServiceClosed)
                assert "closed" in str(response.error)
        # The worker may have finished a prefix, but the queued tail got
        # the shutdown response rather than stranding its callers.
        assert SHED in statuses
        assert statuses <= {OK, SHED}

    def test_shutdown_shed_requests_do_not_resurrect_on_recovery(self, tmp_path):
        from repro.durable import CheckpointStore

        store = CheckpointStore(str(tmp_path))
        svc = QueryService(workers=1, store=store)
        for i in range(8):
            svc.submit(QueryRequest(program=SORTING, facts=SORT_FACTS, seed=i))
        svc.close(wait=False)
        store.close()
        # The caller was told "not run" — a restart must not re-run it
        # behind their back.
        fresh_store = CheckpointStore(str(tmp_path))
        fresh = QueryService(workers=1, store=fresh_store)
        try:
            assert fresh.recover() == {}
        finally:
            fresh.close()
            fresh_store.close()
