"""Supervisor behaviour: crash detection, restart with WAL replay,
hang detection, crash-loop containment and failover routing.

Each test drives real spawned worker processes — nothing is mocked —
so timings are deliberately generous for slow CI machines.  The
high-volume acceptance soak lives in ``test_sharded_soak.py``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.compiler import solve_program
from repro.robust.faults import FaultPlan
from repro.serve import (
    OK,
    QueryRequest,
    ShardDown,
    ShardedQueryService,
    route,
)
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(10)]}


def _expected(seed: int) -> str:
    return dumps_facts(
        solve_program(SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=seed)
    )


def _submit_with_retry(service, request, deadline_s: float = 30.0):
    """Submit, retrying on the typed ``ShardDown`` rejection (the
    documented client contract while every candidate shard is down)."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return service.submit(request)
        except ShardDown as exc:
            if time.monotonic() >= deadline:
                raise
            time.sleep(max(0.02, min(exc.retry_after, 0.25)))


def _wait_for(predicate, timeout: float = 20.0, message: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestCrashRecovery:
    def test_sigkill_mid_flight_restarts_replays_and_loses_nothing(self, tmp_path):
        service = ShardedQueryService(
            shards=2,
            durable_dir=str(tmp_path),
            heartbeat_interval=0.03,
            restart_backoff=0.05,
            stable_after=0.2,
        )
        try:
            tickets = []
            for seed in range(12):
                tickets.append(
                    (seed, _submit_with_retry(service, QueryRequest(SORTING, SORT_FACTS, seed=seed)))
                )
                if seed == 4:
                    victim = service._shards[0]
                    _wait_for(lambda: victim.state == "up" and victim.pid, message="shard 0 up")
                    os.kill(victim.pid, signal.SIGKILL)
            for seed, ticket in tickets:
                response = ticket.response(timeout=90)
                assert response.status == OK, (seed, response.status, response.error)
                assert dumps_facts(response.database) == _expected(seed)
            counters = service.stats()["counters"]
            assert counters["crashes"] >= 1
            assert counters["restarts"] >= 1
            # The killed shard reopened *its own* WAL directory.
            assert (tmp_path / "shard-0").is_dir()
        finally:
            service.close()

    def test_exit_before_ack_is_resent_and_completes(self, tmp_path):
        # The worker dies *after* the inner service finished (and journalled
        # ``done``) but *before* the response crossed the pipe — the classic
        # lost-ack window.  The front door must resend and the rerun must
        # produce the identical model.
        service = ShardedQueryService(
            shards=1,
            durable_dir=str(tmp_path),
            heartbeat_interval=0.03,
            restart_backoff=0.05,
            stable_after=0.2,
            fault_plans=(FaultPlan("shard.ack", "exit", nth=2),),
        )
        try:
            first = service.submit(QueryRequest(SORTING, SORT_FACTS, seed=0))
            assert first.response(timeout=60).status == OK
            second = service.submit(QueryRequest(SORTING, SORT_FACTS, seed=1))
            response = second.response(timeout=90)
            assert response.status == OK
            assert dumps_facts(response.database) == _expected(1)
            counters = service.stats()["counters"]
            assert counters["crashes"] >= 1
            assert counters["resent"] >= 1
        finally:
            service.close()


class TestHangDetection:
    def test_stopped_worker_is_declared_hung_and_replaced(self, tmp_path):
        service = ShardedQueryService(
            shards=1,
            durable_dir=str(tmp_path),
            heartbeat_interval=0.03,
            miss_limit=8,
            restart_backoff=0.05,
            stable_after=0.2,
        )
        try:
            assert service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=0), timeout=60
            ).status == OK
            state = service._shards[0]
            first_pid = state.pid
            os.kill(first_pid, signal.SIGSTOP)  # alive but unresponsive
            _wait_for(
                lambda: state.restarts >= 1 or state.pid not in (None, first_pid),
                timeout=30,
                message="supervisor to replace the stopped worker",
            )
            _wait_for(lambda: state.state == "up", timeout=30, message="replacement up")
            assert state.pid != first_pid
            response = _submit_with_retry(
                service, QueryRequest(SORTING, SORT_FACTS, seed=1)
            ).response(timeout=90)
            assert response.status == OK
            assert dumps_facts(response.database) == _expected(1)
            assert service.stats()["counters"]["crashes"] >= 1
        finally:
            service.close()


class TestCrashLoopContainment:
    def test_repeated_instant_crashes_end_in_failed_not_spin(self):
        # Every spawned worker exits at its first loop visit, so restarts
        # can never help; the breaker + max_restarts must park the shard
        # as failed instead of spinning forever.
        service = ShardedQueryService(
            shards=1,
            heartbeat_interval=0.02,
            restart_backoff=0.01,
            max_backoff=0.05,
            max_restarts=2,
            start_timeout=0,
            fault_plans=(FaultPlan("shard.loop", "exit", nth=1),),
        )
        try:
            state = service._shards[0]
            _wait_for(lambda: state.state == "failed", timeout=30, message="shard failed")
            assert state.lifetime_restarts <= 6  # bounded, not a hot loop
            with pytest.raises(ShardDown):
                service.submit(QueryRequest(SORTING, SORT_FACTS, seed=0))
            assert service.health()["states"][0] == "failed"
            assert service.stats()["counters"]["failed_shards"] >= 1
        finally:
            service.close()


class TestFailover:
    def test_requests_for_a_down_shard_fail_over_to_the_ring(self):
        service = ShardedQueryService(
            shards=2,
            heartbeat_interval=0.03,
            restart_backoff=5.0,  # keep the victim down for the whole test
            stable_after=0.2,
        )
        try:
            victim_id = 0
            klass = next(
                f"class-{i}" for i in range(64) if route(f"class-{i}", 2) == victim_id
            )
            victim = service._shards[victim_id]
            _wait_for(lambda: victim.state == "up" and victim.pid, message="victim up")
            os.kill(victim.pid, signal.SIGKILL)
            _wait_for(lambda: victim.state != "up", message="crash detected")
            response = _submit_with_retry(
                service, QueryRequest(SORTING, SORT_FACTS, seed=3, klass=klass)
            ).response(timeout=90)
            assert response.status == OK
            assert dumps_facts(response.database) == _expected(3)
            assert service.stats()["counters"]["failover"] >= 1
        finally:
            service.close()

    def test_failover_disabled_rejects_while_the_owner_is_down(self):
        service = ShardedQueryService(
            shards=2,
            heartbeat_interval=0.03,
            restart_backoff=5.0,
            failover=False,
        )
        try:
            victim_id = 1
            klass = next(
                f"class-{i}" for i in range(64) if route(f"class-{i}", 2) == victim_id
            )
            victim = service._shards[victim_id]
            _wait_for(lambda: victim.state == "up" and victim.pid, message="victim up")
            os.kill(victim.pid, signal.SIGKILL)
            _wait_for(lambda: victim.state != "up", message="crash detected")
            with pytest.raises(ShardDown) as excinfo:
                service.submit(QueryRequest(SORTING, SORT_FACTS, seed=0, klass=klass))
            assert excinfo.value.shard_id == victim_id
            assert excinfo.value.retry_after >= 0.0
        finally:
            service.close()
