"""Admission control and breaker behaviour under scripted overload.

The acceptance properties from the issue: a full queue sheds new
submissions in O(1) with memory bounded by the queue capacity, and the
circuit breaker opens / half-opens / closes under a scripted failure
burst.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import (
    AdmissionQueue,
    CircuitOpen,
    Overloaded,
    QueryRequest,
    QueryService,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

# Big enough that one request occupies a worker for a measurable while.
SLOW_FACTS = {"edge": [(i, i + 1) for i in range(120)]}

BROKEN = "p(X) :- q(X, ."


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(capacity=4)
        for i in range(3):
            queue.offer(i)
        assert [queue.take(timeout=0.1) for _ in range(3)] == [0, 1, 2]

    def test_full_queue_sheds_with_a_retry_hint(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(Overloaded) as info:
            queue.offer("c")
        assert info.value.retry_after > 0
        assert queue.rejected == 1
        assert queue.depth() == 2

    def test_shedding_is_o1_independent_of_backlog(self):
        # The rejection path must not scan the queue: time offers against
        # a full tiny queue and a full huge queue and compare.
        def shed_cost(capacity: int) -> float:
            queue = AdmissionQueue(capacity=capacity)
            for i in range(capacity):
                queue.offer(i)
            start = time.perf_counter()
            for _ in range(200):
                with pytest.raises(Overloaded):
                    queue.offer("x")
            return time.perf_counter() - start

        small = shed_cost(4)
        large = shed_cost(4096)
        # O(1) shed: cost may wobble with timer noise but must not scale
        # with a 1000x backlog difference.
        assert large < small * 20

    def test_dead_on_arrival_deadline_is_rejected(self):
        clock = FakeClock(100.0)
        queue = AdmissionQueue(capacity=4, clock=clock)
        with pytest.raises(Overloaded, match="deadline"):
            queue.offer("a", deadline=99.0)

    def test_expired_entries_are_shed_at_dequeue(self):
        clock = FakeClock(0.0)
        queue = AdmissionQueue(capacity=8, clock=clock)
        queue.offer("lives", deadline=100.0)
        queue.offer("dies", deadline=1.0)
        queue.offer("tail", deadline=100.0)
        clock.advance(5.0)
        shed = []
        assert queue.take(timeout=0.1, on_shed=shed.append) == "lives"
        assert queue.take(timeout=0.1, on_shed=shed.append) == "tail"
        assert shed == ["dies"]
        assert queue.expired == 1

    def test_retry_hint_tracks_the_service_time_ewma(self):
        queue = AdmissionQueue(capacity=4, default_service_s=1.0)
        for i in range(4):
            queue.offer(i)
        before = queue.retry_after(workers=1)
        for _ in range(40):
            queue.record_service_time(0.01)
        after = queue.retry_after(workers=1)
        assert after < before

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


class TestServiceOverload:
    def test_full_queue_sheds_and_memory_stays_bounded(self):
        svc = QueryService(workers=1, queue_capacity=4)
        try:
            admitted, rejected = [], 0
            for i in range(64):
                try:
                    admitted.append(
                        svc.submit(
                            QueryRequest(program=PATH, facts=SLOW_FACTS, seed=i)
                        )
                    )
                except Overloaded as exc:
                    rejected += 1
                    assert exc.retry_after > 0
            assert rejected > 0
            # Bounded state: the service never holds more than
            # capacity + workers requests, no matter how many were thrown
            # at it.  (Rejected submissions retain nothing.)
            assert svc.queue.depth() <= 4
            for ticket in admitted:
                assert ticket.response(timeout=60).status == "ok"
            stats = svc.stats()
            assert stats["counters"]["rejected"] == rejected
            assert stats["counters"]["submitted"] == 64
        finally:
            svc.close()

    def test_queued_requests_past_deadline_are_shed_not_run(self):
        svc = QueryService(workers=1, queue_capacity=16)
        try:
            blocker = svc.submit(
                QueryRequest(program=PATH, facts=SLOW_FACTS, seed=0)
            )
            # A request that can only be served long after its deadline.
            doomed = svc.submit(
                QueryRequest(
                    program=PATH, facts=SLOW_FACTS, seed=1, deadline=0.0005
                )
            )
            assert blocker.response(timeout=60).status == "ok"
            response = doomed.response(timeout=60)
            assert response.status == "shed"
            assert isinstance(response.error, Overloaded)
        finally:
            svc.close()


class TestServiceBreaker:
    def test_scripted_burst_opens_half_opens_and_closes(self):
        # Scripted via the service's injectable clock: failures trip the
        # breaker, the timer half-opens it, a success closes it.
        svc = QueryService(workers=1, failure_threshold=3, reset_timeout=60.0)
        try:
            klass = "assignment"
            # 1. A burst of permanent failures trips the breaker.
            for _ in range(3):
                ticket = svc.submit(QueryRequest(program=BROKEN, klass=klass))
                assert ticket.response(timeout=30).status == "failed"
            with pytest.raises(CircuitOpen) as info:
                svc.submit(QueryRequest(program=BROKEN, klass=klass))
            assert info.value.klass == klass
            assert info.value.retry_after > 0
            breaker = svc._breaker(klass)
            assert breaker.state == "open"
            snap = svc.stats()["breakers"][klass]
            assert snap["transitions"]["opened"] == 1

            # 2. Wind the breaker's clock past the reset timeout: the next
            # read half-opens it and a probe is admitted.
            breaker._opened_at -= 61.0
            assert breaker.state == "half_open"
            assert svc.stats()["breakers"][klass]["transitions"]["half_opened"] == 1

            # 3. A healthy probe closes the breaker for good.
            ticket = svc.submit(
                QueryRequest(program=PATH, facts={"edge": [(1, 2)]}, klass=klass)
            )
            assert ticket.response(timeout=30).status == "ok"
            assert breaker.state == "closed"
            assert svc.stats()["breakers"][klass]["transitions"]["closed"] == 1

            # 4. And traffic flows again.
            ok = svc.evaluate(
                QueryRequest(program=PATH, facts={"edge": [(1, 2)]}, klass=klass),
                timeout=30,
            )
            assert ok.status == "ok"
        finally:
            svc.close()

    def test_open_breaker_rejections_are_counted(self):
        svc = QueryService(workers=1, failure_threshold=1, reset_timeout=60.0)
        try:
            ticket = svc.submit(QueryRequest(program=BROKEN, klass="k"))
            ticket.response(timeout=30)
            for _ in range(5):
                with pytest.raises(CircuitOpen):
                    svc.submit(QueryRequest(program=BROKEN, klass="k"))
            assert svc.stats()["counters"]["circuit_open"] == 5
            assert svc.health()["breakers"]["k"] == "open"
        finally:
            svc.close()

    def test_breakers_are_per_class(self):
        svc = QueryService(workers=1, failure_threshold=1, reset_timeout=60.0)
        try:
            ticket = svc.submit(QueryRequest(program=BROKEN, klass="bad"))
            ticket.response(timeout=30)
            with pytest.raises(CircuitOpen):
                svc.submit(QueryRequest(program=BROKEN, klass="bad"))
            # A different class is unaffected.
            ok = svc.evaluate(
                QueryRequest(program=PATH, facts={"edge": [(1, 2)]}, klass="good"),
                timeout=30,
            )
            assert ok.status == "ok"
        finally:
            svc.close()


class TestIdleDecay:
    """Regression: the service-time EWMA was only ever updated by
    completions, so one slow burst poisoned the ``retry_after`` hint
    forever — a caller shed an hour later was still told to wait minutes
    on a now-idle queue."""

    def test_estimate_decays_toward_the_seed_while_idle(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=4, clock=clock, default_service_s=0.05)
        for _ in range(10):
            queue.record_service_time(30.0)  # a pathologically slow burst
        congested = queue.service_time_estimate()
        assert congested > 10.0
        clock.advance(AdmissionQueue.IDLE_DECAY_HALF_LIFE_S)
        halfway = queue.service_time_estimate()
        assert halfway == pytest.approx((congested + 0.05) / 2, rel=1e-6)
        clock.advance(20 * AdmissionQueue.IDLE_DECAY_HALF_LIFE_S)
        assert queue.service_time_estimate() == pytest.approx(0.05, abs=1e-3)

    def test_retry_hint_recalibrates_after_an_idle_stretch(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=2, clock=clock, default_service_s=0.05)
        for _ in range(10):
            queue.record_service_time(30.0)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(Overloaded) as excinfo:
            queue.offer("c")
        assert excinfo.value.retry_after > 10.0  # honest while congested
        clock.advance(60 * 60.0)  # a quiet hour
        with pytest.raises(Overloaded) as excinfo:
            queue.offer("c")
        # Bound: backlog × (fully decayed seed estimate), with headroom
        # for float dust — nowhere near the stale minutes-long quote.
        assert excinfo.value.retry_after <= 2 * 0.05 * 1.01

    def test_decay_does_not_fire_mid_burst(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=4, clock=clock, default_service_s=0.05)
        for _ in range(10):
            queue.record_service_time(2.0)  # back-to-back: no idle gaps
        # Undecayed EWMA after ten 2.0s observations from a 0.05s seed.
        expected = 0.05
        for _ in range(10):
            expected = 0.2 * 2.0 + 0.8 * expected
        assert queue.service_time_estimate() == pytest.approx(expected, rel=1e-6)
