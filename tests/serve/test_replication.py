"""Serving-layer replication: live WAL shipping, hot-standby promotion,
fencing, and anti-entropy catch-up.

Each test drives real spawned worker processes through the
:class:`~repro.serve.supervisor.ShardedQueryService` front door (the
fencing tests run ``shard_worker_main`` directly on an in-process pipe
so both ends of the protocol are observable).  The durable mechanism
underneath — manifests, fence files, the ReplicaWal — is proven
in-process in ``tests/durable/test_replication.py``; the high-volume
acceptance soak lives in ``test_replication_soak.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.core.compiler import solve_program
from repro.durable import fence_path, write_fence_token
from repro.durable.wal import frame
from repro.robust.faults import FaultPlan
from repro.serve import (
    OK,
    QueryRequest,
    ShardConfig,
    ShardDown,
    ShardedQueryService,
)
from repro.serve.routing import wal_slot
from repro.serve.shard import shard_worker_main
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(10)]}


def _expected(seed: int) -> str:
    return dumps_facts(
        solve_program(SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=seed)
    )


def _submit_with_retry(service, request, deadline_s: float = 30.0):
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return service.submit(request)
        except ShardDown as exc:
            if time.monotonic() >= deadline:
                raise
            time.sleep(max(0.02, min(exc.retry_after, 0.25)))


def _wait_for(predicate, timeout: float = 30.0, message: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _service(tmp_path, **overrides):
    kwargs = dict(
        shards=1,
        durable_dir=str(tmp_path),
        replicas=1,
        heartbeat_interval=0.03,
        restart_backoff=0.05,
        stable_after=0.2,
        start_timeout=60,
    )
    kwargs.update(overrides)
    return ShardedQueryService(**kwargs)


def _shard(service, k: int = 0):
    return service.stats()["shards"][k]


def _counters(service):
    return service.stats()["counters"]


def _slot_bytes(durable_dir: str, shard_id: int, slot: str):
    """``{segment name: bytes}`` for one WAL slot (read-only; safe to
    call while the owning process is live)."""
    root = os.path.join(durable_dir, wal_slot(shard_id, slot))
    out = {}
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return out
    for name in sorted(names):
        if name.startswith("wal-") and name.endswith(".log"):
            with open(os.path.join(root, name), "rb") as handle:
                out[name] = handle.read()
    return out


class TestShipping:
    def test_standby_converges_to_byte_identical_segments(self, tmp_path):
        service = _service(tmp_path)
        try:
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm",
            )
            for seed in range(4):
                response = service.evaluate(
                    QueryRequest(SORTING, SORT_FACTS, seed=seed), timeout=60
                )
                assert response.status == OK
            # The ship stream is asynchronous: wait for the replica to
            # drain it, then for the slots to agree byte for byte.
            _wait_for(
                lambda: _shard(service)["replication_lag_records"] == 0,
                message="replication lag 0",
            )
            _wait_for(
                lambda: _slot_bytes(str(tmp_path), 0, "a")
                == _slot_bytes(str(tmp_path), 0, "b")
                and _slot_bytes(str(tmp_path), 0, "a"),
                message="slot convergence",
            )
            counters = _counters(service)
            assert counters["repl_shipped"] >= 4
            assert counters.get("repl_diverged", 0) == 0
            assert _shard(service)["slot"] == "a"
            assert _shard(service)["fence_token"] == 0
        finally:
            service.close()


class TestPromotion:
    def test_sigkill_promotes_the_warm_standby_and_loses_nothing(self, tmp_path):
        # max_restarts=0: the first crash must promote, not restart.
        service = _service(tmp_path, max_restarts=0)
        try:
            warm = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=0), timeout=60
            )
            assert warm.status == OK
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm",
            )
            tickets = [
                (seed, _submit_with_retry(service, QueryRequest(SORTING, SORT_FACTS, seed=seed)))
                for seed in range(1, 7)
            ]
            os.kill(_shard(service)["pid"], signal.SIGKILL)
            for seed, ticket in tickets:
                response = ticket.response(timeout=120)
                assert response.status == OK, (seed, response.status, response.error)
                assert dumps_facts(response.database) == _expected(seed)
            shard = _shard(service)
            assert shard["state"] == "up"
            assert shard["slot"] == "b"
            assert shard["fence_token"] == 1
            counters = _counters(service)
            assert counters["promotions"] == 1
            assert counters.get("restarts", 0) == 0
            # The promoted primary gets its own fresh standby, which
            # rebuilds the dead primary's slot via anti-entropy.
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="fresh standby warm",
            )
            assert _counters(service)["standby_spawns"] >= 2
            # ... and the promoted primary ships to it.
            shipped = _counters(service)["repl_shipped"]
            after = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=9), timeout=60
            )
            assert after.status == OK
            assert dumps_facts(after.database) == _expected(9)
            _wait_for(
                lambda: _counters(service)["repl_shipped"] > shipped
                and _shard(service)["replication_lag_records"] == 0,
                message="post-promotion shipping",
            )
        finally:
            service.close()

    @pytest.mark.parametrize("nth", [1, 3])
    def test_crash_at_the_ship_hook_promotes_an_exact_prefix(self, tmp_path, nth):
        """The worst promotion window: the primary dies *inside* the ship
        hook — the record is fsynced in its own log but never reaches the
        standby.  The promoted standby serves the resent request from an
        exact prefix, and the stale slot (which holds the unshipped
        record, and lacks the promotion fence stamp) is detected as
        diverged and rebuilt — never silently trusted."""
        service = _service(
            tmp_path,
            max_restarts=0,
            fault_plans=(FaultPlan("repl.ship", "exit", nth=nth),),
            # Chaos scoped to primaries: standbys (and therefore promoted
            # primaries) install no injector, so the resent request cannot
            # re-trip the same countdown in the new primary.
            standby_fault_plans=(),
        )
        try:
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm",
            )
            tickets = [
                (seed, _submit_with_retry(service, QueryRequest(SORTING, SORT_FACTS, seed=seed)))
                for seed in range(4)
            ]
            for seed, ticket in tickets:
                response = ticket.response(timeout=120)
                assert response.status == OK, (seed, response.status, response.error)
                assert dumps_facts(response.database) == _expected(seed)
            shard = _shard(service)
            assert shard["slot"] == "b"
            assert shard["fence_token"] == 1
            assert _counters(service)["promotions"] == 1
            # The stale ex-primary slot provably diverged (unshipped
            # suffix vs the promoted log's fence stamp) and was rebuilt.
            _wait_for(
                lambda: _counters(service).get("repl_diverged", 0) >= 1
                and _shard(service)["standby_state"] == "warm",
                message="stale slot rebuilt as diverged",
            )
        finally:
            service.close()

    def test_crash_before_warm_defers_promotion_and_restarts(self, tmp_path):
        """A crash while nothing is promotable must not park the shard:
        the standby syncs *through* the primary, so FAILED here would
        strand a replica that is seconds from warm.  The supervisor
        spends promotion grace on an in-place restart instead, and the
        next crash with a warm standby promotes as usual."""
        service = _service(tmp_path, max_restarts=0)
        try:
            warm = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=0), timeout=60
            )
            assert warm.status == OK
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm",
            )
            # Take the standby out, wait for the supervisor to notice,
            # then shoot the primary while nothing is promotable.
            os.kill(service._shards[0].standby_pid, signal.SIGKILL)
            _wait_for(
                lambda: _shard(service)["standby_state"] != "warm",
                message="standby loss noticed",
            )
            os.kill(_shard(service)["pid"], signal.SIGKILL)
            _wait_for(
                lambda: _counters(service).get("promote_deferred", 0) >= 1,
                message="deferred promotion",
            )
            _wait_for(
                lambda: _shard(service)["state"] == "up",
                message="grace-restarted primary back up",
            )
            # Same slot, same token: a restart, not a promotion — and
            # decidedly not a parked shard.
            shard = _shard(service)
            assert shard["slot"] == "a"
            assert shard["fence_token"] == 0
            counters = _counters(service)
            assert counters.get("promotions", 0) == 0
            assert counters.get("failed_shards", 0) == 0
            assert counters.get("restarts", 0) >= 1
            response = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=1), timeout=60
            )
            assert response.status == OK
            assert dumps_facts(response.database) == _expected(1)
            # Once the rebuilt standby warms, promotion works as ever.
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm again",
            )
            os.kill(_shard(service)["pid"], signal.SIGKILL)
            _wait_for(
                lambda: _shard(service)["fence_token"] == 1,
                timeout=60,
                message="promotion after the grace window",
            )
            assert _shard(service)["slot"] == "b"
        finally:
            service.close()


class TestFencedZombie:
    """``shard_worker_main`` run on an in-process pipe: both fencing
    checkpoints (before startup, before every publish) observable
    without a supervisor in the way."""

    @staticmethod
    def _start(tmp_path, config):
        parent, child = multiprocessing.Pipe()
        thread = threading.Thread(
            target=shard_worker_main, args=(0, child, config), daemon=True
        )
        thread.start()
        return parent, thread

    @staticmethod
    def _config(tmp_path):
        return ShardConfig(
            workers=1,
            durable_root=str(tmp_path),
            fence_file=fence_path(str(tmp_path), 0),
        )

    @staticmethod
    def _drain(conn, timeout=0.1):
        # Not ``shard._drain_inbox``: that raises ``EOFError`` on the
        # poll *after* the buffered messages once the worker closes its
        # end, which would discard what was already read.
        messages = []
        try:
            while conn.poll(timeout if not messages else 0.0):
                message = conn.recv()
                if message and message[0] == "batch":
                    messages.extend(message[1])
                else:
                    messages.append(message)
        except (EOFError, OSError):
            pass
        return messages

    def _collect_until_exit(self, conn, thread, timeout=60.0):
        deadline = time.monotonic() + timeout
        messages = []
        while time.monotonic() < deadline:
            messages.extend(self._drain(conn))
            if not thread.is_alive():
                break
        thread.join(timeout=10)
        assert not thread.is_alive(), "worker did not stop after fencing"
        messages.extend(self._drain(conn))
        return messages

    def test_startup_fenced_worker_reports_and_never_serves(self, tmp_path):
        write_fence_token(fence_path(str(tmp_path), 0), 2)
        parent, thread = self._start(tmp_path, self._config(tmp_path))
        messages = self._collect_until_exit(parent, thread)
        assert ("fenced", 2, 0) in messages
        kinds = [m[0] for m in messages]
        assert "ready" not in kinds  # refused before opening the store
        assert "response" not in kinds

    def test_fence_written_mid_run_blocks_every_response(self, tmp_path):
        parent, thread = self._start(tmp_path, self._config(tmp_path))
        _wait_for(
            lambda: any(m[0] == "ready" for m in self._drain(parent)),
            message="worker ready",
        )
        # Fence first, submit second: the worker re-checks the fence
        # before publishing any response, so the submitted request can
        # run but its answer must never cross the pipe.
        write_fence_token(fence_path(str(tmp_path), 0), 5)
        try:
            parent.send(
                ("submit", 1, QueryRequest(SORTING, SORT_FACTS).to_payload())
            )
        except (BrokenPipeError, OSError):
            pass  # already fenced out on an idle check — equally a refusal
        messages = self._collect_until_exit(parent, thread)
        assert ("fenced", 5, 0) in messages
        assert all(m[0] != "response" for m in messages)


class TestAntiEntropy:
    def test_divergent_slot_is_rebuilt_never_promoted(self, tmp_path):
        """A standby slot pre-seeded with alien history: the standby
        must detect the divergence (counter + rebuilt), come up warm on
        the primary's exact bytes, and the primary keeps slot "a"."""
        slot_b = tmp_path / wal_slot(0, "b")
        os.makedirs(slot_b)
        junk = frame(b'{"kind":"done","rid":"ghost"}')
        for name in ("wal-00000001.log", "wal-00000009.log"):
            with open(slot_b / name, "wb") as handle:
                handle.write(junk)
        service = _service(tmp_path)
        try:
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm"
                and _counters(service).get("repl_diverged", 0) >= 1,
                message="diverged slot rebuilt",
            )
            shard = _shard(service)
            assert shard["slot"] == "a"
            assert shard["fence_token"] == 0
            response = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=0), timeout=60
            )
            assert response.status == OK
            assert dumps_facts(response.database) == _expected(0)
        finally:
            service.close()

    def test_killed_standby_is_respawned_and_resynced(self, tmp_path):
        service = _service(tmp_path)
        try:
            _wait_for(
                lambda: _shard(service)["standby_state"] == "warm",
                message="standby warm",
            )
            assert _counters(service)["standby_spawns"] == 1
            os.kill(service._shards[0].standby_pid, signal.SIGKILL)
            _wait_for(
                lambda: _counters(service)["standby_spawns"] >= 2
                and _shard(service)["standby_state"] == "warm",
                message="standby respawned and warm",
            )
            # The primary never wavered.
            counters = _counters(service)
            assert counters.get("promotions", 0) == 0
            assert counters.get("crashes", 0) == 0
            response = service.evaluate(
                QueryRequest(SORTING, SORT_FACTS, seed=1), timeout=60
            )
            assert response.status == OK
        finally:
            service.close()
