"""The ``repro serve`` subcommand: workload files, summaries, exit codes."""

from __future__ import annotations

import io
import json

import pytest

from repro import cli

PATH = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z)."

BROKEN = "p(X) :- q(X, ."


def _run(argv):
    out = io.StringIO()
    code = cli.main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def workload_file(tmp_path):
    def write(payload) -> str:
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(payload))
        return str(path)

    return write


class TestServeCommand:
    def test_all_ok_workload_exits_0(self, workload_file):
        path = workload_file(
            {
                "defaults": {"seed": 1},
                "requests": [
                    {
                        "program": PATH,
                        "facts": {"edge": [[1, 2], [2, 3]]},
                        "repeat": 3,
                    }
                ],
            }
        )
        code, output = _run(["serve", path, "--workers", "2"])
        assert code == 0
        assert output.count(": ok") == 3
        assert "3/3 requests ok or degraded" in output

    def test_failed_request_exits_1(self, workload_file):
        path = workload_file(
            [
                {"program": PATH, "facts": {"edge": [[1, 2]]}},
                {"program": BROKEN},
            ]
        )
        code, output = _run(["serve", path])
        assert code == 1
        assert ": failed" in output
        assert "1/2 requests ok or degraded" in output

    def test_degraded_requests_count_as_success(self, workload_file):
        path = workload_file(
            [
                {
                    "program": "nat(0). nat(Y) <- nat(X), Y = X + 1.",
                    "engine": "seminaive",
                    "max_steps": 5,
                }
            ]
        )
        code, output = _run(["serve", path])
        assert code == 0
        assert ": degraded" in output

    def test_program_file_and_csv_facts_are_loaded(self, tmp_path):
        (tmp_path / "prog.dl").write_text(PATH)
        (tmp_path / "edges.csv").write_text("1,2\n2,3\n")
        workload = tmp_path / "w.json"
        workload.write_text(
            json.dumps(
                [{"program_file": "prog.dl", "facts": {"edge": "edges.csv"}}]
            )
        )
        code, output = _run(["serve", str(workload)])
        assert code == 0
        assert "(5 facts" in output  # 2 edge + 3 derived path facts

    def test_stats_flag_prints_service_stats(self, workload_file):
        path = workload_file([{"program": PATH, "facts": {"edge": [[1, 2]]}}])
        code, output = _run(["serve", path, "--stats"])
        assert code == 0
        assert '"submitted": 1' in output
        assert '"status": "closed"' in output  # health after close

    def test_missing_workload_exits_1(self, capsys):
        code = cli.main(["serve", "/nonexistent/workload.json"])
        assert code == 1
        assert "cannot load workload" in capsys.readouterr().err

    def test_empty_workload_exits_1(self, workload_file, capsys):
        path = workload_file({"requests": []})
        code = cli.main(["serve", path])
        assert code == 1
        assert "no requests" in capsys.readouterr().err

    def test_request_without_program_exits_1(self, workload_file, capsys):
        path = workload_file([{"facts": {"edge": [[1, 2]]}}])
        code = cli.main(["serve", path])
        assert code == 1
        assert "program" in capsys.readouterr().err


class TestShardedServe:
    def test_shards_flag_routes_through_worker_processes(self, workload_file):
        path = workload_file(
            {
                "defaults": {"seed": 1},
                "requests": [
                    {
                        "program": PATH,
                        "facts": {"edge": [[1, 2], [2, 3]]},
                        "repeat": 4,
                    }
                ],
            }
        )
        code, output = _run(
            ["serve", path, "--shards", "2", "--workers", "1", "--stats"]
        )
        assert code == 0
        assert output.count(": ok") == 4
        assert "4/4 requests ok or degraded" in output
        # The stats JSON carries the front door's shard table.
        assert '"shards"' in output
        assert '"state": "stopped"' in output

    def test_sharded_serve_recovers_a_previous_crash(self, workload_file, tmp_path):
        # Seed a shard WAL with an unfinished run, exactly as a killed
        # worker process leaves it, then serve with --durable-dir.
        from repro.durable import CheckpointStore

        wal = tmp_path / "wal"
        store = CheckpointStore.for_shard(str(wal), 0)
        from repro.serve import QueryRequest

        request = QueryRequest(PATH, {"edge": [(1, 2), (2, 3)]}, seed=5)
        store.journal_request("41", request.to_payload())
        store.close()
        path = workload_file(
            [{"program": PATH, "facts": {"edge": [[1, 2]]}, "seed": 1}]
        )
        code, output = _run(
            ["serve", path, "--shards", "2", "--durable-dir", str(wal)]
        )
        assert code == 0
        assert "shards recovered 1 unfinished run(s)" in output

    def test_replicas_flag_serves_with_hot_standbys(self, workload_file, tmp_path):
        path = workload_file(
            {
                "defaults": {"seed": 1},
                "requests": [
                    {"program": PATH, "facts": {"edge": [[1, 2], [2, 3]]}}
                ],
            }
        )
        code, output = _run(
            [
                "serve",
                path,
                "--shards",
                "1",
                "--replicas",
                "1",
                "--durable-dir",
                str(tmp_path / "wal"),
                "--stats",
            ]
        )
        assert code == 0
        assert "1/1 requests ok or degraded" in output
        assert '"standby_state"' in output

    def test_replicas_without_shards_exits_1(self, workload_file, capsys):
        path = workload_file([{"program": PATH, "facts": {"edge": [[1, 2]]}}])
        code = cli.main(["serve", path, "--replicas", "1"])
        assert code == 1
        assert "--replicas requires --shards" in capsys.readouterr().err

    def test_replicas_without_durable_dir_exits_1(self, workload_file, capsys):
        path = workload_file([{"program": PATH, "facts": {"edge": [[1, 2]]}}])
        code = cli.main(["serve", path, "--shards", "1", "--replicas", "1"])
        assert code == 1
        assert "--replicas requires --durable-dir" in capsys.readouterr().err
