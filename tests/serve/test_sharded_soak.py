"""Cross-process soak: zero lost requests under random SIGKILLs.

The acceptance property from the issue: a multi-thousand-request soak
against the sharded front door while worker processes are SIGKILLed at
random points, and **every** request still resolves ``ok`` with a model
byte-identical to the unsharded oracle — killed shards' WALs are
replayed through ``recover()`` on restart and unacked work is resent.

``ShardDown`` is a *typed, expected* rejection while every candidate
shard is simultaneously down (a kill landing during another shard's
restart window); the documented client contract is to retry after the
hint, which the submitters here do.  Nothing is lost either way: a
rejected submission never entered the system.

Sizing: PR CI runs ``REPRO_SHARD_SOAK_REQUESTS`` (default 1000) with
three kills; nightly raises the request count and kill count via the
same knobs.  ``REPRO_SHARD_ARTIFACT_DIR`` preserves the WAL directory
for upload when the invariant fails.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import threading
import time

from repro.core.compiler import solve_program
from repro.serve import OK, QueryRequest, ShardDown, ShardedQueryService
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(10)]}

N_REQUESTS = int(os.environ.get("REPRO_SHARD_SOAK_REQUESTS", "1000"))
N_KILLS = int(os.environ.get("REPRO_SHARD_SOAK_KILLS", "3"))
N_SHARDS = int(os.environ.get("REPRO_SHARD_WORKERS", "2"))
N_SEEDS = 10  # request i runs seed i % N_SEEDS
N_SUBMITTERS = 4

#: When set (nightly CI), the shard WAL directory is copied here on
#: failure so the run's journals can be uploaded as a debugging artifact.
ARTIFACT_DIR = os.environ.get("REPRO_SHARD_ARTIFACT_DIR")


def _expected_models():
    return {
        seed: dumps_facts(
            solve_program(
                SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=seed
            )
        )
        for seed in range(N_SEEDS)
    }


def test_sharded_soak_zero_lost_under_random_sigkills(tmp_path):
    expected = _expected_models()
    wal_root = tmp_path / "wal"
    service = ShardedQueryService(
        shards=N_SHARDS,
        # Admission control is exercised elsewhere (test_admission.py);
        # here every request must be *accepted* so that zero-loss means
        # "survived the kills", not "was politely shed".
        queue_capacity=N_REQUESTS + 100,
        durable_dir=str(wal_root),
        heartbeat_interval=0.03,
        restart_backoff=0.05,
        max_backoff=0.5,
        max_restarts=50,  # kills are exogenous, never a crash loop
        stable_after=0.2,
    )
    tickets = [None] * N_REQUESTS
    errors = []
    rng = random.Random(0xC0FFEE)
    kills = []
    submitted = [0]
    submitted_lock = threading.Lock()

    def submitter(lane: int) -> None:
        try:
            for i in range(lane, N_REQUESTS, N_SUBMITTERS):
                request = QueryRequest(SORTING, SORT_FACTS, seed=i % N_SEEDS)
                while True:
                    try:
                        tickets[i] = service.submit(request)
                        break
                    except ShardDown as exc:
                        time.sleep(max(0.02, min(exc.retry_after, 0.25)))
                with submitted_lock:
                    submitted[0] += 1
        except Exception as exc:  # pragma: no cover - diagnostic path
            errors.append((lane, exc))

    def killer() -> None:
        # One confirmed SIGKILL per evenly spaced submission milestone —
        # mid-stream by construction.  Each kill targets a *live* up
        # shard and waits for the supervisor to respawn it (generation
        # bump) before arming the next one, so every entry in ``kills``
        # is a distinct observed crash, never a shot at a corpse.
        try:
            for k in range(N_KILLS):
                mark = (k + 1) * N_REQUESTS // (N_KILLS + 1)
                while True:
                    with submitted_lock:
                        count = submitted[0]
                    if count >= mark:
                        break
                    time.sleep(0.005)
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    candidates = [
                        s
                        for s in service._shards
                        if s.state == "up" and s.pid and s.handle.alive()
                    ]
                    if not candidates:
                        time.sleep(0.01)
                        continue
                    victim = rng.choice(candidates)
                    generation = victim.handle.generation
                    try:
                        os.kill(victim.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        continue
                    kills.append(victim.handle.shard_id)
                    while (
                        time.monotonic() < deadline
                        and victim.handle.generation == generation
                    ):
                        time.sleep(0.01)
                    break
        except Exception as exc:  # pragma: no cover - diagnostic path
            errors.append(("killer", exc))

    try:
        threads = [
            threading.Thread(target=submitter, args=(lane,), name=f"submit-{lane}")
            for lane in range(N_SUBMITTERS)
        ]
        threads.append(threading.Thread(target=killer, name="killer"))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors

        lost = []
        wrong = []
        for i, ticket in enumerate(tickets):
            assert ticket is not None, f"request {i} was never submitted"
            try:
                response = ticket.response(timeout=300)
            except TimeoutError:
                lost.append(i)
                continue
            if response.status != OK:
                lost.append((i, response.status, str(response.error)))
                continue
            if dumps_facts(response.database) != expected[i % N_SEEDS]:
                wrong.append(i)

        counters = service.stats()["counters"]
        try:
            assert lost == [], f"lost/failed requests: {lost[:10]} (counters={counters})"
            assert wrong == [], f"non-deterministic models for: {wrong[:10]}"
            assert len(kills) == N_KILLS, f"only {kills} landed"
            assert counters["crashes"] >= len(kills)
            assert counters["restarts"] >= len(kills)
            # Every kill left journalled work behind: the restarted shards
            # replayed their WALs (recovered) and/or the front door resent
            # what died in the pipe — both paths go through recover().
            assert counters.get("recovered", 0) + counters.get("resent", 0) >= 1, counters
        except AssertionError:
            if ARTIFACT_DIR:
                target = os.path.join(
                    ARTIFACT_DIR, f"sharded-soak-{os.getpid()}"
                )
                shutil.copytree(str(wal_root), target, dirs_exist_ok=True)
            raise
    finally:
        service.close()

    # Post-mortem: every shard's WAL is intact and owned by nobody.
    from repro.durable import CheckpointStore

    roots = CheckpointStore.shard_roots(str(wal_root))
    assert set(roots) == set(range(N_SHARDS))
