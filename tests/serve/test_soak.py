"""Multi-threaded soak: zero lost requests under concurrency and faults.

The acceptance property from the issue: 200 concurrent requests against
a small worker pool, with transient faults injected into roughly 10% of
them, and **every** request is accounted for — it either succeeds,
returns a resumable degraded ``PartialResult``, or is rejected with a
typed ``Overloaded``/``CircuitOpen`` error.  Nothing hangs, nothing is
dropped, and the computed models stay deterministic per seed for the
deterministic-choice engines (a retried request heals to exactly the
fault-free model).
"""

from __future__ import annotations

import os
import threading

from repro.core.compiler import solve_program
from repro.robust.faults import FaultInjector, FaultPlan, inject
from repro.robust.governor import Budget
from repro.robust.retry import RetryPolicy
from repro.serve import (
    DEGRADED,
    OK,
    QueryRequest,
    QueryService,
    ServiceRejection,
)

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(12)]}

#: Nightly CI raises this via REPRO_SOAK_REQUESTS for the long soak;
#: PR CI keeps the 200-request default.
N_REQUESTS = int(os.environ.get("REPRO_SOAK_REQUESTS", "200"))
N_SEEDS = 10  # request i runs seed i % N_SEEDS
N_SUBMITTERS = 8


def _expected_models():
    return {
        seed: solve_program(
            SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=seed
        ).as_dict()
        for seed in range(N_SEEDS)
    }


def test_soak_zero_lost_requests_under_faults_and_load():
    expected = _expected_models()

    # ~10% transient faults: the sorting program makes ~13 γ attempts per
    # request, so one injected error every 130th global γ visit lands on
    # roughly every tenth request.  The retry policy is generous enough
    # that exhausting it would take several consecutive faults inside one
    # request — which the 130-visit spacing makes (deterministically,
    # given the per-attempt visit count) impossible.
    injector = FaultInjector(
        [FaultPlan("engine.gamma", "error", nth=130, repeat=True)]
    )
    service = QueryService(
        workers=8,
        queue_capacity=N_REQUESTS,  # the soak measures loss, not shedding
        retry=RetryPolicy(max_attempts=8, base_delay=0.0005, max_delay=0.005),
        seed=42,
    )
    # Every request gets a small degraded quota: a few are submitted with
    # a tiny γ budget so graceful degradation is exercised *concurrently*
    # with healthy traffic and retries.
    degraded_every = 20

    tickets = [None] * N_REQUESTS
    rejections = [None] * N_REQUESTS
    barrier = threading.Barrier(N_SUBMITTERS)

    def submitter(lane: int) -> None:
        barrier.wait()
        for i in range(lane, N_REQUESTS, N_SUBMITTERS):
            budget = (
                Budget(max_gamma_steps=4) if i % degraded_every == 0 else None
            )
            request = QueryRequest(
                program=SORTING,
                facts=SORT_FACTS,
                seed=i % N_SEEDS,
                budget=budget,
            )
            try:
                tickets[i] = service.submit(request)
            except ServiceRejection as exc:
                rejections[i] = exc

    threads = [
        threading.Thread(target=submitter, args=(lane,))
        for lane in range(N_SUBMITTERS)
    ]
    try:
        with inject(injector):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads), "submitters hung"

            responses = {}
            for i, ticket in enumerate(tickets):
                if ticket is not None:
                    responses[i] = ticket.response(timeout=60.0)
    finally:
        service.close()

    # --- zero lost requests: every submission is accounted for ----------
    for i in range(N_REQUESTS):
        accounted = (rejections[i] is not None) or (i in responses)
        assert accounted, f"request {i} vanished"
        if rejections[i] is not None:
            assert isinstance(rejections[i], ServiceRejection)

    # --- every completed request is usable and deterministic ------------
    n_ok = n_degraded = 0
    for i, response in responses.items():
        assert response.status in (OK, DEGRADED), (
            f"request {i}: unexpected terminal status {response.status!r} "
            f"({response.error!r})"
        )
        if response.status == OK:
            n_ok += 1
            # Deterministic per seed: retries healed to the exact
            # fault-free model.
            assert response.database.as_dict() == expected[i % N_SEEDS], (
                f"request {i} (seed {i % N_SEEDS}) diverged after "
                f"{response.retries} retries"
            )
        else:
            n_degraded += 1
            assert response.partial is not None
            assert response.checkpoint is not None

    # The tiny-budget lanes really did degrade, the rest really ran.
    assert n_degraded >= 1
    assert n_ok >= N_REQUESTS * 0.8

    # --- the chaos actually happened ------------------------------------
    stats = service.stats()
    assert injector.fired, "no faults fired — the soak tested nothing"
    assert stats["counters"]["retries"] >= len(injector.fired) - n_degraded - 1 >= 1
    assert stats["counters"]["submitted"] == N_REQUESTS
    assert stats["counters"][OK] == n_ok
    assert stats["counters"][DEGRADED] == n_degraded


def test_degraded_soak_responses_resume_to_the_exact_model():
    """Follow-up requests carrying a soak checkpoint finish the run."""
    expected = _expected_models()
    service = QueryService(workers=4, seed=7)
    try:
        degraded = []
        for i in range(8):
            response = service.evaluate(
                QueryRequest(
                    program=SORTING,
                    facts=SORT_FACTS,
                    seed=i % N_SEEDS,
                    budget=Budget(max_gamma_steps=3 + i % 4),
                ),
                timeout=30,
            )
            assert response.status == DEGRADED
            degraded.append((i, response))
        for i, response in degraded:
            resumed = service.evaluate(
                QueryRequest(
                    program=SORTING,
                    seed=i % N_SEEDS,
                    resume_from=response.checkpoint,
                ),
                timeout=30,
            )
            assert resumed.status == OK
            assert resumed.database.as_dict() == expected[i % N_SEEDS]
    finally:
        service.close()
