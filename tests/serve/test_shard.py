"""Shard building blocks: routing, the wire codec, and one shard's
worker loop driven end-to-end through a real spawned process.

The supervisor-level properties (crash detection, restart, WAL replay,
failover) live in ``test_supervisor.py``; the full acceptance soak lives
in ``test_sharded_soak.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.compiler import solve_program
from repro.errors import BudgetExceeded
from repro.serve import (
    DEGRADED,
    FAILED,
    OK,
    SHED,
    QueryRequest,
    QueryResponse,
    ShardConfig,
    ShardedQueryService,
    ShardError,
    failover_order,
    route,
)
from repro.serve.errors import CircuitOpen, Overloaded
from repro.serve.shard import (
    _decode_database,
    _decode_error,
    _encode_database,
    _encode_error,
    decode_response,
    encode_response,
)
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(10)]}

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


class TestRouting:
    def test_route_is_stable_and_in_range(self):
        for shards in (1, 2, 3, 7):
            for klass in ("rql:deadbeef", "basic:cafe0000", "custom"):
                first = route(klass, shards)
                assert 0 <= first < shards
                assert route(klass, shards) == first

    def test_route_spreads_classes(self):
        # sha256 placement should not dump every class on one shard.
        owners = {route(f"rql:{i:08x}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_failover_order_is_a_permutation_starting_at_the_owner(self):
        order = failover_order("rql:deadbeef", 5)
        assert sorted(order) == [0, 1, 2, 3, 4]
        assert order[0] == route("rql:deadbeef", 5)
        # Ring order: each next entry is the successor mod shards.
        for a, b in zip(order, order[1:]):
            assert b == (a + 1) % 5

    def test_route_rejects_nonpositive_shard_counts(self):
        with pytest.raises(ValueError):
            route("k", 0)


class TestWireCodec:
    def test_database_round_trip_preserves_every_fact(self):
        db = solve_program(
            SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=3
        )
        decoded = _decode_database(_encode_database(db))
        assert dumps_facts(decoded) == dumps_facts(db)

    def test_ok_response_round_trip(self):
        db = solve_program(PATH, {"edge": [(1, 2), (2, 3)]}, seed=0)
        response = QueryResponse(
            request_id=7,
            status=OK,
            database=db,
            attempts=2,
            retries=1,
            latency_s=0.25,
            queue_s=0.03,
        )
        wire = encode_response(response)
        back = decode_response(7, wire)
        assert back.request_id == 7
        assert back.status == OK
        assert back.attempts == 2 and back.retries == 1
        assert back.latency_s == pytest.approx(0.25)
        assert back.queue_s == pytest.approx(0.03)
        assert dumps_facts(back.database) == dumps_facts(db)

    def test_failed_response_reconstructs_a_typed_error(self):
        response = QueryResponse(
            request_id=1,
            status=FAILED,
            error=BudgetExceeded("wall clock exhausted"),
        )
        back = decode_response(1, encode_response(response))
        assert back.status == FAILED
        assert isinstance(back.error, BudgetExceeded)
        assert "wall clock" in str(back.error)

    def test_shed_response_keeps_the_retry_hint(self):
        response = QueryResponse(
            request_id=2,
            status=SHED,
            error=Overloaded("queue full", retry_after=1.5),
        )
        back = decode_response(2, encode_response(response))
        assert isinstance(back.error, Overloaded)
        assert back.error.retry_after == pytest.approx(1.5)

    def test_circuit_open_survives_the_pipe(self):
        decoded = _decode_error(
            _encode_error(CircuitOpen("k", retry_after=0.4))
        )
        assert isinstance(decoded, CircuitOpen)
        assert decoded.retry_after == pytest.approx(0.4)

    def test_unknown_error_type_degrades_to_shard_error(self):
        decoded = _decode_error(
            {"type": "NoSuchError", "message": "boom", "retry_after": 0.0}
        )
        assert isinstance(decoded, ShardError)
        assert "NoSuchError" in str(decoded)
        assert "boom" in str(decoded)


class TestInjectableClock:
    """The worker's latency stamps come from the module-level ``_now``
    hook, so tests can pin shard-side timings instead of sleeping."""

    def test_rejection_latency_uses_the_injected_clock(self, monkeypatch):
        from repro.serve import shard

        ticks = iter([10.0, 10.25])
        monkeypatch.setattr(shard, "_now", lambda: next(ticks))
        started = shard._now()
        wire = shard._rejection_response(
            Overloaded("queue full", retry_after=1.5), started
        )
        assert wire["status"] == SHED
        assert wire["latency_s"] == pytest.approx(0.25)
        assert wire["queue_s"] == 0.0

    def test_non_rejection_errors_stamp_failed(self, monkeypatch):
        from repro.serve import shard

        monkeypatch.setattr(shard, "_now", lambda: 5.0)
        wire = shard._rejection_response(BudgetExceeded("deadline"), 4.0)
        assert wire["status"] == FAILED
        assert wire["latency_s"] == pytest.approx(1.0)
        decoded = _decode_error(wire["error"])
        assert isinstance(decoded, BudgetExceeded)


class TestShardConfig:
    def test_defaults_are_frozen(self):
        config = ShardConfig()
        assert config.workers == 1
        assert config.durable_root is None
        with pytest.raises(Exception):
            config.workers = 2  # type: ignore[misc]


class TestOneShardEndToEnd:
    def test_requests_route_to_real_processes_and_come_back(self):
        service = ShardedQueryService(shards=2, heartbeat_interval=0.03)
        try:
            expected = {
                seed: dumps_facts(
                    solve_program(
                        SORTING,
                        {k: list(v) for k, v in SORT_FACTS.items()},
                        seed=seed,
                    )
                )
                for seed in range(4)
            }
            tickets = [
                (seed, service.submit(QueryRequest(SORTING, SORT_FACTS, seed=seed)))
                for seed in range(4)
            ]
            for seed, ticket in tickets:
                response = ticket.response(timeout=60)
                assert response.status == OK
                assert dumps_facts(response.database) == expected[seed]
            stats = service.stats()
            assert stats["counters"]["ok"] == 4
            assert stats["pending"] == 0
        finally:
            service.close()
        assert all(s["state"] == "stopped" for s in service.stats()["shards"].values())

    def test_evaluate_degraded_result_crosses_the_pipe(self):
        service = ShardedQueryService(
            shards=1,
            heartbeat_interval=0.03,
            default_budget_wall_clock=None,
        )
        try:
            from repro.robust.governor import Budget

            response = service.evaluate(
                QueryRequest(
                    "nat(0). nat(Y) <- nat(X), Y = X + 1.",
                    {},
                    seed=0,
                    budget=Budget(max_facts=64),
                ),
                timeout=60,
            )
            assert response.status == DEGRADED
            # The checkpoint crossed the pipe and is resumable locally.
            assert response.checkpoint is not None
        finally:
            service.close()

    def test_close_is_idempotent_and_context_manager_works(self):
        with ShardedQueryService(shards=1, heartbeat_interval=0.03) as service:
            assert service.evaluate(
                QueryRequest(PATH, {"edge": [(1, 2)]}), timeout=60
            ).status == OK
        service.close()  # second close is a no-op


class TestPipeBatching:
    """The ``("batch", [...])`` envelope coalesces a poll-loop pass into
    one pipe write.  Correctness of the unwrap is exercised by every
    other test in this directory (batching is the default); this class
    pins the *throughput* claim — batching must not lose to the
    one-send-per-message control — and that the flag actually reaches
    the worker."""

    N_REQUESTS = 80

    @classmethod
    def _pipelined_elapsed(cls, pipe_batch: bool) -> float:
        service = ShardedQueryService(
            shards=1,
            queue_capacity=cls.N_REQUESTS + 16,
            heartbeat_interval=0.03,
            pipe_batch=pipe_batch,
        )
        try:
            # Warm-up pays the spawn/import cost outside the timed window.
            assert (
                service.evaluate(QueryRequest(SORTING, SORT_FACTS), timeout=60).status
                == OK
            )
            start = time.perf_counter()
            tickets = [
                service.submit(QueryRequest(SORTING, SORT_FACTS, seed=i % 5))
                for i in range(cls.N_REQUESTS)
            ]
            for ticket in tickets:
                assert ticket.response(timeout=120).status == OK
            return time.perf_counter() - start
        finally:
            service.close()

    def test_batching_does_not_regress_pipelined_throughput(self):
        unbatched = self._pipelined_elapsed(False)
        batched = self._pipelined_elapsed(True)
        # Generous bound for noisy CI: batching must be in the same
        # league, not provably faster on every machine.
        assert batched <= unbatched * 1.75 + 0.25, (batched, unbatched)

    def test_pipe_batch_flag_reaches_the_worker_config(self):
        for flag in (True, False):
            service = ShardedQueryService(
                shards=1, heartbeat_interval=0.03, pipe_batch=flag
            )
            try:
                assert service._shards[0].handle.config.pipe_batch is flag
            finally:
                service.close()
