"""Replication soak: zero lost requests when every SIGKILL forces a
hot-standby promotion, plus the fencing post-mortem.

The acceptance property from the issue: a multi-thousand-request soak
against a replicated front door (``replicas=1``, ``max_restarts=0`` so a
crash with a warm standby can never be papered over by a restart —
promotion is the recovery path), with confirmed primary SIGKILLs landing
mid-stream.  Every request must still resolve ``ok`` with a model
byte-identical to the unsharded oracle, and afterwards a resurrected
ex-primary on its old WAL slot must provably refuse to publish
(``("fenced", ...)`` before it so much as opens its store).

The killer only shoots a primary whose standby is warm, and each kill is
confirmed by the shard's fencing token bumping before it counts; a kill
that loses the warm/crash race (the supervisor defers promotion and
grace-restarts instead) is retried until the milestone's promotion
lands, so ``N_KILLS`` means exactly that many observed promotions.  Any
*incidental* crash — e.g. a worker declared hung under CI load while its
post-promotion standby is still syncing — must never park a shard: the
deferred-promotion grace keeps it serving, and ``failed_shards`` staying
at zero is asserted.

Sizing: PR CI runs ``REPRO_REPL_SOAK_REQUESTS`` (default 1000) with
``REPRO_REPL_KILLS`` (default 3) promotions; nightly raises both via the
same knobs.  ``REPRO_REPL_ARTIFACT_DIR`` preserves the WAL directory for
upload when the invariant fails.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import shutil
import signal
import threading
import time

from repro.core.compiler import solve_program
from repro.durable import fence_path, read_fence_token
from repro.serve import (
    OK,
    QueryRequest,
    ShardConfig,
    ShardDown,
    ShardedQueryService,
)
from repro.serve.routing import WAL_SLOTS, wal_slot
from repro.serve.shard import shard_worker_main
from repro.storage.io import dumps_facts

SORTING = """
sp(nil, nil, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

SORT_FACTS = {"p": [(f"v{i}", (37 * i) % 101) for i in range(10)]}

N_REQUESTS = int(os.environ.get("REPRO_REPL_SOAK_REQUESTS", "1000"))
N_KILLS = int(os.environ.get("REPRO_REPL_KILLS", "3"))
N_SHARDS = 2
N_SEEDS = 10  # request i runs seed i % N_SEEDS
N_SUBMITTERS = 4

#: When set (nightly CI), the WAL directory is copied here on failure so
#: both replica slots of every shard can be uploaded as an artifact.
ARTIFACT_DIR = os.environ.get("REPRO_REPL_ARTIFACT_DIR")


def _expected_models():
    return {
        seed: dumps_facts(
            solve_program(
                SORTING, {k: list(v) for k, v in SORT_FACTS.items()}, seed=seed
            )
        )
        for seed in range(N_SEEDS)
    }


def _prove_zombie_is_fenced(wal_root: str, shard_id: int, old_slot: str):
    """Resurrect a worker on the promoted shard's *old* WAL slot with a
    stale token and return the messages it managed to publish.  The
    fence check precedes the store open, so this is exactly what the
    dead ex-primary would see if its process came back."""
    config = ShardConfig(
        workers=1,
        durable_root=wal_root,
        wal_name=wal_slot(shard_id, old_slot),
        fence_token=0,
        fence_file=fence_path(wal_root, shard_id),
    )
    parent, child = multiprocessing.Pipe()
    thread = threading.Thread(
        target=shard_worker_main, args=(shard_id, child, config), daemon=True
    )
    thread.start()
    thread.join(timeout=60)
    assert not thread.is_alive(), "resurrected ex-primary refused to stop"
    # Keep whatever was read before the worker's end-of-pipe: the
    # EOFError lands on the poll *after* the buffered messages.
    messages = []
    try:
        while parent.poll(0.1 if not messages else 0.0):
            message = parent.recv()
            if message and message[0] == "batch":
                messages.extend(message[1])
            else:
                messages.append(message)
    except (EOFError, OSError):
        pass
    return messages


def test_replication_soak_every_kill_promotes_zero_lost(tmp_path):
    expected = _expected_models()
    wal_root = tmp_path / "wal"
    service = ShardedQueryService(
        shards=N_SHARDS,
        queue_capacity=N_REQUESTS + 100,
        durable_dir=str(wal_root),
        replicas=1,
        heartbeat_interval=0.03,
        # A saturated CI core can starve a healthy worker for seconds;
        # the default hung trigger (40 missed pings = 1.2s here) would
        # add spurious kills on top of the deliberate ones.
        miss_limit=200,
        restart_backoff=0.05,
        max_backoff=0.5,
        max_restarts=0,  # a kill with a warm standby must promote
        stable_after=0.2,
        start_timeout=120,
    )
    tickets = [None] * N_REQUESTS
    errors = []
    rng = random.Random(0xFE11CE)
    promotions_observed = []  # (shard_id, old_slot, new_token)
    submitted = [0]
    submitted_lock = threading.Lock()

    def submitter(lane: int) -> None:
        try:
            for i in range(lane, N_REQUESTS, N_SUBMITTERS):
                request = QueryRequest(SORTING, SORT_FACTS, seed=i % N_SEEDS)
                while True:
                    try:
                        tickets[i] = service.submit(request)
                        break
                    except ShardDown as exc:
                        time.sleep(max(0.02, min(exc.retry_after, 0.25)))
                with submitted_lock:
                    submitted[0] += 1
        except Exception as exc:  # pragma: no cover - diagnostic path
            errors.append((lane, exc))

    def killer() -> None:
        # One confirmed promotion per evenly spaced submission milestone.
        # A victim qualifies only while up with a *warm* standby, and the
        # kill is confirmed by its fencing token bumping — under
        # max_restarts=0 that bump can only come from a promotion.
        try:
            for k in range(N_KILLS):
                mark = (k + 1) * N_REQUESTS // (N_KILLS + 1)
                while True:
                    with submitted_lock:
                        count = submitted[0]
                    if count >= mark:
                        break
                    time.sleep(0.005)
                deadline = time.monotonic() + 240
                prefer_busy_until = time.monotonic() + 60
                while time.monotonic() < deadline:
                    candidates = [
                        s
                        for s in service._shards
                        if s.state == "up"
                        and s.pid
                        and s.handle.alive()
                        and s.standby_state == "warm"
                    ]
                    if not candidates:
                        time.sleep(0.01)
                        continue
                    # Prefer a victim with in-flight work: a kill that
                    # lands on a drained shard proves promotion but not
                    # the replay/resend half of the zero-loss argument.
                    with service._pending_lock:
                        owned = {e.shard_id for e in service._pending.values()}
                    busy = [
                        s for s in candidates if s.handle.shard_id in owned
                    ]
                    if not busy and time.monotonic() < prefer_busy_until:
                        time.sleep(0.002)
                        continue
                    victim = rng.choice(busy or candidates)
                    token_before = victim.fence_token
                    old_slot = victim.slot
                    try:
                        os.kill(victim.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        continue
                    confirm_by = min(deadline, time.monotonic() + 30)
                    while (
                        time.monotonic() < confirm_by
                        and victim.fence_token == token_before
                    ):
                        time.sleep(0.01)
                    if victim.fence_token > token_before:
                        promotions_observed.append(
                            (victim.handle.shard_id, old_slot, victim.fence_token)
                        )
                        break
                    # The warm check lost the race against the crash
                    # handler (the supervisor deferred promotion and
                    # grace-restarted instead): this kill does not
                    # count — pick another victim.
        except Exception as exc:  # pragma: no cover - diagnostic path
            errors.append(("killer", exc))

    try:
        threads = [
            threading.Thread(target=submitter, args=(lane,), name=f"submit-{lane}")
            for lane in range(N_SUBMITTERS)
        ]
        threads.append(threading.Thread(target=killer, name="killer"))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors

        lost = []
        wrong = []
        for i, ticket in enumerate(tickets):
            assert ticket is not None, f"request {i} was never submitted"
            try:
                response = ticket.response(timeout=300)
            except TimeoutError:
                lost.append(i)
                continue
            if response.status != OK:
                lost.append((i, response.status, str(response.error)))
                continue
            if dumps_facts(response.database) != expected[i % N_SEEDS]:
                wrong.append(i)

        counters = service.stats()["counters"]
        try:
            assert lost == [], f"lost/failed requests: {lost[:10]} (counters={counters})"
            assert wrong == [], f"non-deterministic models for: {wrong[:10]}"
            assert len(promotions_observed) == N_KILLS, (
                f"only {promotions_observed} promotions landed (counters={counters})"
            )
            assert counters["promotions"] >= N_KILLS
            assert counters["crashes"] >= N_KILLS
            # Deferred-promotion grace means incidental crashes (a hung
            # verdict under CI load while the fresh standby still syncs)
            # restart rather than park — but no shard may ever be lost.
            assert counters.get("failed_shards", 0) == 0, counters
            assert counters["repl_shipped"] >= 1
            # Journalled work survived the hand-offs: the promoted
            # standbys replayed their replica logs and/or the front door
            # resent what died in the pipe.
            assert counters.get("recovered", 0) + counters.get("resent", 0) >= 1, counters
        except AssertionError:
            if ARTIFACT_DIR:
                target = os.path.join(ARTIFACT_DIR, f"repl-soak-{os.getpid()}")
                shutil.copytree(str(wal_root), target, dirs_exist_ok=True)
            raise
    finally:
        service.close()

    # Post-mortem 1: the fencing proof.  For every promotion, bring the
    # dead ex-primary back on its old slot with its stale token: it must
    # report ("fenced", <current token>, 0) and publish nothing else —
    # not even "ready".
    assert promotions_observed, "soak ended without a single promotion"
    for shard_id, old_slot, _token in promotions_observed:
        current = read_fence_token(fence_path(str(wal_root), shard_id))
        assert current >= 1
        messages = _prove_zombie_is_fenced(str(wal_root), shard_id, old_slot)
        assert ("fenced", current, 0) in messages, messages
        assert all(m[0] == "fenced" for m in messages), messages

    # Post-mortem 2: every replica slot that exists is intact and owned
    # by nobody — each one opens (exclusively) as a real store.
    from repro.durable import CheckpointStore

    for shard_id in range(N_SHARDS):
        for slot in WAL_SLOTS:
            root = os.path.join(str(wal_root), wal_slot(shard_id, slot))
            if not os.path.isdir(root):
                continue
            store = CheckpointStore(root, exclusive=True)
            store.close()
