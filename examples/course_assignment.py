"""The paper's Section 2 running example, end to end: enrolments,
choice-based assignment, extrema queries, and the stable-model semantics
behind them.

Run with::

    python examples/course_assignment.py
"""

from repro import enumerate_choice_models, parse_program, verify_engine_output
from repro.core.rewriting import rewrite_program
from repro.programs import (
    assign_students,
    bi_injective_bottom_pairs,
    bottom_students,
)
from repro.programs import texts

TAKES = [
    ("andy", "engl", 4),
    ("mark", "engl", 2),
    ("ann", "math", 3),
    ("mark", "math", 2),
]
PAIRS = [(student, course) for student, course, _ in TAKES]

# -- Example 1: one student per course, one course per student --------------

print("Example 1 — choice(Crs, St), choice(St, Crs):")
for seed in (0, 1, 2):
    print(f"    seed {seed}:", assign_students(PAIRS, seed=seed))

models = enumerate_choice_models(texts.EXAMPLE1_ASSIGNMENT, facts={"takes": PAIRS})
print(f"    the program has exactly {len(models)} choice models (the paper's M1-M3)")

# -- Extrema: least grade above 1, per course --------------------------------

print("\nbttm_st — least(G, Crs) over grades > 1:")
for row in bottom_students(TAKES):
    print("   ", row)

# -- choice + least combined -------------------------------------------------

print("\nbi_st_c — bi-injective pairs among the bottom grades:")
seen = set()
for seed in range(12):
    seen.add(tuple(bi_injective_bottom_pairs(TAKES, seed=seed)))
for model in sorted(seen):
    print("   ", list(model))
print("    (exactly the paper's two stable models)")

# -- Under the hood: the first-order rewriting --------------------------------

print("\nthe choice rule rewritten into negation (Example 2):")
rewritten = rewrite_program(parse_program(texts.EXAMPLE1_ASSIGNMENT))
for rule in rewritten.rules:
    print("   ", rule)

program = parse_program(texts.EXAMPLE1_ASSIGNMENT)
print(
    "\nevery enumerated model passes the Gelfond-Lifschitz check:",
    all(verify_engine_output(program, m) for m in models),
)
