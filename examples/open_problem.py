"""The paper's closing open problem, live: when may ``least`` be pushed
into a choice program?

Section 7 specifies minimum-cost matching naively — enumerate the choice
models, keep the cheapest — and asks when that specification compiles
into the greedy program of Example 7.  This example runs all three
pieces: the brute-force specification, the syntactic matroid
certificates, and the licensed (or forced) transformation.

Run with::

    python examples/open_problem.py
"""

from repro.core.matroid_check import certify_greedy_exactness, push_least
from repro.core.compiler import solve_program
from repro.programs import texts
from repro.semantics.optimize import model_objective, optimal_choice_models

ARCS = [("a", "x", 4), ("a", "y", 1), ("b", "x", 2), ("b", "z", 7)]
OBJECTIVE = model_objective("matching", 4, 2)

SINGLE_FD = """
matching(nil, nil, 0, 0).
matching(X, Y, C, I) <- next(I), g(X, Y, C), choice(X, Y).
"""

# -- 1. The naive specification: enumerate, then post-select ----------------

best, models = optimal_choice_models(
    SINGLE_FD, facts={"g": ARCS}, objective=OBJECTIVE
)
print(f"specification optimum (enumerated {len(models)} optimal model(s)): {best}")

# -- 2. The certificate ------------------------------------------------------

(certificate,) = certify_greedy_exactness(SINGLE_FD)
print(f"\ncertificate: {certificate.verdict}")
print(f"  {certificate.reason}")

# -- 3. The licensed compilation ---------------------------------------------

greedy_program = push_least(SINGLE_FD, "C")
db = solve_program(greedy_program, facts={"g": ARCS}, seed=0)
greedy = sum(f[2] for f in db.facts("matching", 4) if f[3] > 0)
print(f"\ncompiled greedy result: {greedy}  (equals the optimum: {greedy == best})")

# -- 4. Where the certificate refuses: Example 7's two FDs -------------------

(two_fd,) = certify_greedy_exactness(texts.NAIVE_MATCHING)
print(f"\ntwo-FD matching certificate: {two_fd.verdict}")
print(f"  {two_fd.reason}")

adversarial = [("a", "x", 10), ("a", "y", 9), ("b", "x", 9)]
best2, _ = optimal_choice_models(
    texts.NAIVE_MATCHING,
    facts={"g": adversarial},
    objective=OBJECTIVE,
    maximize=True,
)
forced = push_least(texts.NAIVE_MATCHING, "C", minimize=False, require_certificate=False)
db2 = solve_program(forced, facts={"g": adversarial}, seed=0)
greedy2 = sum(f[2] for f in db2.facts("matching", 4) if f[3] > 0)
print(f"  specification optimum {best2} vs forced greedy {greedy2} "
      f"— greedy misses it, as the refusal predicted")
