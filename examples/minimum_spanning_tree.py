"""Minimum spanning trees three ways: declarative Prim (Example 4),
declarative Kruskal (Example 8), and the procedural baselines.

The scenario: laying fibre between campus buildings at minimum trenching
cost.  Run with::

    python examples/minimum_spanning_tree.py
"""

from repro.baselines import kruskal_mst as procedural_kruskal
from repro.baselines import prim_mst as procedural_prim
from repro.programs import kruskal_mst, prim_mst, spanning_tree

# Trenching costs between buildings (metres of dig, say).
CAMPUS = [
    ("library", "physics", 120),
    ("library", "dorms", 85),
    ("physics", "dorms", 200),
    ("physics", "chemistry", 60),
    ("chemistry", "dorms", 150),
    ("chemistry", "cafeteria", 95),
    ("cafeteria", "dorms", 70),
    ("cafeteria", "gym", 110),
    ("gym", "library", 250),
]

print("campus graph:", len(CAMPUS), "possible trenches\n")

# -- Example 4: Prim, growing the tree from the library --------------------

prim = prim_mst(CAMPUS, source="library", seed=0)
print("Prim (declarative, (R,Q,L)-backed):")
for parent, child, cost in prim.edges:
    print(f"    {parent:10s} -> {child:10s}  {cost:4d}")
print(f"    total: {prim.total_cost}\n")

# -- Example 8: Kruskal, with declarative component relabelling ------------

kruskal = kruskal_mst(CAMPUS, seed=0)
print("Kruskal (declarative, extended stage class):")
for u, v, cost in kruskal.edges:
    print(f"    {u:10s} -- {v:10s}  {cost:4d}")
print(f"    total: {kruskal.total_cost}\n")

# -- Procedural cross-check -------------------------------------------------

_, prim_cost = procedural_prim(CAMPUS, "library")
_, kruskal_cost = procedural_kruskal(CAMPUS)
print("procedural Prim total:   ", prim_cost)
print("procedural Kruskal total:", kruskal_cost)
assert prim.total_cost == kruskal.total_cost == prim_cost == kruskal_cost

# -- Example 3: any spanning tree (non-deterministic) -----------------------

print("\nthree arbitrary spanning trees (Example 3, different seeds):")
for seed in range(3):
    tree = spanning_tree(CAMPUS, "library", seed=seed, engine="basic")
    print(f"    seed {seed}: cost {tree.total_cost}")
