"""Text compression with the declarative Huffman program (Example 6).

The Huffman tree is built by the stage-stratified program — ``t(X, Y)``
function terms, a computed stage ``I = max(J, K)`` and two choice FDs —
then used as a real prefix code.  Run with::

    python examples/huffman_compression.py
"""

from collections import Counter

from repro.baselines import huffman_tree as procedural_huffman
from repro.programs.huffman import decode, encode, huffman_codes, huffman_tree

TEXT = (
    "the greedy paradigm of algorithm design is a well known tool used for "
    "efficiently solving many classical computational problems within the "
    "framework of procedural languages"
)

frequencies = dict(Counter(TEXT))
print(f"corpus: {len(TEXT)} characters, {len(frequencies)} distinct symbols")

# Build the tree declaratively and read off the codes.
result = huffman_tree(frequencies, seed=0)
codes = huffman_codes(frequencies, seed=0)

print(f"weighted path length (declarative): {result.weighted_path_length}")
_, optimal = procedural_huffman(frequencies)
print(f"weighted path length (procedural):  {optimal}")
assert result.weighted_path_length == optimal

print("\nmost frequent symbols get the shortest codes:")
for symbol, _ in Counter(TEXT).most_common(5):
    display = repr(symbol) if symbol == " " else symbol
    print(f"    {display!s:5s} freq {frequencies[symbol]:3d}  code {codes[symbol]}")

# Compress, measure, and round-trip.
bits = encode(TEXT, codes)
fixed_width = len(TEXT) * 8
print(f"\nencoded size: {len(bits)} bits (vs {fixed_width} bits at 8-bit chars)")
print(f"compression ratio: {len(bits) / fixed_width:.2%}")

roundtrip = "".join(decode(bits, codes))
assert roundtrip == TEXT
print("decode round-trip: OK")
