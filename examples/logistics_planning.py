"""A small logistics scenario combining three greedy programs:

1. route costs from the depot by declarative Dijkstra;
2. a delivery tour approximated by the greedy TSP chain (Section 5);
3. a driver shift packed by activity selection.

Run with::

    python examples/logistics_planning.py
"""

import itertools

from repro.programs import (
    dijkstra_distances,
    greedy_tsp_chain,
    select_activities,
)

# Road network: (from, to, minutes), undirected.
ROADS = [
    ("depot", "north", 12),
    ("depot", "river", 7),
    ("river", "north", 4),
    ("river", "market", 9),
    ("market", "north", 15),
    ("market", "east", 6),
    ("east", "north", 20),
    ("depot", "east", 18),
]

# -- 1. How far is every district from the depot? ---------------------------

distances = dijkstra_distances(ROADS, "depot", seed=0)
print("travel minutes from the depot (declarative Dijkstra):")
for place, minutes in sorted(distances.items(), key=lambda kv: kv[1]):
    print(f"    {place:8s} {minutes:3d}")

# -- 2. A delivery tour over the complete distance matrix -------------------

stops = sorted(distances)
matrix = []
for a, b in itertools.permutations(stops, 2):
    # Straight-line tour costs derived from the shortest-path metric.
    matrix.append((a, b, abs(distances[a] - distances[b]) + 5))
tour = greedy_tsp_chain(matrix, seed=0)
print("\ngreedy delivery chain (Section 5 sub-optimal TSP):")
print("    " + " -> ".join(tour.path()))
print(f"    total cost {tour.total_cost}, visits all stops:",
      tour.is_hamiltonian_path(len(stops)))

# -- 3. Pack the driver's shift with deliveries ------------------------------

REQUESTS = [
    ("bakery", 8, 9),
    ("florist", 8, 11),
    ("pharmacy", 9, 10),
    ("grocer", 10, 12),
    ("bookshop", 11, 13),
    ("butcher", 12, 14),
    ("cafe", 13, 14),
]
selected = select_activities(REQUESTS, seed=0)
print("\nshift plan (earliest-finish-first activity selection):")
for job in selected:
    print(f"    {job.name:9s} {job.start:2d}:00 - {job.finish:2d}:00")
print(f"    {len(selected)} of {len(REQUESTS)} requests served")
