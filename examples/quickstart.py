"""Quickstart: declarative greedy algorithms in five minutes.

Run with::

    python examples/quickstart.py
"""

from repro import (
    compile_program,
    enumerate_choice_models,
    parse_program,
    solve_program,
    verify_engine_output,
)

# ---------------------------------------------------------------------------
# 1. A stage program: sort a relation by selecting the least-cost tuple at
#    each stage (the paper's Example 5).
# ---------------------------------------------------------------------------

SORTING = """
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
"""

db = solve_program(
    SORTING,
    facts={"p": [("pluto", 3), ("mars", 1), ("venus", 2)]},
    seed=0,
)
print("sorted relation (name, cost, stage):")
for fact in sorted(db.facts("sp", 3), key=lambda f: f[2]):
    print("   ", fact)

# ---------------------------------------------------------------------------
# 2. Compile-time analysis: the program is recognised as stage-stratified
#    (Section 4), which is what licenses the greedy evaluation.
# ---------------------------------------------------------------------------

compiled = compile_program(SORTING)
print("\nstage-stratified:", compiled.is_stage_stratified)
report = compiled.analysis.report_for("sp", 3)
print("clique kind:", report.kind, "| stage argument:", report.stage_positions)

# ---------------------------------------------------------------------------
# 3. Non-determinism: the choice construct (Example 1).  Different seeds
#    reach different stable models; enumerate_choice_models finds them all.
# ---------------------------------------------------------------------------

ASSIGNMENT = """
a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).
"""
takes = [("andy", "engl"), ("mark", "engl"), ("ann", "math"), ("mark", "math")]

print("\nall choice models of the assignment program:")
for model in enumerate_choice_models(ASSIGNMENT, facts={"takes": takes}):
    print("   ", sorted(model.facts("a_st", 2)))

# ---------------------------------------------------------------------------
# 4. Semantics, mechanically: every engine output is a stable model of the
#    rewritten program (Theorem 1).
# ---------------------------------------------------------------------------

program = parse_program(ASSIGNMENT)
model = solve_program(ASSIGNMENT, facts={"takes": takes}, seed=1, engine="choice")
print("\nengine output:", sorted(model.facts("a_st", 2)))
print("is a stable model of the rewritten program:", verify_engine_output(program, model))
