# Greedy by Choice — developer targets

.PHONY: install test bench bench-tables examples docs-check all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples OK"

all: test bench examples
