# Greedy by Choice — developer targets

PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install lint test bench bench-tables bench-regression bench-regression-baseline examples docs-check all

install:
	pip install -e . --no-build-isolation

lint:
	ruff check src/ tests/ benchmarks/ examples/

test:
	$(PYTHONPATH_SRC) python -m pytest tests/

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only -s

bench-regression:
	$(PYTHONPATH_SRC) python -m repro.bench.regression --check

bench-regression-baseline:
	$(PYTHONPATH_SRC) python -m repro.bench.regression

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHONPATH_SRC) python $$f > /dev/null || exit 1; done; echo "all examples OK"

all: test bench examples
