"""Standard matroid constructions, plus the non-matroid system that makes
bipartite matching greedy inexact."""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, Mapping, Tuple

from repro.matroids.matroid import IndependenceSystem, Matroid
from repro.storage.unionfind import UnionFind

__all__ = [
    "UniformMatroid",
    "PartitionMatroid",
    "GraphicMatroid",
    "TransversalLikeSystem",
    "DualMatroid",
]


class UniformMatroid(Matroid):
    """``U(n, k)``: independent = at most *k* elements."""

    def __init__(self, ground_set: Iterable[Hashable], k: int):
        super().__init__(ground_set)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def is_independent(self, subset: AbstractSet[Hashable]) -> bool:
        return len(subset) <= self.k and subset <= self.ground_set


class PartitionMatroid(Matroid):
    """Independent = at most ``capacity[block]`` elements per block.

    The paper (Section 7) notes that the matching program "corresponds to
    a partition matroid": arcs partitioned by source (capacity 1) form
    one; by target, another.  The matching constraint is their
    intersection — see :class:`TransversalLikeSystem`.
    """

    def __init__(
        self,
        blocks: Mapping[Hashable, Hashable],
        capacities: Mapping[Hashable, int] | int = 1,
    ):
        super().__init__(blocks.keys())
        self._block_of: Dict[Hashable, Hashable] = dict(blocks)
        if isinstance(capacities, int):
            self._capacity = {b: capacities for b in set(blocks.values())}
        else:
            self._capacity = dict(capacities)

    def is_independent(self, subset: AbstractSet[Hashable]) -> bool:
        counts: Dict[Hashable, int] = {}
        for element in subset:
            block = self._block_of.get(element)
            if block is None:
                return False
            counts[block] = counts.get(block, 0) + 1
            if counts[block] > self._capacity.get(block, 0):
                return False
        return True


class GraphicMatroid(Matroid):
    """Ground set = edges; independent = acyclic (forests).

    Kruskal's algorithm is exactly matroid greedy on this matroid, which
    is why Example 8's greedy is optimal.
    """

    def __init__(self, edges: Iterable[Tuple[Hashable, Hashable]]):
        self._edges: Dict[Hashable, Tuple[Hashable, Hashable]] = {}
        for edge in edges:
            u, v = edge
            self._edges[(u, v)] = (u, v)
        super().__init__(self._edges.keys())

    def is_independent(self, subset: AbstractSet) -> bool:
        uf = UnionFind()
        for edge in subset:
            if edge not in self._edges:
                return False
            u, v = self._edges[edge]
            if not uf.union(u, v):
                return False
        return True


class TransversalLikeSystem(IndependenceSystem):
    """The *intersection* of two partition matroids: arc sets using each
    source at most once and each target at most once (matchings).

    This is an independence system but **not** a matroid in general —
    exactly why greedy matching (Example 7) is maximal but not always
    minimum-cost, while greedy on the single partition matroid is exact.
    :func:`repro.matroids.matroid.is_matroid` demonstrates the failure on
    small instances in the test suite.
    """

    def __init__(self, arcs: Iterable[Tuple[Hashable, Hashable]]):
        self._arcs = {(x, y): (x, y) for x, y in arcs}
        super().__init__(self._arcs.keys())

    def is_independent(self, subset: AbstractSet) -> bool:
        sources = set()
        targets = set()
        for arc in subset:
            if arc not in self._arcs:
                return False
            x, y = self._arcs[arc]
            if x in sources or y in targets:
                return False
            sources.add(x)
            targets.add(y)
        return True


class DualMatroid(Matroid):
    """The dual of a matroid: independent = contained in the complement
    of some basis of the primal.

    Implemented via the primal's rank oracle (exponential ``bases`` is
    avoided): ``S`` is independent in ``M*`` iff the primal rank of the
    complement of ``S`` equals the primal rank — removing ``S`` must not
    disconnect any basis.
    """

    def __init__(self, primal: Matroid):
        super().__init__(primal.ground_set)
        self.primal = primal
        self._primal_rank = self._rank_of(primal.ground_set)

    def _rank_of(self, subset) -> int:
        current: set = set()
        for element in sorted(subset, key=repr):
            if self.primal.is_independent(current | {element}):
                current.add(element)
        return len(current)

    def is_independent(self, subset: AbstractSet) -> bool:
        if not subset <= self.ground_set:
            return False
        return self._rank_of(self.ground_set - set(subset)) == self._primal_rank
