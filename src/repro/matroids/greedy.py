"""The generic matroid greedy algorithm.

The Rado–Edmonds theorem: greedy (scan elements by weight, keep those
preserving independence) returns a maximum-weight basis for every weight
function **iff** the independence system is a matroid.  Test
``tests/matroids`` exercises both directions; benchmark E9 measures the
greedy against brute force.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Mapping, Set

from repro.datalog.builtins import order_key
from repro.matroids.matroid import IndependenceSystem

__all__ = ["greedy_basis", "greedy_max_weight", "greedy_min_weight"]


def greedy_basis(
    system: IndependenceSystem,
    weights: Mapping[Hashable, Any],
    maximize: bool = True,
) -> List[Hashable]:
    """Greedy over *system*: consider elements in weight order and keep
    each one that preserves independence.

    For a matroid this returns an optimum basis (maximum- or
    minimum-weight depending on *maximize*); for a general independence
    system it returns a maximal set with no optimality guarantee.
    """
    ordered = sorted(
        system.ground_set,
        key=lambda e: (order_key(weights[e]), repr(e)),
        reverse=maximize,
    )
    if maximize:
        # reverse=True also reversed the repr tiebreak; re-sort stably.
        ordered = sorted(
            system.ground_set, key=lambda e: (_neg(order_key(weights[e])), repr(e))
        )
    chosen: Set[Hashable] = set()
    result: List[Hashable] = []
    for element in ordered:
        if system.is_independent(chosen | {element}):
            chosen.add(element)
            result.append(element)
    return result


class _neg:
    """Order-reversing wrapper over :func:`order_key` results."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_neg") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _neg) and other.key == self.key


def greedy_max_weight(
    system: IndependenceSystem, weights: Mapping[Hashable, Any]
) -> List[Hashable]:
    """Maximum-weight greedy basis (optimal on matroids)."""
    return greedy_basis(system, weights, maximize=True)


def greedy_min_weight(
    system: IndependenceSystem, weights: Mapping[Hashable, Any]
) -> List[Hashable]:
    """Minimum-weight greedy basis (e.g. Kruskal on the graphic matroid)."""
    return greedy_basis(system, weights, maximize=False)
