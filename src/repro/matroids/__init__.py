"""Matroid theory — the Section 7 connection.

The paper's conclusion observes that the greedy programs correspond to
matroid optimisation (the matching program to a *partition matroid*,
Kruskal to the *graphic matroid*) and leaves open "simple sufficient
conditions for the propagation of least into stage stratified programs
based on Matroid Theory".  This subpackage supplies the machinery to
explore that: independence systems with oracle-checked axioms, the
standard matroid constructions, the generic greedy algorithm, and the
exactness theorem (greedy is optimal on every matroid, and only on
matroids) exercised by the test suite and benchmark E9.
"""

from repro.matroids.greedy import greedy_basis, greedy_max_weight, greedy_min_weight
from repro.matroids.matroid import IndependenceSystem, Matroid, is_matroid
from repro.matroids.standard import (
    DualMatroid,
    GraphicMatroid,
    PartitionMatroid,
    TransversalLikeSystem,
    UniformMatroid,
)

__all__ = [
    "DualMatroid",
    "GraphicMatroid",
    "IndependenceSystem",
    "Matroid",
    "PartitionMatroid",
    "TransversalLikeSystem",
    "UniformMatroid",
    "greedy_basis",
    "greedy_max_weight",
    "greedy_min_weight",
    "is_matroid",
]
