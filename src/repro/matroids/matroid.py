"""Independence systems and matroids with oracle-checked axioms."""

from __future__ import annotations

import itertools
from typing import AbstractSet, FrozenSet, Hashable, Iterable, Set

__all__ = ["IndependenceSystem", "Matroid", "is_matroid"]


class IndependenceSystem:
    """A finite ground set with a downward-closed family of independent
    sets, given by an oracle.

    Subclasses implement :meth:`is_independent`; everything else (rank,
    bases, circuits) is derived.  All derived enumeration is exponential —
    it exists for validation on small instances, not for optimisation
    (use :mod:`repro.matroids.greedy` for that).
    """

    def __init__(self, ground_set: Iterable[Hashable]):
        self._ground: FrozenSet[Hashable] = frozenset(ground_set)

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: AbstractSet[Hashable]) -> bool:
        """Oracle: whether *subset* is independent."""
        raise NotImplementedError

    # -- derived notions -----------------------------------------------------

    def rank(self) -> int:
        """Size of a maximum independent set (via greedy extension — valid
        for matroids; for general independence systems it is the size of a
        *maximal* set found greedily)."""
        current: Set[Hashable] = set()
        for element in sorted(self._ground, key=repr):
            if self.is_independent(current | {element}):
                current.add(element)
        return len(current)

    def bases(self) -> Set[FrozenSet[Hashable]]:
        """All maximal independent sets (exponential; small instances)."""
        independents = self.independent_sets()
        maximal: Set[FrozenSet[Hashable]] = set()
        for s in independents:
            if not any(s < t for t in independents):
                maximal.add(s)
        return maximal

    def independent_sets(self) -> Set[FrozenSet[Hashable]]:
        """All independent sets (exponential; small instances)."""
        out: Set[FrozenSet[Hashable]] = set()
        elements = sorted(self._ground, key=repr)
        for r in range(len(elements) + 1):
            for combo in itertools.combinations(elements, r):
                if self.is_independent(set(combo)):
                    out.add(frozenset(combo))
        return out


class Matroid(IndependenceSystem):
    """Marker base class for systems claimed to satisfy the matroid
    axioms; :func:`is_matroid` verifies the claim on small instances."""


def is_matroid(system: IndependenceSystem) -> bool:
    """Brute-force check of the matroid axioms.

    1. The empty set is independent.
    2. Downward closure: subsets of independent sets are independent.
    3. Exchange: if ``|A| < |B|`` are independent, some ``b ∈ B - A``
       keeps ``A + b`` independent.

    Exponential in the ground set — intended for ground sets of at most a
    dozen elements (tests, benchmark E9 validation).
    """
    if not system.is_independent(set()):
        return False
    independents = system.independent_sets()
    for s in independents:
        for element in s:
            if frozenset(s - {element}) not in independents:
                return False
    for a in independents:
        for b in independents:
            if len(a) < len(b):
                if not any(
                    frozenset(a | {x}) in independents for x in b - a
                ):
                    return False
    return True
