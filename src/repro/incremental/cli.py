"""The ``repro apply`` subcommand: maintain a live view under updates.

::

    python -m repro apply program.dl --facts g=edges.csv \
        --update '+g(a, b, 3)' --update '-g(c, d, 9)'
    python -m repro apply program.dl --durable-dir state/ --updates-file ops.txt

Instead of solving the program from scratch, ``apply`` builds (or, with
``--durable-dir``, reopens) the materialized view of ``(program, engine,
seed)`` and applies one :class:`~repro.incremental.update.UpdateBatch` —
the ``--facts`` rows as inserts plus every ``--update`` /
``--updates-file`` op — then prints a one-line repair summary and the
maintained model.  With no ops at all the command is a pure read.

The batch id defaults to a content hash of the ops, so re-running the
identical command against a durable view is recognized and skipped
(exactly-once); pass ``--batch-id`` to override.  See
``docs/incremental.md`` for the maintenance rules.
"""

from __future__ import annotations

import argparse
import csv
import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.compiler import ENGINES
from repro.datalog.plans import (
    DEFAULT_EXTREMA,
    DEFAULT_ORDER,
    EXTREMA_POLICIES,
    ORDER_POLICIES,
)
from repro.errors import ReproError
from repro.incremental.update import UpdateBatch, UpdateOp

__all__ = ["apply_main", "build_apply_parser"]


def build_apply_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro apply",
        description=(
            "Apply an update batch to the live materialized view of a "
            "program (incremental maintenance instead of re-solving; see "
            "docs/incremental.md)."
        ),
    )
    parser.add_argument("program", help="path to the program file")
    parser.add_argument(
        "--facts",
        action="append",
        default=[],
        metavar="PRED=FILE.csv",
        help="insert a predicate's facts from a headerless CSV (repeatable)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="rql",
        help="evaluation engine (default: rql)",
    )
    parser.add_argument(
        "--order",
        choices=ORDER_POLICIES,
        default=DEFAULT_ORDER,
        help="join-order policy (default: greedy)",
    )
    parser.add_argument(
        "--extrema",
        choices=EXTREMA_POLICIES,
        default=DEFAULT_EXTREMA,
        help="recursive extrema policy (default: pushdown)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="rng seed for γ draws (default: 0)"
    )
    parser.add_argument(
        "--update",
        action="append",
        default=[],
        metavar="OP",
        help=(
            "one update op, '+pred(a, 1)' to insert or '-pred(a, 1)' to "
            "delete (repeatable)"
        ),
    )
    parser.add_argument(
        "--updates-file",
        metavar="FILE",
        help=(
            "read update ops from FILE, one per line ('#' comments and "
            "blank lines ignored)"
        ),
    )
    parser.add_argument(
        "--query",
        metavar="ATOM",
        help="print only facts matching this atom, e.g. 'prm(X, Y, C, I)'",
    )
    parser.add_argument(
        "--durable-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal the view into a crash-safe checkpoint store at DIR; "
            "later invocations reopen it and a killed apply recovers to "
            "exactly the journaled state"
        ),
    )
    parser.add_argument(
        "--view-id",
        metavar="ID",
        default=None,
        help=(
            "durable view id (default: derived from the program hash, "
            "engine and seed; requires --durable-dir)"
        ),
    )
    parser.add_argument(
        "--batch-id",
        metavar="ID",
        default=None,
        help="override the batch id (default: content hash of the ops)",
    )
    parser.add_argument(
        "--summary-json",
        action="store_true",
        help="print the repair summary as JSON instead of one line",
    )
    parser.add_argument(
        "--no-facts",
        action="store_true",
        help="suppress the model printout (summary only)",
    )
    return parser


def _parse_cell(cell: str) -> Any:
    cell = cell.strip()
    for caster in (int, float):
        try:
            return caster(cell)
        except ValueError:
            continue
    return cell


def _insert_ops(specs: Sequence[str]) -> List[UpdateOp]:
    ops: List[UpdateOp] = []
    for spec in specs:
        if "=" not in spec:
            raise ReproError(f"--facts expects PRED=FILE.csv, got {spec!r}")
        name, _, path = spec.partition("=")
        with open(path, newline="") as handle:
            for row in csv.reader(handle):
                if row:
                    ops.append(
                        UpdateOp("+", name, tuple(_parse_cell(cell) for cell in row))
                    )
    return ops


def _file_ops(path: str) -> List[UpdateOp]:
    ops: List[UpdateOp] = []
    for line in Path(path).read_text().splitlines():
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        ops.append(UpdateOp.parse(text))
    return ops


def _summary_line(result) -> str:
    return (
        f"% batch {result.batch_id}: "
        f"+{result.edb_added} -{result.edb_removed} edb; "
        f"units touched {result.units_touched}, skipped {result.units_skipped}, "
        f"recomputed {result.units_recomputed}, "
        f"fast-path {result.fast_path_resumes}; "
        f"invalidated {result.invalidated}, rederived {result.rederived}, "
        f"promoted {result.ledger_promotions} "
        f"({result.seconds * 1000:.1f} ms)"
    )


def apply_main(argv: Sequence[str] | None = None, out=None) -> int:
    """The ``repro apply`` subcommand; returns a process exit code."""
    from repro.cli import _print_facts
    from repro.errors import UpdateError
    from repro.incremental.live import LiveView
    from repro.incremental.view import MaterializedView

    out = out if out is not None else sys.stdout
    args = build_apply_parser().parse_args(argv)
    if args.view_id and not args.durable_dir:
        print("error: --view-id requires --durable-dir", file=sys.stderr)
        return 1
    try:
        source = Path(args.program).read_text()
        ops = _insert_ops(args.facts)
        ops.extend(UpdateOp.parse(text) for text in args.update)
        if args.updates_file:
            ops.extend(_file_ops(args.updates_file))
        batch_id = args.batch_id
        if batch_id is None:
            payload = json.dumps(
                [str(op) for op in ops], sort_keys=True, separators=(",", ":")
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            batch_id = f"cli-{digest[:12]}"
        batch = UpdateBatch.of(ops, batch_id=batch_id)

        store = None
        try:
            if args.durable_dir:
                from repro.durable import CheckpointStore

                store = CheckpointStore(args.durable_dir)
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                rid = args.view_id or f"view-{digest[:12]}-{args.engine}-{args.seed}"
                live = LiveView.open(
                    store,
                    rid,
                    source=source,
                    engine=args.engine,
                    seed=args.seed,
                    order=args.order,
                    extrema=args.extrema,
                )
                view: Any = live
                program = live.view.program
            else:
                view = MaterializedView(
                    source,
                    engine=args.engine,
                    seed=args.seed,
                    order=args.order,
                    extrema=args.extrema,
                )
                program = view.program
            result = view.apply(batch) if len(batch) else None
            if result is not None:
                if args.summary_json:
                    print(
                        json.dumps(
                            {
                                "batch_id": result.batch_id,
                                "edb_added": result.edb_added,
                                "edb_removed": result.edb_removed,
                                "units_touched": result.units_touched,
                                "units_skipped": result.units_skipped,
                                "units_recomputed": result.units_recomputed,
                                "fast_path_resumes": result.fast_path_resumes,
                                "invalidated": result.invalidated,
                                "rederived": result.rederived,
                                "ledger_promotions": result.ledger_promotions,
                                "seconds": result.seconds,
                            },
                            indent=2,
                        ),
                        file=out,
                    )
                else:
                    print(_summary_line(result), file=out)
            elif len(batch):
                print(
                    f"% batch {batch.batch_id}: already applied (skipped)", file=out
                )
            if not args.no_facts:
                _print_facts(view.db, program, args.query, out)
            return 0
        finally:
            if store is not None:
                store.close()
    except UpdateError as exc:
        print(f"error: bad update: {exc}", file=sys.stderr)
        return 2
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(apply_main())
