"""A materialized choice model maintained in place under EDB updates.

:class:`MaterializedView` solves a program once, then keeps the solved
database *live* across :class:`~repro.incremental.update.UpdateBatch`
transactions without re-running :func:`~repro.core.compiler.solve_program`.
The view walks the stage analysis's cliques in dependency (callees-first)
order — each clique is one maintenance *unit* — and classifies every unit
once at construction:

``counting``
    Non-recursive, extrema-free.  Facts carry derivation counts
    (:meth:`~repro.storage.relation.Relation.add_support`); a batch is
    absorbed by an exact count delta when its shape allows, by a full
    recount otherwise.  See :mod:`repro.incremental.maintain`.
``once``
    Non-recursive with ``least``/``most`` goals: re-evaluated with
    :func:`~repro.core.clique_eval.evaluate_rule_once` when touched
    (the extremum makes deltas non-monotone, and these units are cheap).
``dred``
    Recursive, extrema-free: DRed (delete-closure over delta plans,
    targeted rederivation, seminaive insert rounds).
``extrema``
    Recursive with premappable extrema: per-group
    :class:`~repro.core.extrema_lattice.BestTable` repair with a
    runner-up ledger, so a deleted best is replaced in place.
``rng``
    Choice/stage cliques.  These consume the engine rng, so the view
    threads a *replay cursor* through them: an untouched unit whose
    entry cursor is unchanged is skipped outright (its recorded exit
    cursor is re-used); a touched unit re-runs its clique subprogram
    from its entry cursor — reproducing exactly the draws the
    from-scratch engine would make.  Under the ``rql`` engine, stage
    units additionally keep a tape of mid-run governor checkpoints, and
    a deletion-only batch hitting just the clique's candidate predicate
    resumes from the newest safe checkpoint instead of replaying the
    whole greedy loop (see :meth:`MaterializedView._try_stage_fast_path`
    for the soundness guards).

The invariant, enforced by the differential test battery: after any
sequence of applied batches, ``view.db`` equals
``solve_program(source, facts=current EDB, seed=seed, engine=engine)``.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.compiler import _make_engine, compile_program
from repro.core.rewriting import premappable_extrema
from repro.core.stage_analysis import CliqueReport
from repro.datalog.atoms import Atom, NegatedConjunction, Negation
from repro.datalog.plans import DEFAULT_EXTREMA, DEFAULT_ORDER, PlanCache
from repro.datalog.program import Program
from repro.errors import UpdateError
from repro.incremental import maintain
from repro.incremental.update import UpdateBatch
from repro.obs.tracer import Tracer
from repro.robust.governor import RunGovernor
from repro.storage.database import Database

__all__ = ["ApplyResult", "MaterializedView", "StageCheckpointTape"]

Fact = Tuple[Any, ...]
PredicateKey = Tuple[str, int]
DeltaPair = Tuple[Set[Fact], Set[Fact]]


class StageCheckpointTape:
    """A durability writer that keeps mid-run checkpoints *in memory*.

    Plugged into a :class:`~repro.robust.governor.RunGovernor` as its
    ``durability`` sink, so the governor's γ-step/round ticks drive
    checkpoint capture for free.  Capture cadence starts at
    :data:`INTERVAL` ticks and doubles whenever the tape would exceed
    :data:`LIMIT` entries (keeping every other checkpoint), so long runs
    hold at most ``LIMIT`` evenly thinned resume points.
    """

    INTERVAL = 16
    LIMIT = 8

    def __init__(self) -> None:
        self.checkpoints: List[Any] = []
        self._engine: Any = None
        self._db: Any = None
        self._interval = self.INTERVAL
        self._ticks = 0

    def start(self, engine: Any, db: Any) -> None:
        self._engine = engine
        self._db = db

    def tick(self) -> None:
        if self._engine is None:
            return
        self._ticks += 1
        if self._ticks % self._interval:
            return
        from repro.robust.checkpoint import capture

        self.checkpoints.append(capture(self._engine, self._db))
        if len(self.checkpoints) > self.LIMIT:
            self.checkpoints = self.checkpoints[::2]
            self._interval *= 2


@dataclass
class _Unit:
    """One maintenance unit (= one clique of the stage analysis)."""

    report: CliqueReport
    kind: str  # counting | once | dred | extrema | rng
    rules: Tuple[Any, ...]
    predicates: FrozenSet[PredicateKey]  # the unit's write set
    inputs: FrozenSet[PredicateKey]
    ground: Dict[PredicateKey, Set[Fact]]
    specs: Optional[Dict[PredicateKey, Any]] = None  # extrema units
    #: Runner-up ledger of an extrema unit (survives across batches).
    ledger: Dict[Tuple[PredicateKey, Tuple[Any, ...]], Dict[Fact, int]] = field(
        default_factory=dict
    )
    # rng units: replay-cursor bracket and resume state of the last run.
    subprogram: Optional[Program] = None
    rng_entry: Any = None
    rng_exit: Any = None
    tape: List[Any] = field(default_factory=list)
    fallbacks: Dict[PredicateKey, str] = field(default_factory=dict)
    rql_info: Dict[PredicateKey, Tuple[Any, Any]] = field(default_factory=dict)


@dataclass
class ApplyResult:
    """What one :meth:`MaterializedView.apply` did.

    Attributes:
        batch_id: the batch's identity (empty when none was set).
        edb_added / edb_removed: net EDB facts inserted / deleted.
        units_touched: units whose derived state was maintained.
        units_skipped: units proven unaffected and left untouched.
        units_recomputed: units that fell back to full re-evaluation
            (including every re-run rng unit).
        fast_path_resumes: stage units resumed from a mid-run checkpoint
            instead of replayed.
        invalidated: derived facts retracted during repair.
        rederived: derived facts re-established during repair.
        ledger_promotions: extrema groups whose new best came from the
            runner-up ledger.
        seconds: wall-clock time spent in apply.
    """

    batch_id: str = ""
    edb_added: int = 0
    edb_removed: int = 0
    units_touched: int = 0
    units_skipped: int = 0
    units_recomputed: int = 0
    fast_path_resumes: int = 0
    invalidated: int = 0
    rederived: int = 0
    ledger_promotions: int = 0
    seconds: float = 0.0


class MaterializedView:
    """A live database for one ``(program, engine, seed)`` triple.

    Args:
        source: program text (or a parsed :class:`Program`).
        engine: any of the five engine names; the maintained model is
            always the one this engine would produce from scratch.
        seed: rng seed for the choice draws (the view is deterministic
            for a fixed seed, like a seeded engine run).
        order / extrema: plan policies, as for ``compile_program``.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; repair-phase
            events and ``incremental/`` counters land in its registry.
    """

    def __init__(
        self,
        source: Any,
        engine: str = "rql",
        seed: int = 0,
        order: str = DEFAULT_ORDER,
        extrema: str = DEFAULT_EXTREMA,
        tracer: Optional[Tracer] = None,
    ):
        self.compiled = compile_program(source, engine=engine, order=order, extrema=extrema)
        self.program = self.compiled.program
        self.engine = engine
        self.seed = seed
        self.order = order
        self.extrema = extrema
        self.tracer = tracer if tracer is not None else Tracer()
        self.cache = PlanCache(order=order, extrema=extrema, tracer=self.tracer)
        self.db = Database()
        self._rng_cursor: Any = None
        self._idb: Set[PredicateKey] = set(self.program.idb_predicates())
        self._arities: Dict[str, Set[int]] = {}
        for key in self._referenced_keys() | self._idb:
            self._arities.setdefault(key[0], set()).add(key[1])
        self._ground: Dict[PredicateKey, Set[Fact]] = {}
        for name, rows in self.program.ground_facts().items():
            for row in rows:
                self._ground.setdefault((name, len(row)), set()).add(tuple(row))
        # The analysis emits singleton cliques for extensional predicates
        # too (no rules derive them); those are input, not maintained
        # state — a rule-less "counting" unit would recount them to the
        # empty model.  Only derived cliques become maintenance units.
        self.units: List[_Unit] = [
            self._classify(report)
            for report in self.compiled.analysis.reports
            if set(report.clique.predicates) & self._idb
        ]
        self.load()

    # -- construction ------------------------------------------------------------

    def _referenced_keys(self) -> Set[PredicateKey]:
        keys: Set[PredicateKey] = set()
        for rule in self.program.proper_rules():
            keys |= _body_keys(rule)
        return keys

    def _classify(self, report: CliqueReport) -> _Unit:
        clique = report.clique
        inputs = frozenset(
            key
            for rule in clique.rules
            for key in _body_keys(rule)
            if key not in clique.predicates
        )
        ground = {
            key: set(self._ground.get(key, ()))
            for key in clique.predicates
            if self._ground.get(key)
        }
        base = dict(
            report=report,
            rules=tuple(clique.rules),
            predicates=frozenset(clique.predicates),
            inputs=inputs,
            ground=ground,
        )
        if report.kind in ("choice", "stage"):
            return _Unit(
                kind="rng", subprogram=Program.of(clique.rules), **base
            )
        if not clique.is_recursive:
            if any(rule.extrema_goals for rule in clique.rules):
                return _Unit(kind="once", **base)
            return _Unit(kind="counting", **base)
        if any(rule.extrema_goals for rule in clique.rules):
            # Non-premappable extrema through recursion raises in the
            # engines too — fail at construction, identically.
            specs = premappable_extrema(clique.rules, clique.predicates)
            if specs is None:
                from repro.core.stage_analysis import clique_label
                from repro.errors import StratificationError

                raise StratificationError(
                    "extrema through recursion outside a stage clique in "
                    f"{clique_label(clique)}"
                )
            return _Unit(kind="extrema", specs=specs, **base)
        for rule in clique.rules:
            for literal in rule.body:
                if isinstance(literal, Negation) and literal.atom.key in clique.predicates:
                    from repro.core.stage_analysis import clique_label
                    from repro.errors import StratificationError

                    raise StratificationError(
                        "negation through recursion outside a stage clique in "
                        f"{clique_label(clique)}"
                    )
        return _Unit(kind="dred", **base)

    # -- full (re)build ----------------------------------------------------------

    def load(self) -> None:
        """Evaluate every unit from the current EDB (initial build, and
        the recovery fallback when an apply died mid-repair)."""
        with self.tracer.span("incremental-load", phase="incremental"):
            for key in self._ground:
                if key not in self._idb:
                    relation = self.db.relation(key[0], key[1])
                    for fact in self._ground[key]:
                        relation.add(fact)
            self._rng_cursor = random.Random(self.seed).getstate()
            for unit in self.units:
                self._recompute(unit)

    def rebuild(self) -> None:
        """Drop all derived state and re-run :meth:`load` from the
        current EDB (exception recovery: an error escaping mid-apply can
        leave derived relations inconsistent)."""
        edb: Dict[PredicateKey, List[Fact]] = {
            key: list(facts)
            for key, facts in self.db.as_dict().items()
            if key not in self._idb
        }
        self.db = Database()
        for key, facts in edb.items():
            relation = self.db.relation(key[0], key[1])
            for fact in facts:
                relation.add(fact)
        self.load()

    def edb_facts(self) -> Dict[PredicateKey, List[Fact]]:
        """The current extensional facts (program-text facts included) —
        exactly what the from-scratch oracle should be solved against."""
        return {
            key: sorted(facts, key=repr)
            for key, facts in self.db.as_dict().items()
            if key not in self._idb
        }

    # -- update application ------------------------------------------------------

    def validate(self, batch: UpdateBatch) -> Dict[PredicateKey, DeltaPair]:
        """Check *batch* and return its net effect ``{key: (added,
        removed)}`` against the current database, without mutating
        anything.  Raises :class:`UpdateError` on the first bad op."""
        final: Dict[PredicateKey, Dict[Fact, str]] = {}
        for op in batch:
            key = op.key
            if key in self._idb:
                raise UpdateError(
                    f"cannot update {key[0]}/{key[1]}: it is derived (IDB)"
                )
            arities = self._arities.get(op.pred)
            if arities is not None and key[1] not in arities:
                expected = ", ".join(str(a) for a in sorted(arities))
                raise UpdateError(
                    f"arity mismatch for {op.pred}: got {key[1]}, "
                    f"program uses {expected}"
                )
            if op.op == "-" and op.args in self._ground.get(key, ()):
                raise UpdateError(
                    f"cannot delete {op}: asserted by the program text"
                )
            final.setdefault(key, {})[op.args] = op.op
        changed: Dict[PredicateKey, DeltaPair] = {}
        for key, ops in final.items():
            relation = self.db.relation(key[0], key[1])
            added = {fact for fact, op in ops.items() if op == "+" and fact not in relation}
            removed = {fact for fact, op in ops.items() if op == "-" and fact in relation}
            if added or removed:
                changed[key] = (added, removed)
        return changed

    def apply(self, batch: UpdateBatch) -> ApplyResult:
        """Apply *batch* atomically and repair every affected unit.

        Validation happens before any mutation; a rejected batch leaves
        the view untouched.  An exception *during* repair leaves the
        derived state inconsistent — callers that must survive that
        (:class:`~repro.incremental.live.LiveView`) call
        :meth:`rebuild`."""
        started = time.perf_counter()
        changed = self.validate(batch)
        result = ApplyResult(batch_id=batch.batch_id)
        registry = self.tracer.registry
        if not changed:
            result.units_skipped = len(self.units)
            result.seconds = time.perf_counter() - started
            return result
        with self.tracer.span(
            "incremental-apply", phase="incremental", batch_id=batch.batch_id, ops=len(batch)
        ):
            for key, (added, removed) in changed.items():
                relation = self.db.relation(key[0], key[1])
                for fact in removed:
                    relation.discard(fact)
                for fact in added:
                    relation.add(fact)
                result.edb_added += len(added)
                result.edb_removed += len(removed)
            changed = dict(changed)
            # Walk the units exactly like a from-scratch run walks the
            # cliques: the replay cursor rewinds to the seeded rng's
            # initial state, and each rng unit advances it (to its
            # recorded exit state when skipped, to the fresh engine's
            # exit state when recomputed).
            self._rng_cursor = random.Random(self.seed).getstate()
            for unit in self.units:
                self._maintain_unit(unit, changed, result)
        result.seconds = time.perf_counter() - started
        registry.inc("incremental/batches")
        registry.inc("incremental/facts_invalidated", result.invalidated)
        registry.inc("incremental/facts_rederived", result.rederived)
        registry.inc("incremental/ledger_promotions", result.ledger_promotions)
        registry.inc("incremental/units_recomputed", result.units_recomputed)
        registry.inc("incremental/fast_path_resumes", result.fast_path_resumes)
        registry.observe("incremental/apply_seconds", result.seconds)
        return result

    # -- per-unit dispatch -------------------------------------------------------

    def _maintain_unit(
        self,
        unit: _Unit,
        changed: Dict[PredicateKey, DeltaPair],
        result: ApplyResult,
    ) -> None:
        touched = {
            key
            for key in unit.inputs
            if key in changed and (changed[key][0] or changed[key][1])
        }
        if unit.kind == "rng":
            self._maintain_rng(unit, touched, changed, result)
            return
        if not touched:
            result.units_skipped += 1
            return
        result.units_touched += 1
        before = self._snapshot(unit.predicates)
        if unit.kind == "counting":
            plan = maintain.counting_plan(unit.rules, touched)
            if plan is not None:
                sub = {key: changed[key] for key in touched}
                maintain.apply_counting_delta(
                    unit.rules, plan, sub, self.db, self.cache
                )
            else:
                maintain.recount(
                    unit.rules, unit.predicates, unit.ground, self.db, self.cache
                )
                result.units_recomputed += 1
        elif unit.kind == "once":
            maintain.recompute_unit(
                unit.rules,
                unit.predicates,
                unit.ground,
                self.db,
                self.cache,
                tracer=self.tracer,
                recursive=False,
            )
            result.units_recomputed += 1
        elif unit.kind == "dred":
            if maintain.changed_under_negation(unit.rules, touched):
                self._recompute(unit)
                result.units_recomputed += 1
            else:
                counters = maintain.apply_dred(
                    unit.rules,
                    unit.predicates,
                    unit.ground,
                    changed,
                    unit.inputs,
                    self.db,
                    self.cache,
                    tracer=self.tracer,
                )
                result.invalidated += counters["invalidated"]
                result.rederived += counters["rederived"]
        elif unit.kind == "extrema":
            if maintain.changed_under_negation(unit.rules, touched):
                self._recompute(unit)
                result.units_recomputed += 1
            else:
                counters = maintain.apply_extrema(
                    unit.rules,
                    unit.predicates,
                    unit.specs or {},
                    unit.ledger,
                    unit.ground,
                    changed,
                    unit.inputs,
                    self.db,
                    self.cache,
                    tracer=self.tracer,
                )
                result.invalidated += counters["invalidated"]
                result.rederived += counters["rederived"]
                result.ledger_promotions += counters["ledger_promotions"]
        self._merge_head_deltas(unit, before, changed)

    def _maintain_rng(
        self,
        unit: _Unit,
        touched: Set[PredicateKey],
        changed: Dict[PredicateKey, DeltaPair],
        result: ApplyResult,
    ) -> None:
        if not touched and self._rng_cursor == unit.rng_entry:
            # Inputs unchanged and the rng reaches this unit in the same
            # state as last time: the recorded run is still the run the
            # from-scratch engine would perform.
            self._rng_cursor = unit.rng_exit
            result.units_skipped += 1
            return
        result.units_touched += 1
        before = self._snapshot(unit.predicates)
        if self._try_stage_fast_path(unit, touched, changed):
            result.fast_path_resumes += 1
        else:
            self._recompute(unit)
            result.units_recomputed += 1
        self._rng_cursor = unit.rng_exit
        self._merge_head_deltas(unit, before, changed)

    def _snapshot(self, predicates: FrozenSet[PredicateKey]) -> Dict[PredicateKey, Set[Fact]]:
        return {
            key: set(self.db.relation(key[0], key[1])) for key in predicates
        }

    def _merge_head_deltas(
        self,
        unit: _Unit,
        before: Dict[PredicateKey, Set[Fact]],
        changed: Dict[PredicateKey, DeltaPair],
    ) -> None:
        """Diff the unit's write relations against *before* and record the
        net changes so downstream units see them as input deltas."""
        for key, old in before.items():
            now = set(self.db.relation(key[0], key[1]))
            added = now - old
            removed = old - now
            if added or removed:
                changed[key] = (added, removed)
                if self.tracer.enabled:
                    self.tracer.event(
                        "incremental-head-delta",
                        predicate=f"{key[0]}/{key[1]}",
                        added=len(added),
                        removed=len(removed),
                    )

    # -- unit recompute ----------------------------------------------------------

    def _recompute(self, unit: _Unit) -> None:
        if unit.kind == "counting":
            maintain.load_counting(
                unit.rules, unit.predicates, unit.ground, self.db, self.cache
            )
            return
        if unit.kind == "once":
            maintain.recompute_unit(
                unit.rules,
                unit.predicates,
                unit.ground,
                self.db,
                self.cache,
                tracer=self.tracer,
                recursive=False,
            )
            return
        if unit.kind in ("dred", "extrema"):
            maintain.recompute_unit(
                unit.rules,
                unit.predicates,
                unit.ground,
                self.db,
                self.cache,
                tracer=self.tracer,
                specs=unit.specs,
            )
            return
        self._recompute_rng(unit)

    def _recompute_rng(self, unit: _Unit) -> None:
        """Re-run an rng unit's clique subprogram from the current
        replay cursor — exactly what the from-scratch engine does when
        it reaches this clique.

        The run happens in a *scratch* database whose relations are
        rebuilt in canonical (sorted) insertion order.  Greedy engines
        break cost ties by arrival order, and arrival order follows
        relation iteration order — a function of each set's insertion
        history.  The maintained view's history differs from a fresh
        load's, so running in place could legally flip a tie against the
        from-scratch oracle; canonical order pins both runs to the same
        tiebreak."""
        maintain.hooks.fire("incremental.repair")
        scratch = Database()
        for key in unit.inputs:
            relation = scratch.relation(key[0], key[1])
            for fact in sorted(self.db.facts(key[0], key[1]), key=repr):
                relation.add(fact)
        for key, facts in unit.ground.items():
            relation = scratch.relation(key[0], key[1])
            for fact in sorted(facts, key=repr):
                relation.add(fact)
        cursor = self._rng_cursor
        rng = random.Random()
        rng.setstate(cursor)
        tape: Optional[StageCheckpointTape] = None
        governor = None
        if self.engine == "rql" and unit.report.kind == "stage":
            tape = StageCheckpointTape()
            governor = RunGovernor(durability=tape)
        engine = _make_engine(
            self.engine,
            unit.subprogram,
            rng,
            tracer=self.tracer,
            governor=governor,
            order=self.order,
            extrema=self.extrema,
        )
        engine.run(scratch)
        for key in unit.predicates:
            relation = self.db.relation(key[0], key[1])
            relation.clear()
            for fact in sorted(scratch.facts(key[0], key[1]), key=repr):
                relation.add(fact)
        unit.rng_entry = cursor
        unit.rng_exit = engine.rng.getstate() if hasattr(engine, "rng") else cursor
        unit.tape = tape.checkpoints if tape is not None else []
        unit.fallbacks = dict(getattr(engine, "fallbacks", {}) or {})
        unit.rql_info = {
            plan.rule.head.key: (plan.candidate_atom, plan.spec)
            for plan, _state, _structure in getattr(engine, "_resumable", ())
        }
        if self.tracer.enabled:
            self.tracer.event(
                "incremental-rng-recompute",
                predicates=sorted(f"{n}/{a}" for n, a in unit.predicates),
                checkpoints=len(unit.tape),
            )

    # -- stage checkpoint fast path ----------------------------------------------

    def _try_stage_fast_path(
        self,
        unit: _Unit,
        touched: Set[PredicateKey],
        changed: Dict[PredicateKey, DeltaPair],
    ) -> bool:
        """Resume a stage unit from a mid-run checkpoint for a
        deletion-only batch on its candidate predicate.

        Sound when every guard below holds, because then the deleted
        facts influence the recorded run *only* through the (R, Q, L)
        candidate structure: the candidate predicate feeds nothing but
        the single candidate atom, the exit-choice draws are independent
        of it, and the greedy drain consumes no rng.  A checkpoint is
        usable for deleted fact ``f`` only if ``f``'s congruence class
        was never used *and* no congruent sibling of ``f`` was ever seen
        at capture time — a congruent sibling may have been retired or
        replaced because of ``f``, and the from-scratch run without
        ``f`` would still hold it, so resuming past that interaction
        would diverge.  Restoring re-seeds the structure from the purged
        candidate relation, so the deleted facts never re-enter.
        """
        if self.engine != "rql" or unit.report.kind != "stage":
            return False
        if not unit.tape or unit.fallbacks or len(unit.rql_info) != 1:
            return False
        if self._rng_cursor != unit.rng_entry:
            return False
        ((head_key, (candidate_atom, spec)),) = unit.rql_info.items()
        candidate_key = candidate_atom.key
        if touched != {candidate_key} or candidate_key in unit.predicates:
            return False
        added, removed = changed[candidate_key]
        if added or not removed:
            return False
        positive = 0
        for rule in unit.rules:
            for literal in rule.body:
                if isinstance(literal, Atom) and literal.key == candidate_key:
                    positive += 1
                elif isinstance(literal, Negation) and literal.atom.key == candidate_key:
                    return False
                elif isinstance(literal, NegatedConjunction):
                    for inner in literal.literals:
                        atom = (
                            inner if isinstance(inner, Atom)
                            else inner.atom if isinstance(inner, Negation)
                            else None
                        )
                        if atom is not None and atom.key == candidate_key:
                            return False
        if positive != 1:
            return False
        signatures = {spec.signature(fact) for fact in removed}
        chosen = None
        for cp in reversed(unit.tape):
            state = cp.rql.get(head_key)
            if state is None:
                continue
            used = {tuple(sig) for sig in state["used"]}
            if any(sig in used for sig in signatures):
                continue
            seen = [tuple(fact) for fact in state["seen"]]
            sibling = False
            for fact in seen:
                if fact not in removed and spec.signature(fact) in signatures:
                    sibling = True
                    break
            if sibling:
                continue
            chosen = cp
            break
        if chosen is None:
            return False
        maintain.hooks.fire("incremental.repair")
        facts2 = {key: list(rows) for key, rows in chosen.facts.items()}
        facts2[candidate_key] = [
            fact for fact in facts2.get(candidate_key, []) if tuple(fact) not in removed
        ]
        state = chosen.rql[head_key]
        state2 = dict(state)
        state2["queue"] = [f for f in state["queue"] if tuple(f) not in removed]
        state2["seen"] = [f for f in state["seen"] if tuple(f) not in removed]
        rql2 = dict(chosen.rql)
        rql2[head_key] = state2
        cp2 = dataclasses.replace(chosen, facts=facts2, rql=rql2)
        from repro.robust.checkpoint import restore

        tape2 = StageCheckpointTape()
        engine2, db2 = restore(
            cp2,
            unit.subprogram,
            governor=RunGovernor(durability=tape2),
            tracer=self.tracer,
            engine=self.engine,
            order=self.order,
            extrema=self.extrema,
        )
        engine2.run(db2)
        # Only the unit's own write relations are grafted back: the
        # checkpoint snapshot carried stale downstream relations (they
        # repair after this unit) which db2 still holds.
        for key in unit.predicates:
            relation = self.db.relation(key[0], key[1])
            relation.clear()
            for fact in db2.relation(key[0], key[1]):
                relation.add(fact)
        unit.rng_exit = engine2.rng.getstate()
        unit.tape = [cp2] + tape2.checkpoints
        unit.fallbacks = dict(engine2.fallbacks)
        unit.rql_info = {
            plan.rule.head.key: (plan.candidate_atom, plan.spec)
            for plan, _state, _structure in engine2._resumable
        }
        if self.tracer.enabled:
            self.tracer.event(
                "incremental-fast-path",
                predicate=f"{head_key[0]}/{head_key[1]}",
                deleted=len(removed),
                tape=len(unit.tape),
            )
        return True


def _body_keys(rule: Any) -> Set[PredicateKey]:
    """Every predicate key a rule body reads, including the atoms inside
    negated conjunctions (which ``Program.edb_predicates`` does not
    scan)."""
    keys: Set[PredicateKey] = set()
    for literal in rule.body:
        if isinstance(literal, Atom):
            keys.add(literal.key)
        elif isinstance(literal, Negation):
            keys.add(literal.atom.key)
        elif isinstance(literal, NegatedConjunction):
            for inner in literal.literals:
                if isinstance(inner, Atom):
                    keys.add(inner.key)
                elif isinstance(inner, Negation):
                    keys.add(inner.atom.key)
    return keys
