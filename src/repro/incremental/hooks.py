"""Fault-injection hook slot for the incremental maintenance layer.

Kept in a leaf module so :mod:`repro.robust.faults` can patch it without
importing the view machinery (and vice versa).  The sites — fired at the
**top** of each repair phase, before any derived-state mutation — are
:data:`repro.robust.faults.INCREMENTAL_SITES`:

* ``incremental.count`` — start of a counting-unit apply;
* ``incremental.rederive`` — start of a DRed delete/rederive pass;
* ``incremental.repair`` — start of an extrema or choice-clique repair.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["fire"]

_FAULT_HOOK: Optional[Any] = None


def fire(site: str) -> None:
    """Visit *site* when an injector is installed (one is-``None`` check
    otherwise)."""
    hook = _FAULT_HOOK
    if hook is not None:
        hook(site)
