"""Incremental view maintenance over live fact streams.

Every query in the repo so far re-solves its program from scratch; this
package keeps a solved model *live* under EDB mutations:

* :class:`~repro.incremental.update.UpdateBatch` — a validated
  transaction of ``+fact`` / ``-fact`` operations;
* :class:`~repro.incremental.view.MaterializedView` — IDB state
  maintained in place: counting for non-recursive strata, DRed
  (delete-rederive) over the delta-specialized plan cache for recursive
  cliques, per-group best-table repair for premappable extrema, and
  targeted invalidation with checkpoint-suffix resume for choice/stage
  cliques;
* :class:`~repro.incremental.live.LiveView` — a view journaled to a
  :class:`~repro.durable.store.CheckpointStore` (WAL ``update`` records)
  so a crash at any point recovers to the from-scratch oracle model with
  zero lost and zero double-applied updates.

See ``docs/incremental.md`` for the maintenance rules and the
crash-consistency argument.
"""

from repro.incremental.live import LiveView
from repro.incremental.update import UpdateBatch, UpdateOp
from repro.incremental.view import ApplyResult, MaterializedView

__all__ = [
    "ApplyResult",
    "LiveView",
    "MaterializedView",
    "UpdateBatch",
    "UpdateOp",
]
