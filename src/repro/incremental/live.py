"""A :class:`MaterializedView` journaled to a durable checkpoint store.

:class:`LiveView` wraps the in-memory view with write-ahead logging:
every update batch is journaled (and fsynced) *before* it is applied,
so a crash at any point — including mid-repair — recovers to exactly
the model the from-scratch oracle produces over the surviving EDB:

* **base record** — the program text, engine configuration and the full
  EDB as of a sequence number.  Written when the view is first created
  and by :meth:`snapshot` (which makes every older batch record dead
  weight for the next compaction).
* **batch record** — one journaled :class:`UpdateBatch` with the next
  sequence number.

Recovery (:meth:`open` on a store whose log already holds the view id)
rebuilds the view by solving the base EDB from scratch, then re-applies
the uncovered batch records *through the normal apply path* — so by
induction the recovered model is the oracle model.  Batch ids of the
journaled records form a dedupe set: a client that crashes after
journaling but before seeing the acknowledgment can resubmit the same
batch and it is recognized and skipped (exactly-once effect).

A repair that raises mid-apply leaves the in-memory derived state
inconsistent; :meth:`apply` then reopens the view from the journal
before re-raising, so the durable log — not the wreckage — is always
the source of truth.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.durable.store import CheckpointStore
from repro.errors import RecoveryError
from repro.incremental.update import UpdateBatch
from repro.incremental.view import ApplyResult, MaterializedView
from repro.obs.tracer import Tracer

__all__ = ["LiveView"]

PredicateKey = Tuple[str, int]


class LiveView:
    """A durable live view over one ``(program, engine, seed)`` triple.

    Use :meth:`open` rather than the constructor: it journals the base
    record for a fresh view and replays the log for an existing one.
    """

    def __init__(
        self,
        store: CheckpointStore,
        rid: str,
        view: MaterializedView,
        seq: int,
        applied_ids: Set[str],
    ):
        self.store = store
        self.rid = rid
        self.view = view
        self._seq = seq
        self._applied_ids = applied_ids

    # -- construction / recovery -------------------------------------------------

    @classmethod
    def open(
        cls,
        store: CheckpointStore,
        rid: str,
        source: Optional[str] = None,
        engine: str = "rql",
        seed: int = 0,
        order: Optional[str] = None,
        extrema: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> "LiveView":
        """Open view *rid* on *store*, creating it when the log has no
        record of it (then *source* is required) and recovering it from
        the journal otherwise (then *source*, when given, must not
        disagree with the journaled program).
        """
        from repro.datalog.plans import DEFAULT_EXTREMA, DEFAULT_ORDER

        log = store.view_log(rid)
        if log is None or log.base is None:
            if source is None:
                raise RecoveryError(
                    f"view {rid!r} is not in the journal and no program "
                    "was supplied to create it"
                )
            view = MaterializedView(
                source,
                engine=engine,
                seed=seed,
                order=order if order is not None else DEFAULT_ORDER,
                extrema=extrema if extrema is not None else DEFAULT_EXTREMA,
                tracer=tracer,
            )
            live = cls(store, rid, view, seq=0, applied_ids=set())
            store.journal_update(rid, live._base_payload(source))
            store.sync()
            return live
        base = log.base
        if source is not None and source.strip() != str(base["program"]).strip():
            raise RecoveryError(
                f"view {rid!r} was journaled for a different program"
            )
        view = MaterializedView(
            str(base["program"]),
            engine=str(base.get("engine", engine)),
            seed=int(base.get("seed", seed)),
            order=str(base.get("order", order or DEFAULT_ORDER)),
            extrema=str(base.get("extrema", extrema or DEFAULT_EXTREMA)),
            tracer=tracer,
        )
        cls._load_edb(view, base)
        view.rebuild()
        seq = int(base.get("seq", 0))
        applied: Set[str] = set()
        for payload in log.replay_batches():
            batch = UpdateBatch.from_ops_payload(
                payload.get("ops", ()), batch_id=str(payload.get("batch_id", ""))
            )
            view.apply(batch)
            seq = int(payload["seq"])
            if batch.batch_id:
                applied.add(batch.batch_id)
        return cls(store, rid, view, seq=seq, applied_ids=applied)

    @staticmethod
    def _load_edb(view: MaterializedView, base: Dict[str, Any]) -> None:
        """Overwrite *view*'s extensional relations with the base
        record's EDB (the program's own ground facts are part of it)."""
        from repro.robust.checkpoint import decode_value

        for key in list(view.db.as_dict()):
            if key not in view._idb:
                view.db.relation(key[0], key[1]).clear()
        for name, arity, rows in base.get("edb", ()):
            relation = view.db.relation(str(name), int(arity))
            for row in rows:
                relation.add(tuple(decode_value(v) for v in row))

    def _base_payload(self, source: str) -> Dict[str, Any]:
        from repro.robust.checkpoint import encode_value

        edb: List[List[Any]] = []
        for (name, arity), facts in sorted(self.view.edb_facts().items()):
            edb.append(
                [name, arity, [[encode_value(v) for v in fact] for fact in facts]]
            )
        return {
            "type": "base",
            "seq": self._seq,
            "program": source,
            "engine": self.view.engine,
            "seed": self.view.seed,
            "order": self.view.order,
            "extrema": self.view.extrema,
            "edb": edb,
        }

    # -- the write path ----------------------------------------------------------

    @property
    def db(self):
        return self.view.db

    def apply(self, batch: UpdateBatch) -> Optional[ApplyResult]:
        """Journal *batch*, fsync, then apply it to the in-memory view.

        Returns ``None`` when the batch's id was already journaled (a
        crash-retry resubmission — the effect is already durable).  On a
        repair error the view is reopened from the journal and the error
        re-raised: the batch *is* journaled at that point, so recovery
        (and the reopened view) still applies it.
        """
        if batch.batch_id and batch.batch_id in self._applied_ids:
            return None
        self.view.validate(batch)  # reject bad batches before journaling
        seq = self._seq + 1
        self.store.journal_update(
            self.rid,
            {
                "type": "batch",
                "seq": seq,
                "batch_id": batch.batch_id,
                "ops": batch.ops_payload(),
            },
        )
        self.store.sync()
        self._seq = seq
        if batch.batch_id:
            self._applied_ids.add(batch.batch_id)
        try:
            return self.view.apply(batch)
        except Exception:
            self._reopen()
            raise

    def _reopen(self) -> None:
        recovered = LiveView.open(self.store, self.rid, tracer=self.view.tracer)
        self.view = recovered.view
        self._seq = recovered._seq
        self._applied_ids |= recovered._applied_ids

    def snapshot(self) -> None:
        """Journal a fresh base covering every applied batch, making the
        older records compactable."""
        log = self.store.view_log(self.rid)
        source = str(log.base["program"]) if log is not None and log.base else ""
        self.store.journal_update(self.rid, self._base_payload(source))
        self.store.sync()

    def close(self, discard: bool = False) -> None:
        """Optionally drop the journaled log (``discard=True``) — the
        view stops being recoverable — and detach from the store."""
        if discard:
            self.store.mark_done(self.rid)
