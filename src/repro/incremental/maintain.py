"""The per-unit maintenance algorithms behind :class:`MaterializedView`.

A *unit* is one clique of the stage analysis; the view dispatches each
touched unit to one of the algorithms here:

* **counting** (non-recursive, extrema-free) — every stored fact carries
  its derivation count (:meth:`Relation.add_support`).  When the batch's
  net changes hit a rule at exactly one positive body position and the
  rule references no other changed predicate, a single run of the
  delta-specialized plan is an *exact* count delta (other literals read
  identical state old vs new, and :func:`run_plan` preserves duplicate
  substitutions); any harder shape falls back to a full recount of the
  unit, which is still just a diff against the stored counts.
* **DRed** (recursive, extrema-free) — delete-closure over the delta
  plans (with the removed inputs temporarily re-added, so instantiations
  joining two removed facts are not missed), targeted per-fact
  rederivation, then a seminaive insert pass seeded by the rederived
  facts and the inserted inputs.
* **extrema repair** (recursive, premappable) — the delete-closure, then
  a per-affected-group rebuild of the
  :class:`~repro.core.extrema_lattice.BestTable` with a runner-up
  *ledger*: facts observed-but-dominated during earlier maintenance are
  retained with hit counts and re-validated first (cheap, head-bound
  body checks) when their group's best is deleted; a full per-group
  rederivation then restores completeness (delta-only rounds are not
  complete here — an instantiation rejected by the old, now-deleted best
  may carry no delta), and delta-seeded pushdown rounds absorb inserted
  inputs.  Premappability is what makes deletion repair sound: every
  retained fact has a derivation tree entirely inside the pruned model,
  so survivors of the delete-closure stay valid.

Every entry point fires its :data:`~repro.robust.faults.INCREMENTAL_SITES`
hook *before* mutating derived state.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.clique_eval import _as_relation, body_solutions, saturate
from repro.core.extrema_lattice import BestTable, PremapSpec
from repro.datalog.atoms import (
    Atom,
    LeastGoal,
    MostGoal,
    Negation,
    NegatedConjunction,
)
from repro.datalog.plans import PlanCache, run_plan
from repro.datalog.rules import Rule
from repro.datalog.unify import ground_term, match_args, match_term
from repro.incremental import hooks
from repro.storage.database import Database

__all__ = [
    "DeltaPair",
    "counting_plan",
    "apply_counting_delta",
    "recount",
    "load_counting",
    "delete_closure",
    "apply_dred",
    "apply_extrema",
    "recompute_unit",
    "changed_under_negation",
    "LEDGER_CAP",
]

Fact = Tuple[Any, ...]
PredicateKey = Tuple[str, int]
#: ``(added, removed)`` net fact sets for one predicate.
DeltaPair = Tuple[Set[Fact], Set[Fact]]
#: ``{(predicate, group): {fact: dominated-observation count}}``.
Ledger = Dict[Tuple[PredicateKey, Tuple[Any, ...]], Dict[Fact, int]]

#: Runner-up facts retained per extrema group (best costs win eviction).
LEDGER_CAP = 8

_EXTREMA_DROP = (LeastGoal, MostGoal)


def changed_under_negation(
    rules: Sequence[Rule], changed_keys: Set[PredicateKey]
) -> bool:
    """Whether any changed predicate occurs negated (directly or inside a
    negated conjunction) in *rules* — the delta algorithms are only exact
    for positive occurrences, so this forces a full unit recompute."""
    if not changed_keys:
        return False
    for rule in rules:
        for literal in rule.body:
            if isinstance(literal, Negation) and literal.atom.key in changed_keys:
                return True
            if isinstance(literal, NegatedConjunction):
                for inner in literal.literals:
                    if isinstance(inner, Atom) and inner.key in changed_keys:
                        return True
                    if (
                        isinstance(inner, Negation)
                        and inner.atom.key in changed_keys
                    ):
                        return True
    return False


# -- counting (non-recursive, extrema-free) -------------------------------------


def counting_plan(
    rules: Sequence[Rule], changed_keys: Set[PredicateKey]
) -> Optional[Dict[int, Tuple[PredicateKey, int]]]:
    """The exact-delta plan ``{id(rule): (changed key, body index)}`` for
    affected rules, or ``None`` when any rule needs the full recount
    (a changed predicate at several positions, two changed predicates in
    one body, or a changed predicate under negation)."""
    plan: Dict[int, Tuple[PredicateKey, int]] = {}
    for rule in rules:
        occurrence: Optional[Tuple[PredicateKey, int]] = None
        for index, literal in enumerate(rule.body):
            if isinstance(literal, Atom) and literal.key in changed_keys:
                if occurrence is not None:
                    return None
                occurrence = (literal.key, index)
            elif isinstance(literal, Negation) and literal.atom.key in changed_keys:
                return None
            elif isinstance(literal, NegatedConjunction):
                for inner in literal.literals:
                    inner_atom = (
                        inner if isinstance(inner, Atom)
                        else inner.atom if isinstance(inner, Negation)
                        else None
                    )
                    if inner_atom is not None and inner_atom.key in changed_keys:
                        return None
        if occurrence is not None:
            plan[id(rule)] = occurrence
    return plan


def apply_counting_delta(
    rules: Sequence[Rule],
    plan: Dict[int, Tuple[PredicateKey, int]],
    changed: Dict[PredicateKey, DeltaPair],
    db: Database,
    cache: PlanCache,
) -> int:
    """Apply exact support-count deltas per the :func:`counting_plan`;
    returns the number of delta derivations processed."""
    hooks.fire("incremental.count")
    processed = 0
    for rule in rules:
        occurrence = plan.get(id(rule))
        if occurrence is None:
            continue
        key, index = occurrence
        added, removed = changed[key]
        head = rule.head
        relation = db.relation(head.pred, head.arity)
        compiled = cache.plan(rule, delta_index=index, db=db)
        for facts, sign in ((removed, -1), (added, +1)):
            if not facts:
                continue
            delta_rel = _as_relation(key, list(facts))
            for subst in run_plan(compiled, db, {}, delta_rel):
                fact = tuple(ground_term(arg, subst) for arg in head.args)
                if sign < 0:
                    relation.drop_support(fact)
                else:
                    relation.add_support(fact)
                processed += 1
    return processed


def recount(
    rules: Sequence[Rule],
    writes: FrozenSet[PredicateKey],
    ground: Dict[PredicateKey, Set[Fact]],
    db: Database,
    cache: PlanCache,
) -> None:
    """Full recount of a counting unit: evaluate every rule, tally exact
    derivation counts per head fact (plus one *ground baseline* per fact
    asserted by the program text, which persists with zero derivations),
    and reconcile the stored supports against the tally."""
    hooks.fire("incremental.count")
    counts: Dict[PredicateKey, Counter] = {key: Counter() for key in writes}
    for key, facts in ground.items():
        if key in counts:
            for fact in facts:
                counts[key][fact] += 1
    for rule in rules:
        head = rule.head
        tally = counts[head.key]
        for subst in body_solutions(rule, db, cache=cache):
            tally[tuple(ground_term(arg, subst) for arg in head.args)] += 1
    for key in writes:
        relation = db.relation(key[0], key[1])
        target = counts[key]
        for fact in set(relation) | set(target):
            relation.set_support(fact, target.get(fact, 0))


def load_counting(
    rules: Sequence[Rule],
    writes: FrozenSet[PredicateKey],
    ground: Dict[PredicateKey, Set[Fact]],
    db: Database,
    cache: PlanCache,
) -> None:
    """Initial evaluation of a counting unit (the ground facts are
    already asserted): identical to :func:`recount`, which is exactly a
    from-scratch count when no supports are stored yet."""
    recount(rules, writes, ground, db, cache)


# -- DRed (recursive, extrema-free) ---------------------------------------------


def delete_closure(
    rules: Sequence[Rule],
    predicates: FrozenSet[PredicateKey],
    removed_inputs: Dict[PredicateKey, Set[Fact]],
    db: Database,
    cache: PlanCache,
    drop: Tuple[type, ...] = (),
) -> Set[Tuple[PredicateKey, Fact]]:
    """The facts of *predicates* with at least one derivation through a
    removed input — the DRed over-approximation of what deletion kills.

    The removed inputs are temporarily **re-added** for the duration of
    the closure computation: a delta-pinned plan reads the full database
    at its non-delta positions, so an instantiation that joined *two*
    removed facts would otherwise be missed (under-deletion).  Closure
    facts stay in the database while the closure grows, for the same
    reason; the caller removes them afterwards.
    """
    for key, facts in removed_inputs.items():
        relation = db.relation(key[0], key[1])
        for fact in facts:
            relation.add(fact)
    from repro.core.clique_eval import _delta_variants

    carrying = set(predicates) | set(removed_inputs)
    variants = _delta_variants(rules, carrying)
    deltas: Dict[PredicateKey, Set[Fact]] = {
        key: set(facts) for key, facts in removed_inputs.items()
    }
    closure: Set[Tuple[PredicateKey, Fact]] = set()
    while deltas:
        delta_relations = {
            key: _as_relation(key, list(facts)) for key, facts in deltas.items()
        }
        next_deltas: Dict[PredicateKey, Set[Fact]] = {}
        for rule, index, key in variants:
            delta_rel = delta_relations.get(key)
            if delta_rel is None:
                continue
            plan = cache.plan(rule, delta_index=index, drop=drop, db=db)
            head = rule.head
            relation = db.relation(head.pred, head.arity)
            for subst in run_plan(plan, db, {}, delta_rel):
                fact = tuple(ground_term(arg, subst) for arg in head.args)
                if fact in relation and (head.key, fact) not in closure:
                    closure.add((head.key, fact))
                    next_deltas.setdefault(head.key, set()).add(fact)
        deltas = next_deltas
    for key, facts in removed_inputs.items():
        relation = db.relation(key[0], key[1])
        for fact in facts:
            relation.discard(fact)
    return closure


def apply_dred(
    rules: Sequence[Rule],
    predicates: FrozenSet[PredicateKey],
    ground: Dict[PredicateKey, Set[Fact]],
    changed: Dict[PredicateKey, DeltaPair],
    inputs: FrozenSet[PredicateKey],
    db: Database,
    cache: PlanCache,
    tracer: Any = None,
) -> Dict[str, int]:
    """Delete-rederive maintenance of a plain recursive unit.

    The caller has already established that no changed input occurs
    negated in the unit (that shape recomputes instead).  Returns repair
    counters (``invalidated`` / ``rederived``).
    """
    hooks.fire("incremental.rederive")
    changed_keys = set(changed) & set(inputs)
    removed_inputs = {
        key: set(changed[key][1]) for key in changed_keys if changed[key][1]
    }
    added_inputs = {
        key: list(changed[key][0]) for key in changed_keys if changed[key][0]
    }
    seeds: Dict[PredicateKey, List[Fact]] = {}
    invalidated = 0
    rederived = 0
    if removed_inputs:
        closure = delete_closure(rules, predicates, removed_inputs, db, cache)
        # Facts asserted by the program text are unconditionally derivable;
        # they never leave the model.
        closure = {
            (key, fact)
            for key, fact in closure
            if fact not in ground.get(key, frozenset())
        }
        if tracer is not None:
            tracer.event(
                "incremental-delete-closure",
                predicates=sorted(k[0] for k in predicates),
                facts=len(closure),
            )
        for key, fact in closure:
            db.relation(key[0], key[1]).discard(fact)
        invalidated = len(closure)
        for key, fact in sorted(closure, key=repr):
            for rule in rules:
                if rule.head.key != key:
                    continue
                initial = match_args(rule.head.args, fact, {})
                if initial is None:
                    continue
                if body_solutions(rule, db, initial=initial, cache=cache):
                    db.relation(key[0], key[1]).add(fact)
                    seeds.setdefault(key, []).append(fact)
                    rederived += 1
                    break
    for key, facts in added_inputs.items():
        if facts:
            seeds.setdefault(key, []).extend(facts)
    if seeds:
        # Non-clique input keys in the seeds are legal delta carriers:
        # saturate differentiates every predicate we name here.
        saturate(
            rules,
            set(predicates) | set(seeds),
            db,
            seed_deltas=seeds,
            cache=cache,
            tracer=tracer,
        )
    return {"invalidated": invalidated, "rederived": rederived}


# -- extrema repair (recursive, premappable) ------------------------------------


def _ledger_note(
    ledger: Ledger, spec: PremapSpec, key: PredicateKey, fact: Fact
) -> None:
    """Retain *fact* as a runner-up for its group, counting observations;
    worst-cost entries are evicted past :data:`LEDGER_CAP`."""
    slot = ledger.setdefault((key, spec.group_of(fact)), {})
    slot[fact] = slot.get(fact, 0) + 1
    if len(slot) > LEDGER_CAP:
        worst = max(slot, key=lambda f: _cost_rank(spec, f))
        del slot[worst]


def _cost_rank(spec: PremapSpec, fact: Fact) -> Any:
    from repro.datalog.builtins import order_key

    cost = order_key(spec.cost_of(fact))
    return cost if spec.direction == "least" else _Reversed(cost)


class _Reversed:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def apply_extrema(
    rules: Sequence[Rule],
    predicates: FrozenSet[PredicateKey],
    specs: Dict[PredicateKey, PremapSpec],
    ledger: Ledger,
    ground: Dict[PredicateKey, Set[Fact]],
    changed: Dict[PredicateKey, DeltaPair],
    inputs: FrozenSet[PredicateKey],
    db: Database,
    cache: PlanCache,
    tracer: Any = None,
) -> Dict[str, int]:
    """In-place repair of a premappable extrema unit; returns counters
    (``invalidated`` / ``rederived`` / ``ledger_promotions``)."""
    hooks.fire("incremental.repair")
    changed_keys = set(changed) & set(inputs)
    removed_inputs = {
        key: set(changed[key][1]) for key in changed_keys if changed[key][1]
    }
    added_inputs = {
        key: list(changed[key][0]) for key in changed_keys if changed[key][0]
    }
    invalidated = 0
    rederived = 0
    promotions = 0

    best = BestTable(specs)
    deltas: Dict[PredicateKey, Set[Fact]] = {}

    def observe_insert(key: PredicateKey, fact: Fact) -> bool:
        nonlocal invalidated
        relation = db.relation(key[0], key[1])
        accepted, displaced = best.observe(key, fact)
        if not accepted:
            _ledger_note(ledger, specs[key], key, fact)
            return False
        for old in displaced:
            if relation.discard(old):
                invalidated += 1
            _ledger_note(ledger, specs[key], key, old)
            pending = deltas.get(key)
            if pending is not None:
                pending.discard(old)
        if relation.add(fact):
            deltas.setdefault(key, set()).add(fact)
            return True
        return False

    def seed_table() -> None:
        for key in predicates:
            for fact in db.relation(key[0], key[1]):
                best.observe(key, fact)

    seed_table()

    if removed_inputs:
        closure = delete_closure(
            rules, predicates, removed_inputs, db, cache, drop=_EXTREMA_DROP
        )
        closure = {
            (key, fact)
            for key, fact in closure
            if fact not in ground.get(key, frozenset())
        }
        if tracer is not None:
            tracer.event(
                "incremental-delete-closure",
                predicates=sorted(k[0] for k in predicates),
                facts=len(closure),
            )
        affected: Set[Tuple[PredicateKey, Tuple[Any, ...]]] = set()
        for key, fact in closure:
            db.relation(key[0], key[1]).discard(fact)
            affected.add((key, specs[key].group_of(fact)))
        invalidated += len(closure)
        # The table is stale for every group that lost a fact — rebuild
        # it from the survivors (premappability guarantees survivors are
        # still valid pruned-model facts).
        best = BestTable(specs)
        seed_table()
        for key, group in sorted(affected, key=repr):
            spec = specs[key]
            # Runner-up promotion: retained dominated observations are
            # re-validated cheapest-first with a fully head-bound body
            # check before the full group rederivation runs.
            candidates = sorted(
                ledger.get((key, group), {}),
                key=lambda f: _cost_rank(spec, f),
            )
            promoted: Optional[Fact] = None
            for candidate in candidates:
                if _derivable(rules, key, candidate, db, cache) and observe_insert(
                    key, candidate
                ):
                    promoted = candidate
                    rederived += 1
                    break
            inserted = 0
            for rule in rules:
                if rule.head.key != key:
                    continue
                initial: Optional[Dict[str, Any]] = {}
                for position, value in zip(spec.group_positions, group):
                    initial = match_term(rule.head.args[position], value, initial)
                    if initial is None:
                        break
                if initial is None:
                    continue
                for subst in body_solutions(
                    rule, db, initial=initial, drop=_EXTREMA_DROP, cache=cache
                ):
                    fact = tuple(ground_term(arg, subst) for arg in rule.head.args)
                    if observe_insert(key, fact):
                        inserted += 1
            # Ground facts of the group may have been pruned before the
            # batch; they are unconditionally re-observable.
            for fact in ground.get(key, frozenset()):
                if spec.group_of(fact) == group:
                    if observe_insert(key, fact):
                        inserted += 1
            rederived += inserted
            if promoted is not None and promoted in db.relation(key[0], key[1]):
                promotions += 1
            # Entries that made it back into the model are no longer
            # runner-ups.
            slot = ledger.get((key, group))
            if slot:
                for fact in list(slot):
                    if fact in db.relation(key[0], key[1]):
                        del slot[fact]
                if not slot:
                    del ledger[(key, group)]

    # Insert phase: inserted inputs drive a first delta round, then
    # pushdown rounds continue from the (confluent) current best table.
    from repro.core.clique_eval import _delta_variants

    carrying = set(predicates) | set(added_inputs)
    variants = _delta_variants(rules, carrying)
    pending: Dict[PredicateKey, Set[Fact]] = {
        key: set(facts) for key, facts in added_inputs.items() if facts
    }
    for key, facts in deltas.items():
        pending.setdefault(key, set()).update(facts)
    deltas = {}
    while pending:
        delta_relations = {
            key: _as_relation(key, list(facts))
            for key, facts in pending.items()
            if facts
        }
        if not delta_relations:
            break
        for rule, index, key in variants:
            delta_rel = delta_relations.get(key)
            if delta_rel is None:
                continue
            plan = cache.plan(rule, delta_index=index, drop=_EXTREMA_DROP, db=db)
            head = rule.head
            for subst in run_plan(plan, db, {}, delta_rel):
                fact = tuple(ground_term(arg, subst) for arg in head.args)
                observe_insert(head.key, fact)
        pending, deltas = deltas, {}
    return {
        "invalidated": invalidated,
        "rederived": rederived,
        "ledger_promotions": promotions,
    }


def _derivable(
    rules: Sequence[Rule],
    key: PredicateKey,
    fact: Fact,
    db: Database,
    cache: PlanCache,
) -> bool:
    for rule in rules:
        if rule.head.key != key:
            continue
        initial = match_args(rule.head.args, fact, {})
        if initial is None:
            continue
        if body_solutions(rule, db, initial=initial, drop=_EXTREMA_DROP, cache=cache):
            return True
    return False


# -- full unit recompute --------------------------------------------------------


def recompute_unit(
    rules: Sequence[Rule],
    predicates: FrozenSet[PredicateKey],
    ground: Dict[PredicateKey, Set[Fact]],
    db: Database,
    cache: PlanCache,
    tracer: Any = None,
    specs: Optional[Dict[PredicateKey, PremapSpec]] = None,
    recursive: bool = True,
) -> None:
    """Clear a plain unit's write relations, re-assert its program-text
    ground facts, and evaluate from scratch — the fallback every delta
    algorithm reduces to when its exactness conditions fail."""
    from repro.core.clique_eval import evaluate_rule_once, saturate_with_extrema

    for key in predicates:
        db.relation(key[0], key[1]).clear()
    for key in predicates:
        relation = db.relation(key[0], key[1])
        for fact in ground.get(key, frozenset()):
            relation.add(fact)
    if not recursive:
        for rule in rules:
            evaluate_rule_once(rule, db, cache=cache, tracer=tracer)
        return
    if specs:
        saturate_with_extrema(
            rules, predicates, specs, db, policy="pushdown", cache=cache, tracer=tracer
        )
    else:
        saturate(rules, predicates, db, seed_deltas=None, cache=cache, tracer=tracer)
