"""Update batches: validated EDB transactions.

An :class:`UpdateBatch` is an ordered list of ``+fact`` / ``-fact``
operations applied atomically to a
:class:`~repro.incremental.view.MaterializedView`.  Validation happens
*before* any mutation — a rejected batch (IDB predicate, program-text
fact deletion, arity mismatch) raises
:class:`~repro.errors.UpdateError` and leaves the view untouched.

Semantics are set-based and therefore idempotent under replay: inserting
a present fact and deleting an absent one are no-ops, which is what
makes WAL batch replay after a crash safe to repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence, Tuple

from repro.errors import UpdateError

__all__ = ["UpdateOp", "UpdateBatch"]

Fact = Tuple[Any, ...]


@dataclass(frozen=True)
class UpdateOp:
    """One mutation: insert (``op="+"``) or delete (``op="-"``) one
    ground fact of predicate *pred*."""

    op: str
    pred: str
    args: Fact

    def __post_init__(self) -> None:
        if self.op not in ("+", "-"):
            raise UpdateError(f"unknown update op {self.op!r}; expected '+' or '-'")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def key(self) -> Tuple[str, int]:
        return (self.pred, len(self.args))

    @classmethod
    def parse(cls, text: str) -> "UpdateOp":
        """Parse ``+pred(a, b, 1)`` / ``-pred(a, b, 1)`` using the
        regular datalog term syntax; every argument must be ground."""
        from repro.datalog.parser import parse_query
        from repro.datalog.unify import ground_term
        from repro.errors import EvaluationError, ParseError

        stripped = text.strip()
        if not stripped or stripped[0] not in "+-":
            raise UpdateError(
                f"cannot parse update {text!r}: expected '+pred(...)' or "
                "'-pred(...)'"
            )
        op, atom_text = stripped[0], stripped[1:].strip()
        try:
            atom = parse_query(atom_text)
            args = tuple(ground_term(arg, {}) for arg in atom.args)
        except (ParseError, EvaluationError) as exc:
            raise UpdateError(f"cannot parse update {text!r}: {exc}") from None
        return cls(op, atom.pred, args)

    def __str__(self) -> str:
        rendered = ", ".join(_format_value(v) for v in self.args)
        return f"{self.op}{self.pred}({rendered})"


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered transaction of :class:`UpdateOp`\\ s.

    Attributes:
        ops: the operations, applied in order (later ops win: a delete
            after an insert of the same fact nets to a delete).
        batch_id: optional caller-chosen identity used for exactly-once
            dedupe across crash-recovery resubmission (the query service
            derives it from the request id).
    """

    ops: Tuple[UpdateOp, ...] = ()
    batch_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @classmethod
    def of(cls, ops: Iterable[Any], batch_id: str = "") -> "UpdateBatch":
        """Build a batch from :class:`UpdateOp`\\ s and/or op strings."""
        parsed: List[UpdateOp] = []
        for op in ops:
            parsed.append(op if isinstance(op, UpdateOp) else UpdateOp.parse(str(op)))
        return cls(tuple(parsed), batch_id)

    # -- JSON codec (WAL records, service payloads) -----------------------------

    def ops_payload(self) -> List[List[Any]]:
        """The ops as JSON-ready ``[op, pred, [args...]]`` triples."""
        from repro.robust.checkpoint import encode_value

        return [
            [op.op, op.pred, [encode_value(v) for v in op.args]] for op in self.ops
        ]

    @classmethod
    def from_ops_payload(
        cls, payload: Sequence[Sequence[Any]], batch_id: str = ""
    ) -> "UpdateBatch":
        from repro.robust.checkpoint import decode_value

        ops = []
        for entry in payload:
            try:
                op, pred, args = entry
            except (TypeError, ValueError):
                raise UpdateError(f"malformed update payload entry {entry!r}") from None
            ops.append(UpdateOp(str(op), str(pred), tuple(decode_value(v) for v in args)))
        return cls(tuple(ops), batch_id)

    def __str__(self) -> str:
        return "; ".join(str(op) for op in self.ops)


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        inner = ", ".join(_format_value(v) for v in value[1:])
        return f"{value[0]}({inner})" if len(value) > 1 else str(value[0])
    return repr(value)
