"""The shard worker process and its wire protocol.

A shard is one OS process owning a private
:class:`~repro.serve.service.QueryService` and (when serving durably) a
private :class:`~repro.durable.store.CheckpointStore` WAL directory
(``<durable_dir>/shard-<k>``, held under an exclusive ``flock`` so two
live workers can never interleave one log).  Processes — not threads —
because the engine is pure Python: N shards are N interpreters, so
CPU-bound programs scale with cores instead of serializing on one GIL.

Everything crosses the pipe as plain picklable data — payload dicts from
:meth:`QueryRequest.to_payload`, response dicts from
:func:`encode_response` — never live objects, so parent and child agree
on nothing but the protocol below.

Parent → child::

    ("submit", rid, payload)   route one request (rid is front-door-global)
    ("cancel", rid)            cooperative cancellation
    ("ping", seq)              heartbeat probe
    ("close",)                 drain and exit cleanly

Child → parent::

    ("ready", shard_id, pid)   the worker is up, inner service running
    ("recovered", [rids])      journalled-not-done rids the shard is
                               re-running from its WAL (empty when fresh
                               or non-durable) — the supervisor resends
                               any in-flight rid *not* in this list,
                               because a request that died in the pipe
                               was never journalled anywhere
    ("pong", seq, depth, inflight)
    ("response", rid, payload) terminal outcome for rid
    ("bye",)                   clean-close acknowledgement

Zero-loss argument, end to end: the front door keeps every submitted
``(rid, payload)`` until the owning shard's ``response`` arrives.  Inside
the shard, the inner service journals before running and marks done
before completing (PR 5's ordering).  If the process dies *before* the
run finishes, the restarted shard's ``recover()`` finds the rid pending
and re-runs it from its newest durable checkpoint (reported via
``recovered``).  If it dies *after* finishing but before the response
crossed the pipe — the ``shard.ack`` kill window — the rid is durably
done, so ``recovered`` omits it and the supervisor resends the retained
payload; the rerun is seeded, so the model is byte-identical.  Either
way the caller's ticket terminates with the right answer.

Fault sites (:data:`repro.robust.faults.SHARD_SITES`) visited by the
worker loop: ``shard.loop`` at the top of every iteration (a repeating
``delay`` plan is a hung worker), ``shard.ack`` immediately before each
response send (an ``exit`` plan is kill-before-ack).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.robust import faults
from repro.robust.faults import FaultInjector, FaultPlan, install
from repro.serve.errors import (
    CircuitOpen,
    ServiceRejection,
    ShardError,
)
from repro.serve.request import (
    FAILED,
    SHED,
    QueryRequest,
    QueryResponse,
)
from repro.storage.database import Database

__all__ = [
    "ShardConfig",
    "ShardHandle",
    "shard_worker_main",
    "encode_response",
    "decode_response",
]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a spawned worker needs, as picklable plain data.

    Attributes:
        workers: worker threads inside the shard's inner service.
        queue_capacity: the inner admission queue bound.
        seed: inner service seed (retry jitter reproducibility).
        durable_root: the front door's durable directory; the shard owns
            ``<durable_root>/shard-<k>`` under it.  ``None`` disables
            durability (and with it crash recovery).
        fsync: the shard store's fsync policy.
        every_seconds: durability cadence for the shard's runs.
        default_budget_wall_clock: optional wall-clock budget applied to
            requests that carry none.
        fault_plans: :class:`FaultPlan`\\ s installed process-wide in the
            child at startup (chaos tests; empty in production).
        crash_after: shared crash-point countdown, as in
            :func:`repro.robust.faults.inject`.
    """

    workers: int = 1
    queue_capacity: int = 64
    seed: int = 0
    durable_root: Optional[str] = None
    fsync: str = "always"
    every_seconds: float = 0.05
    default_budget_wall_clock: Optional[float] = None
    fault_plans: Tuple[FaultPlan, ...] = ()
    crash_after: Optional[int] = None


# -- the wire codec -------------------------------------------------------------


def _encode_database(db: Any) -> List[List[Any]]:
    from repro.robust.checkpoint import encode_value

    return [
        [name, arity, encode_value(list(db.facts(name, arity)))]
        for name, arity in sorted(db.predicates())
    ]


def _decode_database(rows: List[List[Any]]) -> Database:
    from repro.robust.checkpoint import decode_value

    db = Database()
    for name, _arity, encoded in rows:
        db.assert_all(name, [tuple(fact) for fact in decode_value(encoded)])
    return db


def _encode_error(exc: BaseException) -> Dict[str, Any]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "retry_after": getattr(exc, "retry_after", None),
        "klass": getattr(exc, "klass", None),
    }


def _error_types() -> Dict[str, type]:
    import repro.errors as core_errors
    import repro.serve.errors as serve_errors

    types: Dict[str, type] = {}
    for module in (core_errors, serve_errors):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type) and issubclass(obj, BaseException):
                types[name] = obj
    return types


_ERROR_TYPES = _error_types()


def _decode_error(payload: Dict[str, Any]) -> BaseException:
    cls = _ERROR_TYPES.get(payload["type"])
    message = payload.get("message", "")
    if cls is None:
        return ShardError(f"{payload['type']}: {message}")
    try:
        if issubclass(cls, CircuitOpen):
            return cls(
                message,
                retry_after=payload.get("retry_after") or 0.0,
                klass=payload.get("klass") or "",
            )
        if issubclass(cls, ServiceRejection):
            return cls(message, retry_after=payload.get("retry_after") or 0.0)
        return cls(message)
    except Exception:
        return ShardError(f"{payload['type']}: {message}")


def encode_response(response: QueryResponse) -> Dict[str, Any]:
    """A :class:`QueryResponse` as plain data.  The ``partial`` result
    (live engine state) deliberately does not cross the pipe — degraded
    responses keep their database snapshot and resumable checkpoint,
    which is everything a remote caller can act on."""
    from repro.robust.checkpoint import _to_payload

    payload: Dict[str, Any] = {
        "status": response.status,
        "attempts": response.attempts,
        "retries": response.retries,
        "latency_s": response.latency_s,
        "queue_s": response.queue_s,
        "metrics": response.metrics,
    }
    if response.database is not None:
        payload["database"] = _encode_database(response.database)
    if response.checkpoint is not None:
        payload["checkpoint"] = _to_payload(response.checkpoint)
    if response.error is not None:
        payload["error"] = _encode_error(response.error)
    return payload


def decode_response(rid: int, payload: Dict[str, Any]) -> QueryResponse:
    """Rebuild the caller-facing :class:`QueryResponse` from the wire
    payload (inverse of :func:`encode_response`)."""
    from repro.robust.checkpoint import _from_payload

    return QueryResponse(
        request_id=rid,
        status=payload["status"],
        database=(
            _decode_database(payload["database"])
            if "database" in payload
            else None
        ),
        checkpoint=(
            _from_payload(payload["checkpoint"])
            if "checkpoint" in payload
            else None
        ),
        error=_decode_error(payload["error"]) if "error" in payload else None,
        attempts=payload.get("attempts", 0),
        retries=payload.get("retries", 0),
        latency_s=payload.get("latency_s", 0.0),
        queue_s=payload.get("queue_s", 0.0),
        metrics=payload.get("metrics", {}),
    )


#: Injectable clock for the worker's latency stamps — tests replace this
#: with a fake to make shard-side timings deterministic.
_now = time.monotonic


def _rejection_response(exc: BaseException, started: float) -> Dict[str, Any]:
    """The wire response for a request the inner service rejected at the
    door (overload, open breaker, closed) — shed, typed, never lost."""
    status = SHED if isinstance(exc, ServiceRejection) else FAILED
    return {
        "status": status,
        "error": _encode_error(exc),
        "attempts": 0,
        "retries": 0,
        "latency_s": _now() - started,
        "queue_s": 0.0,
        "metrics": {},
    }


# -- the worker process ---------------------------------------------------------


def _visit(site: str) -> None:
    hook = faults._SHARD_HOOK
    if hook is not None:
        hook(site)


def shard_worker_main(shard_id: int, conn: Any, config: ShardConfig) -> None:
    """The child process entry point: run one shard until told to close
    (or until the parent disappears, or an injected fault kills us)."""
    if config.fault_plans or config.crash_after is not None:
        injector = FaultInjector(list(config.fault_plans))
        injector.crash_after = config.crash_after
        install(injector)

    from repro.durable import CheckpointStore, DurabilityPolicy
    from repro.robust.governor import Budget
    from repro.serve.service import QueryService, Ticket

    store = None
    durability = None
    if config.durable_root is not None:
        store = CheckpointStore.for_shard(
            config.durable_root, shard_id, fsync=config.fsync
        )
        durability = DurabilityPolicy(every_seconds=config.every_seconds)
    default_budget = (
        Budget(wall_clock=config.default_budget_wall_clock)
        if config.default_budget_wall_clock is not None
        else None
    )
    service = QueryService(
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        seed=config.seed,
        store=store,
        durability=durability,
        default_budget=default_budget,
    )

    pending: Dict[int, Ticket] = {}
    recovered: List[int] = []
    if store is not None:
        for rid, ticket in service.recover(resubmit=True).items():
            if rid.isdigit():
                pending[int(rid)] = ticket
                recovered.append(int(rid))
    conn.send(("ready", shard_id, os.getpid()))
    conn.send(("recovered", sorted(recovered)))

    closing = False
    try:
        while True:
            _visit("shard.loop")
            while conn.poll(0.0 if pending else 0.01):
                message = conn.recv()
                kind = message[0]
                if kind == "submit":
                    rid, payload = message[1], message[2]
                    started = _now()
                    request = QueryRequest.from_payload(payload)
                    try:
                        pending[rid] = service.submit(request, request_id=rid)
                    except ReproError as exc:
                        conn.send(
                            ("response", rid, _rejection_response(exc, started))
                        )
                elif kind == "cancel":
                    ticket = pending.get(message[1])
                    if ticket is not None:
                        ticket.cancel()
                elif kind == "ping":
                    conn.send(
                        ("pong", message[1], service.queue.depth(), len(pending))
                    )
                elif kind == "close":
                    closing = True
                    break
            for rid in list(pending):
                ticket = pending[rid]
                if not ticket.done:
                    continue
                response = ticket.response(0)
                _visit("shard.ack")
                conn.send(("response", rid, encode_response(response)))
                del pending[rid]
            if closing:
                # Drain: in-flight requests finish, queued-but-unstarted
                # ones get the typed shutdown response from close().
                service.close(wait=True)
                for rid, ticket in list(pending.items()):
                    if ticket.done:
                        conn.send(
                            ("response", rid, encode_response(ticket.response(0)))
                        )
                conn.send(("bye",))
                break
    except (EOFError, BrokenPipeError, OSError):
        # The parent is gone; there is nobody to serve.  Durable state is
        # on disk — a future front door recovers it.
        pass
    finally:
        if not closing:
            service.close(wait=False, timeout=1.0)
        if store is not None:
            store.close()
        try:
            conn.close()
        except OSError:
            pass


# -- the parent-side handle -----------------------------------------------------


@dataclass
class ShardHandle:
    """The front door's grip on one worker process: its pipe end, its
    lifecycle bookkeeping, and a send path safe to use from the caller
    threads and the supervisor thread at once.

    Sends go through a dedicated per-generation **sender thread**, never
    directly from the caller.  This is load-bearing, not a convenience:
    a duplex pipe deadlocks when both ends block writing into full
    buffers at once — exactly what a bulk resend after a crash produces
    (the supervisor pushing hundreds of retained payloads while the
    worker pushes responses back, neither reading).  With the sender
    thread, the supervisor thread only ever *reads*, so the worker's
    sends always drain, so the worker keeps reading, so the sender
    thread's blocking writes always complete.  A message enqueued toward
    a dying worker is simply dropped when the sender thread exits — the
    restart protocol resends everything unacknowledged anyway.
    """

    shard_id: int
    config: ShardConfig
    ctx: Any
    process: Any = None
    conn: Any = None
    #: rids currently assigned to this shard (owned by the supervisor's
    #: pending registry; mirrored here for cheap reassignment).
    generation: int = 0
    _outbox: Any = field(default=None, repr=False, compare=False)

    def spawn(self) -> None:
        """Start (or restart) the worker process on a fresh pipe."""
        parent_end, child_end = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=shard_worker_main,
            args=(self.shard_id, child_end, self.config),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_end.close()
        self.conn = parent_end
        self.generation += 1
        # A fresh outbox per generation: the old sender thread stays
        # married to the old pipe and dies with it (its blocked write
        # raises once the dead worker's end closes).
        self._outbox = queue.Queue()
        threading.Thread(
            target=self._send_loop,
            args=(parent_end, self._outbox),
            name=f"repro-shard-{self.shard_id}-send",
            daemon=True,
        ).start()

    @staticmethod
    def _send_loop(conn: Any, outbox: Any) -> None:
        while True:
            message = outbox.get()
            if message is None:
                return
            try:
                conn.send(message)
            except (BrokenPipeError, ValueError, OSError):
                return

    def send(self, message: Tuple[Any, ...]) -> bool:
        """Enqueue for the sender thread; ``False`` when the worker end
        is already gone (the supervisor turns that into a crash
        observation, not an error).  Never blocks on the pipe."""
        outbox = self._outbox
        if outbox is None or self.conn is None:
            return False
        outbox.put(message)
        return True

    def poll(self) -> bool:
        if self.conn is None:
            return False
        try:
            return self.conn.poll(0.0)
        except (BrokenPipeError, OSError):
            return False

    def recv(self) -> Optional[Tuple[Any, ...]]:
        try:
            return self.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            return None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return None if self.process is None else self.process.exitcode

    def kill(self, join_timeout: float = 2.0) -> None:
        """SIGKILL the worker (used for hung shards and final cleanup)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(join_timeout)
        if self._outbox is not None:
            self._outbox.put(None)  # idle sender thread: exit cleanly
            self._outbox = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
