"""The shard worker process and its wire protocol.

A shard is one OS process owning a private
:class:`~repro.serve.service.QueryService` and (when serving durably) a
private :class:`~repro.durable.store.CheckpointStore` WAL directory
(``<durable_dir>/shard-<k>``, held under an exclusive ``flock`` so two
live workers can never interleave one log).  Processes — not threads —
because the engine is pure Python: N shards are N interpreters, so
CPU-bound programs scale with cores instead of serializing on one GIL.

Everything crosses the pipe as plain picklable data — payload dicts from
:meth:`QueryRequest.to_payload`, response dicts from
:func:`encode_response` — never live objects, so parent and child agree
on nothing but the protocol below.

Parent → child::

    ("submit", rid, payload)   route one request (rid is front-door-global)
    ("cancel", rid)            cooperative cancellation
    ("ping", seq)              heartbeat probe
    ("close",)                 drain and exit cleanly
    ("manifest",)              primary: build the WAL segment manifest
    ("fetch", index, length)   primary: read a pinned segment prefix
    ("ship", seq, index, payload)      standby: apply one live record
    ("ship-compact", seq, index, data) standby: mirror a compaction
    ("promote", token)         standby: become the primary under *token*

Child → parent::

    ("ready", shard_id, pid)   the worker is up, inner service running
    ("recovered", [rids])      journalled-not-done rids the shard is
                               re-running from its WAL (empty when fresh
                               or non-durable) — the supervisor resends
                               any in-flight rid *not* in this list,
                               because a request that died in the pipe
                               was never journalled anywhere
    ("pong", seq, depth, inflight)     (standby: seq, applied_seq, state)
    ("response", rid, payload) terminal outcome for rid
    ("bye",)                   clean-close acknowledgement
    ("sync-request",)          standby: start anti-entropy (wants the
                               primary's manifest)
    ("manifest", entries)      primary: the segment manifest
    ("segment", index, data)   primary: one pinned segment prefix
    ("ship", ...), ("ship-compact", ...)   primary: the live ship stream
                               (relayed by the supervisor to the standby)
    ("standby-state", state, diverged)     standby went warm; *diverged*
                               reports whether local bytes had to be
                               discarded (surfaced as ``repl-diverged``)
    ("fenced", token, held)    the worker found a newer fence token on
                               disk and is refusing to publish

Either direction may wrap consecutive messages as ``("batch", [msgs])``
— one pipe write (one syscall, one pickle) per poll-loop pass instead of
one per message; both ends unwrap transparently.  ``ShardConfig.pipe_batch``
turns it off for A/B measurement.

Zero-loss argument, end to end: the front door keeps every submitted
``(rid, payload)`` until the owning shard's ``response`` arrives.  Inside
the shard, the inner service journals before running and marks done
before completing (PR 5's ordering).  If the process dies *before* the
run finishes, the restarted shard's ``recover()`` finds the rid pending
and re-runs it from its newest durable checkpoint (reported via
``recovered``).  If it dies *after* finishing but before the response
crossed the pipe — the ``shard.ack`` kill window — the rid is durably
done, so ``recovered`` omits it and the supervisor resends the retained
payload; the rerun is seeded, so the model is byte-identical.  Either
way the caller's ticket terminates with the right answer.

Fault sites (:data:`repro.robust.faults.SHARD_SITES`) visited by the
worker loop: ``shard.loop`` at the top of every iteration (a repeating
``delay`` plan is a hung worker), ``shard.ack`` immediately before each
response send (an ``exit`` plan is kill-before-ack).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, StoreFenced
from repro.robust import faults
from repro.robust.faults import FaultInjector, FaultPlan, install
from repro.serve.errors import (
    CircuitOpen,
    ServiceRejection,
    ShardError,
)
from repro.serve.request import (
    FAILED,
    SHED,
    QueryRequest,
    QueryResponse,
)
from repro.storage.database import Database

__all__ = [
    "ShardConfig",
    "ShardHandle",
    "shard_worker_main",
    "encode_response",
    "decode_response",
]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a spawned worker needs, as picklable plain data.

    Attributes:
        workers: worker threads inside the shard's inner service.
        queue_capacity: the inner admission queue bound.
        seed: inner service seed (retry jitter reproducibility).
        durable_root: the front door's durable directory; the shard owns
            ``<durable_root>/shard-<k>`` under it.  ``None`` disables
            durability (and with it crash recovery).
        fsync: the shard store's fsync policy.
        every_seconds: durability cadence for the shard's runs.
        default_budget_wall_clock: optional wall-clock budget applied to
            requests that carry none.
        fault_plans: :class:`FaultPlan`\\ s installed process-wide in the
            child at startup (chaos tests; empty in production).
        crash_after: shared crash-point countdown, as in
            :func:`repro.robust.faults.inject`.
        role: ``"primary"`` serves requests; ``"standby"`` replays the
            primary's shipped WAL and serves nothing until promoted.
        wal_name: the WAL slot directory name under ``durable_root``
            (:func:`repro.serve.routing.wal_slot`); ``None`` keeps PR 8's
            ``shard-<k>`` default.
        replicate: primary only — install the ship hooks and stream
            every durable record up the pipe for relay to the standby.
        fence_token: the fencing token this worker serves under (``0``
            when the shard was never promoted); a promoted standby gets
            the new token here and stamps it durably before serving.
        fence_file: the shard's fence-file path
            (:func:`repro.durable.replication.fence_path`); a worker that
            finds a *newer* token there refuses to publish and reports
            ``("fenced", ...)`` instead — the zombie half of fencing.
        pipe_batch: coalesce pipe messages into per-pass batches (on by
            default; the throughput micro-bench flips it for its
            control run).
    """

    workers: int = 1
    queue_capacity: int = 64
    seed: int = 0
    durable_root: Optional[str] = None
    fsync: str = "always"
    every_seconds: float = 0.05
    default_budget_wall_clock: Optional[float] = None
    fault_plans: Tuple[FaultPlan, ...] = ()
    crash_after: Optional[int] = None
    role: str = "primary"
    wal_name: Optional[str] = None
    replicate: bool = False
    fence_token: int = 0
    fence_file: Optional[str] = None
    pipe_batch: bool = True


# -- the wire codec -------------------------------------------------------------


def _encode_database(db: Any) -> List[List[Any]]:
    from repro.robust.checkpoint import encode_value

    return [
        [name, arity, encode_value(list(db.facts(name, arity)))]
        for name, arity in sorted(db.predicates())
    ]


def _decode_database(rows: List[List[Any]]) -> Database:
    from repro.robust.checkpoint import decode_value

    db = Database()
    for name, _arity, encoded in rows:
        db.assert_all(name, [tuple(fact) for fact in decode_value(encoded)])
    return db


def _encode_error(exc: BaseException) -> Dict[str, Any]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "retry_after": getattr(exc, "retry_after", None),
        "klass": getattr(exc, "klass", None),
    }


def _error_types() -> Dict[str, type]:
    import repro.errors as core_errors
    import repro.serve.errors as serve_errors

    types: Dict[str, type] = {}
    for module in (core_errors, serve_errors):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type) and issubclass(obj, BaseException):
                types[name] = obj
    return types


_ERROR_TYPES = _error_types()


def _decode_error(payload: Dict[str, Any]) -> BaseException:
    cls = _ERROR_TYPES.get(payload["type"])
    message = payload.get("message", "")
    if cls is None:
        return ShardError(f"{payload['type']}: {message}")
    try:
        if issubclass(cls, CircuitOpen):
            return cls(
                message,
                retry_after=payload.get("retry_after") or 0.0,
                klass=payload.get("klass") or "",
            )
        if issubclass(cls, ServiceRejection):
            return cls(message, retry_after=payload.get("retry_after") or 0.0)
        return cls(message)
    except Exception:
        return ShardError(f"{payload['type']}: {message}")


def encode_response(response: QueryResponse) -> Dict[str, Any]:
    """A :class:`QueryResponse` as plain data.  The ``partial`` result
    (live engine state) deliberately does not cross the pipe — degraded
    responses keep their database snapshot and resumable checkpoint,
    which is everything a remote caller can act on."""
    from repro.robust.checkpoint import _to_payload

    payload: Dict[str, Any] = {
        "status": response.status,
        "attempts": response.attempts,
        "retries": response.retries,
        "latency_s": response.latency_s,
        "queue_s": response.queue_s,
        "metrics": response.metrics,
    }
    if response.database is not None:
        payload["database"] = _encode_database(response.database)
    if response.checkpoint is not None:
        payload["checkpoint"] = _to_payload(response.checkpoint)
    if response.error is not None:
        payload["error"] = _encode_error(response.error)
    return payload


def decode_response(rid: int, payload: Dict[str, Any]) -> QueryResponse:
    """Rebuild the caller-facing :class:`QueryResponse` from the wire
    payload (inverse of :func:`encode_response`)."""
    from repro.robust.checkpoint import _from_payload

    return QueryResponse(
        request_id=rid,
        status=payload["status"],
        database=(
            _decode_database(payload["database"])
            if "database" in payload
            else None
        ),
        checkpoint=(
            _from_payload(payload["checkpoint"])
            if "checkpoint" in payload
            else None
        ),
        error=_decode_error(payload["error"]) if "error" in payload else None,
        attempts=payload.get("attempts", 0),
        retries=payload.get("retries", 0),
        latency_s=payload.get("latency_s", 0.0),
        queue_s=payload.get("queue_s", 0.0),
        metrics=payload.get("metrics", {}),
    )


#: Injectable clock for the worker's latency stamps — tests replace this
#: with a fake to make shard-side timings deterministic.
_now = time.monotonic


def _rejection_response(exc: BaseException, started: float) -> Dict[str, Any]:
    """The wire response for a request the inner service rejected at the
    door (overload, open breaker, closed) — shed, typed, never lost."""
    status = SHED if isinstance(exc, ServiceRejection) else FAILED
    return {
        "status": status,
        "error": _encode_error(exc),
        "attempts": 0,
        "retries": 0,
        "latency_s": _now() - started,
        "queue_s": 0.0,
        "metrics": {},
    }


# -- the worker process ---------------------------------------------------------


def _visit(site: str) -> None:
    hook = faults._SHARD_HOOK
    if hook is not None:
        hook(site)


class _Outgoing:
    """The worker's per-pass send buffer: messages accumulate during one
    poll-loop pass and leave as a single ``("batch", [...])`` pipe write
    (or individually, with batching off / a single message)."""

    def __init__(self, conn: Any, batch: bool):
        self.conn = conn
        self.batch = batch
        self.buffer: List[Tuple[Any, ...]] = []

    def send(self, message: Tuple[Any, ...]) -> None:
        self.buffer.append(message)

    def flush(self) -> None:
        if not self.buffer:
            return
        if self.batch and len(self.buffer) > 1:
            self.conn.send(("batch", self.buffer))
            self.buffer = []
        else:
            for message in self.buffer:
                self.conn.send(message)
            self.buffer = []


def _drain_inbox(conn: Any, timeout: float) -> List[Tuple[Any, ...]]:
    """Every message waiting on *conn* (waiting up to *timeout* for the
    first), with ``("batch", ...)`` envelopes unwrapped."""
    messages: List[Tuple[Any, ...]] = []
    while conn.poll(timeout if not messages else 0.0):
        message = conn.recv()
        if message and message[0] == "batch":
            messages.extend(message[1])
        else:
            messages.append(message)
    return messages


def shard_worker_main(shard_id: int, conn: Any, config: ShardConfig) -> None:
    """The child process entry point: run one shard until told to close
    (or until the parent disappears, or an injected fault kills us).

    A ``"standby"`` worker replays the ship stream until promoted; on
    promotion it reopens its replica log as the real store and falls into
    the primary loop — same process, same pipe, new role.
    """
    if config.fault_plans or config.crash_after is not None:
        injector = FaultInjector(list(config.fault_plans))
        injector.crash_after = config.crash_after
        install(injector)
    try:
        if config.role == "standby":
            token = _standby_main(shard_id, conn, config)
            if token is None:
                return
            import dataclasses

            config = dataclasses.replace(
                config, role="primary", fence_token=token
            )
        _primary_main(shard_id, conn, config)
    except StoreFenced:
        # Promoted away from under us: the ``("fenced", ...)`` report has
        # already crossed the pipe, and the typed error is this worker's
        # own stop signal — exiting without publishing IS the refusal.
        pass
    except (EOFError, BrokenPipeError, OSError):
        # The parent is gone; there is nobody to serve.  Durable state is
        # on disk — a future front door recovers it.
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _wal_root(shard_id: int, config: ShardConfig) -> str:
    return os.path.join(
        config.durable_root, config.wal_name or f"shard-{shard_id}"
    )


def _primary_main(shard_id: int, conn: Any, config: ShardConfig) -> None:
    from repro.durable import CheckpointStore, DurabilityPolicy
    from repro.durable.replication import (
        build_manifest,
        read_fence_token,
        read_segment,
    )
    from repro.robust.governor import Budget
    from repro.serve.service import QueryService, Ticket

    held = config.fence_token
    if config.fence_file is not None:
        disk = read_fence_token(config.fence_file)
        if disk > held:
            conn.send(("fenced", disk, held))
            raise StoreFenced(
                f"shard {shard_id} fenced before startup",
                token=disk,
                held=held,
            )

    store = None
    durability = None
    ship_queue: Optional["queue.Queue[Tuple[Any, ...]]"] = None
    if config.durable_root is not None:
        store = CheckpointStore(
            _wal_root(shard_id, config), fsync=config.fsync, exclusive=True
        )
        durability = DurabilityPolicy(every_seconds=config.every_seconds)
        held = max(held, store.fence_token)
        if config.fence_token > store.fence_token:
            # A promoted standby stamps its token durably before serving
            # a single request — the promotion is not real until this is.
            store.write_fence(config.fence_token)
        if config.replicate:
            ship_queue = queue.Queue()
            seq_box = [0]

            # Both hooks fire under the store lock (post-fsync), so the
            # counter needs no lock of its own and the ship stream is
            # totally ordered with the log.
            def _on_append(index: int, payload: bytes) -> None:
                _visit("repl.ship")
                seq_box[0] += 1
                ship_queue.put(("ship", seq_box[0], index, payload))

            def _on_compact(index: int, data: bytes) -> None:
                seq_box[0] += 1
                ship_queue.put(("ship-compact", seq_box[0], index, data))

            store.on_append = _on_append
            store.on_compact = _on_compact
    default_budget = (
        Budget(wall_clock=config.default_budget_wall_clock)
        if config.default_budget_wall_clock is not None
        else None
    )
    service = QueryService(
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        seed=config.seed,
        store=store,
        durability=durability,
        default_budget=default_budget,
    )

    pending: Dict[int, Ticket] = {}
    recovered: List[int] = []
    if store is not None:
        for rid, ticket in service.recover(resubmit=True).items():
            if rid.isdigit():
                pending[int(rid)] = ticket
                recovered.append(int(rid))
    out = _Outgoing(conn, config.pipe_batch)
    conn.send(("ready", shard_id, os.getpid()))
    conn.send(("recovered", sorted(recovered)))

    def _drain_ships() -> None:
        if ship_queue is None:
            return
        while True:
            try:
                out.send(ship_queue.get_nowait())
            except queue.Empty:
                return

    def _fenced_now() -> int:
        """The newer token on disk, or 0 while we still own the shard."""
        if config.fence_file is None:
            return 0
        disk = read_fence_token(config.fence_file)
        return disk if disk > held else 0

    closing = False
    fence_checked = _now()
    try:
        while True:
            _visit("shard.loop")
            for message in _drain_inbox(conn, 0.0 if pending else 0.01):
                kind = message[0]
                if kind == "submit":
                    rid, payload = message[1], message[2]
                    started = _now()
                    request = QueryRequest.from_payload(payload)
                    try:
                        pending[rid] = service.submit(request, request_id=rid)
                    except ReproError as exc:
                        out.send(
                            ("response", rid, _rejection_response(exc, started))
                        )
                elif kind == "cancel":
                    ticket = pending.get(message[1])
                    if ticket is not None:
                        ticket.cancel()
                elif kind == "ping":
                    out.send(
                        ("pong", message[1], service.queue.depth(), len(pending))
                    )
                elif kind == "manifest" and store is not None:
                    # Under the store lock nothing can append, so the
                    # manifest pins an exact prefix and every record
                    # shipped after this message is exactly the suffix.
                    with store._lock:
                        _drain_ships()
                        out.send(("manifest", build_manifest(store.root)))
                elif kind == "fetch" and store is not None:
                    index, length = message[1], message[2]
                    out.send(
                        ("segment", index, read_segment(store.root, index, length))
                    )
                elif kind == "close":
                    closing = True
                    break
            done_rids = [rid for rid in pending if pending[rid].done]
            if done_rids or _now() - fence_checked >= 0.05:
                # Fencing: always re-checked before publishing a
                # response, and periodically while idle.
                fence_checked = _now()
                newer = _fenced_now()
                if newer:
                    service.close(wait=False, timeout=0.5)
                    out.buffer = []  # publish nothing, not even pongs
                    out.send(("fenced", newer, held))
                    out.flush()
                    raise StoreFenced(
                        f"shard {shard_id} fenced while serving",
                        token=newer,
                        held=held,
                    )
            for rid in done_rids:
                response = pending[rid].response(0)
                _visit("shard.ack")
                out.send(("response", rid, encode_response(response)))
                del pending[rid]
            _drain_ships()
            out.flush()
            if closing:
                # Drain: in-flight requests finish, queued-but-unstarted
                # ones get the typed shutdown response from close().
                service.close(wait=True)
                for rid, ticket in list(pending.items()):
                    if ticket.done:
                        out.send(
                            ("response", rid, encode_response(ticket.response(0)))
                        )
                _drain_ships()
                out.send(("bye",))
                out.flush()
                break
    finally:
        if not closing:
            service.close(wait=False, timeout=1.0)
        if store is not None:
            store.close()


def _standby_main(shard_id: int, conn: Any, config: ShardConfig) -> Optional[int]:
    """The standby loop: anti-entropy sync, then continuous replay of
    the ship stream.  Returns the fencing token on promotion (the caller
    re-enters as a primary) or ``None`` on clean close."""
    from repro.durable.replication import ReplicaWal

    replica = ReplicaWal(_wal_root(shard_id, config), fsync=config.fsync)
    out = _Outgoing(conn, config.pipe_batch)
    conn.send(("ready", shard_id, os.getpid()))
    conn.send(("sync-request",))

    state = "syncing"
    awaiting: Dict[int, Dict[str, Any]] = {}
    buffered: List[Tuple[Any, ...]] = []
    applied_seq = 0
    diverged = False
    seen_manifest = False

    def _apply(message: Tuple[Any, ...]) -> None:
        _visit("repl.ack")
        if message[0] == "ship":
            replica.append(message[2], message[3])
        else:
            replica.apply_compact(message[2], message[3])

    def _go_warm() -> None:
        nonlocal state, applied_seq, buffered
        state = "warm"
        for message in buffered:
            _apply(message)
            applied_seq = message[1]
        buffered = []
        out.send(("standby-state", "warm", diverged))

    try:
        while True:
            _visit("shard.loop")
            for message in _drain_inbox(conn, 0.02):
                kind = message[0]
                if kind == "manifest":
                    seen_manifest = True
                    plan = replica.plan_sync(message[1])
                    diverged = plan.diverged
                    for index in plan.delete:
                        replica.delete_segment(index)
                    for entry in plan.fetch:
                        awaiting[entry["index"]] = entry
                        out.send(("fetch", entry["index"], entry["length"]))
                    if not awaiting:
                        _go_warm()
                elif kind == "segment":
                    entry = awaiting.pop(message[1], None)
                    if entry is not None:
                        replica.write_segment(entry, message[2])
                    if seen_manifest and not awaiting and state == "syncing":
                        _go_warm()
                elif kind in ("ship", "ship-compact"):
                    if state == "syncing":
                        buffered.append(message)
                    else:
                        _apply(message)
                        applied_seq = message[1]
                elif kind == "ping":
                    out.send(("pong", message[1], applied_seq, state))
                elif kind == "promote":
                    _visit("repl.promote")
                    replica.sync()
                    replica.close()
                    out.flush()
                    return message[1]
                elif kind == "close":
                    out.send(("bye",))
                    out.flush()
                    return None
            out.flush()
    finally:
        replica.close()


# -- the parent-side handle -----------------------------------------------------


@dataclass
class ShardHandle:
    """The front door's grip on one worker process: its pipe end, its
    lifecycle bookkeeping, and a send path safe to use from the caller
    threads and the supervisor thread at once.

    Sends go through a dedicated per-generation **sender thread**, never
    directly from the caller.  This is load-bearing, not a convenience:
    a duplex pipe deadlocks when both ends block writing into full
    buffers at once — exactly what a bulk resend after a crash produces
    (the supervisor pushing hundreds of retained payloads while the
    worker pushes responses back, neither reading).  With the sender
    thread, the supervisor thread only ever *reads*, so the worker's
    sends always drain, so the worker keeps reading, so the sender
    thread's blocking writes always complete.  A message enqueued toward
    a dying worker is simply dropped when the sender thread exits — the
    restart protocol resends everything unacknowledged anyway.
    """

    shard_id: int
    config: ShardConfig
    ctx: Any
    process: Any = None
    conn: Any = None
    #: rids currently assigned to this shard (owned by the supervisor's
    #: pending registry; mirrored here for cheap reassignment).
    generation: int = 0
    _outbox: Any = field(default=None, repr=False, compare=False)
    _inbox: List[Tuple[Any, ...]] = field(
        default_factory=list, repr=False, compare=False
    )

    def spawn(self) -> None:
        """Start (or restart) the worker process on a fresh pipe."""
        parent_end, child_end = self.ctx.Pipe(duplex=True)
        suffix = "-standby" if self.config.role == "standby" else ""
        self.process = self.ctx.Process(
            target=shard_worker_main,
            args=(self.shard_id, child_end, self.config),
            name=f"repro-shard-{self.shard_id}{suffix}",
            daemon=True,
        )
        self.process.start()
        child_end.close()
        self.conn = parent_end
        self.generation += 1
        self._inbox = []
        # A fresh outbox per generation: the old sender thread stays
        # married to the old pipe and dies with it (its blocked write
        # raises once the dead worker's end closes).
        self._outbox = queue.Queue()
        threading.Thread(
            target=self._send_loop,
            args=(parent_end, self._outbox, self.config.pipe_batch),
            name=f"repro-shard-{self.shard_id}{suffix}-send",
            daemon=True,
        ).start()

    @staticmethod
    def _send_loop(conn: Any, outbox: Any, batch: bool) -> None:
        exhausted = False
        while not exhausted:
            message = outbox.get()
            if message is None:
                return
            messages = [message]
            if batch:
                # Greedy drain: everything already enqueued (a bulk
                # resend, a burst of submits) leaves as one pipe write.
                while True:
                    try:
                        extra = outbox.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        exhausted = True
                        break
                    messages.append(extra)
            try:
                if len(messages) > 1:
                    conn.send(("batch", messages))
                else:
                    conn.send(messages[0])
            except (BrokenPipeError, ValueError, OSError):
                return

    def send(self, message: Tuple[Any, ...]) -> bool:
        """Enqueue for the sender thread; ``False`` when the worker end
        is already gone (the supervisor turns that into a crash
        observation, not an error).  Never blocks on the pipe."""
        outbox = self._outbox
        if outbox is None or self.conn is None:
            return False
        outbox.put(message)
        return True

    def poll(self) -> bool:
        if self._inbox:
            return True
        if self.conn is None:
            return False
        try:
            return self.conn.poll(0.0)
        except (BrokenPipeError, OSError):
            return False

    def recv(self) -> Optional[Tuple[Any, ...]]:
        if self._inbox:
            return self._inbox.pop(0)
        try:
            message = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            return None
        if message and message[0] == "batch":
            self._inbox = list(message[1])
            return self._inbox.pop(0) if self._inbox else None
        return message

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return None if self.process is None else self.process.exitcode

    def kill(self, join_timeout: float = 2.0) -> None:
        """SIGKILL the worker (used for hung shards and final cleanup)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(join_timeout)
        if self._outbox is not None:
            self._outbox.put(None)  # idle sender thread: exit cleanly
            self._outbox = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
