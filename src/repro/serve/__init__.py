"""Resilient query service: concurrent evaluation with admission control,
retries, circuit breaking and graceful degradation.

The package turns the single-run pipeline into a long-lived front end
(see ``docs/serving.md``):

* :class:`~repro.serve.service.QueryService` — the worker pool; submit
  :class:`~repro.serve.request.QueryRequest` objects, get
  :class:`~repro.serve.request.QueryResponse` accounts back, always.
* :class:`~repro.serve.supervisor.ShardedQueryService` — N worker
  *processes* behind a fingerprint-routing front door, heartbeated and
  restarted by the :class:`~repro.serve.supervisor.Supervisor` (each
  shard owns a private WAL directory and recovers it after a crash).
* :class:`~repro.serve.admission.AdmissionQueue` — the bounded,
  deadline-aware queue that sheds instead of growing.
* :mod:`~repro.serve.errors` — the typed rejections
  (:class:`Overloaded`, :class:`CircuitOpen`, :class:`ServiceClosed`,
  :class:`ShardDown`).
* :class:`~repro.serve.metrics.ServiceMetrics` — the ``serve/`` (and the
  front door's ``shard/``) namespace behind ``stats()``.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.errors import (
    CircuitOpen,
    Overloaded,
    ServiceClosed,
    ServiceError,
    ServiceRejection,
    ShardDown,
    ShardError,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    CANCELLED,
    DEGRADED,
    FAILED,
    OK,
    SHED,
    TERMINAL_STATUSES,
    QueryRequest,
    QueryResponse,
)
from repro.serve.routing import failover_order, route
from repro.serve.service import QueryService, Ticket
from repro.serve.shard import ShardConfig
from repro.serve.supervisor import ShardedQueryService, Supervisor

__all__ = [
    "AdmissionQueue",
    "CircuitOpen",
    "Overloaded",
    "ServiceClosed",
    "ServiceError",
    "ServiceRejection",
    "ShardDown",
    "ShardError",
    "ServiceMetrics",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ShardConfig",
    "ShardedQueryService",
    "Supervisor",
    "Ticket",
    "route",
    "failover_order",
    "TERMINAL_STATUSES",
    "OK",
    "DEGRADED",
    "FAILED",
    "SHED",
    "CANCELLED",
]
