"""Resilient query service: concurrent evaluation with admission control,
retries, circuit breaking and graceful degradation.

The package turns the single-run pipeline into a long-lived front end
(see ``docs/serving.md``):

* :class:`~repro.serve.service.QueryService` — the worker pool; submit
  :class:`~repro.serve.request.QueryRequest` objects, get
  :class:`~repro.serve.request.QueryResponse` accounts back, always.
* :class:`~repro.serve.admission.AdmissionQueue` — the bounded,
  deadline-aware queue that sheds instead of growing.
* :mod:`~repro.serve.errors` — the typed rejections
  (:class:`Overloaded`, :class:`CircuitOpen`, :class:`ServiceClosed`).
* :class:`~repro.serve.metrics.ServiceMetrics` — the ``serve/``
  namespace behind :meth:`QueryService.stats`.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.errors import (
    CircuitOpen,
    Overloaded,
    ServiceClosed,
    ServiceError,
    ServiceRejection,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    CANCELLED,
    DEGRADED,
    FAILED,
    OK,
    SHED,
    TERMINAL_STATUSES,
    QueryRequest,
    QueryResponse,
)
from repro.serve.service import QueryService, Ticket

__all__ = [
    "AdmissionQueue",
    "CircuitOpen",
    "Overloaded",
    "ServiceClosed",
    "ServiceError",
    "ServiceRejection",
    "ServiceMetrics",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "Ticket",
    "TERMINAL_STATUSES",
    "OK",
    "DEGRADED",
    "FAILED",
    "SHED",
    "CANCELLED",
]
