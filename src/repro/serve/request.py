"""The query service's request/response vocabulary.

A :class:`QueryRequest` is everything one evaluation needs — program
text, facts, engine, seed, budget, deadline — plus the resilience knobs
(program class for the breaker, a checkpoint to resume from).  A
:class:`QueryResponse` is the *always-returned* account of what happened:
the service never loses a request — every submission ends in exactly one
of the :data:`TERMINAL_STATUSES`, and degraded completion (budget ran
out, here is the partial result and a resumable checkpoint) is a
first-class success-shaped outcome, not an exception.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.robust.governor import Budget

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "TERMINAL_STATUSES",
    "OK",
    "DEGRADED",
    "FAILED",
    "SHED",
    "CANCELLED",
]

Fact = Tuple[Any, ...]

OK = "ok"
DEGRADED = "degraded"
FAILED = "failed"
SHED = "shed"
CANCELLED = "cancelled"

#: Every request submitted to the service ends in exactly one of these.
TERMINAL_STATUSES = (OK, DEGRADED, FAILED, SHED, CANCELLED)


@dataclass
class QueryRequest:
    """One evaluation job for the :class:`~repro.serve.service.QueryService`.

    Attributes:
        program: the Datalog source text.
        facts: extensional input, ``{predicate: [tuples]}``.
        engine: engine name (see :data:`repro.core.compiler.ENGINES`).
        seed: rng seed for the γ draws; a seeded request is reproducible
            across retries — a transient fault followed by a retry lands
            on the same model the fault-free run produces.
        budget: per-run resource limits enforced by the request's own
            :class:`~repro.robust.governor.RunGovernor`; exhaustion
            produces a *degraded* response, not a failure.
        deadline: seconds from submission after which the request is
            worthless to the caller.  Enforced twice: requests still
            queued past their deadline are shed (typed ``Overloaded``),
            and a running request's wall-clock budget is clipped to the
            remaining deadline.
        klass: circuit-breaker class; defaults to ``engine:<hash of the
            program text>``, so "the same program keeps failing" is
            detected without caller cooperation.
        resume_from: a :class:`~repro.robust.checkpoint.Checkpoint` from
            an earlier degraded response; the service restores it (with
            the fingerprint check) and continues instead of starting over.
        updates: when not ``None``, this request targets the *live
            materialized view* of ``(program, engine, seed)`` instead of
            a from-scratch run: each entry is an update op string
            (``"+pred(a, 1)"`` / ``"-pred(a, 1)"``), applied — together
            with any ``facts``, treated as inserts — as one atomic
            :class:`~repro.incremental.update.UpdateBatch`, and the
            response database is the maintained model.  An empty list is
            a pure read of the view.  The batch id is derived from the
            request id, so crash-recovery resubmission applies each
            batch exactly once.
    """

    program: str
    facts: Mapping[str, Iterable[Fact]] = field(default_factory=dict)
    engine: str = "rql"
    seed: Optional[int] = None
    budget: Optional[Budget] = None
    deadline: Optional[float] = None
    klass: Optional[str] = None
    resume_from: Optional[Any] = None
    updates: Optional[list] = None

    def breaker_class(self) -> str:
        """The circuit-breaker key this request falls under."""
        if self.klass:
            return self.klass
        digest = hashlib.sha256(self.program.encode("utf-8")).hexdigest()[:8]
        return f"{self.engine}:{digest}"

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-ready account of this request, complete enough that a
        restarted process can rebuild and re-run it
        (:meth:`from_payload`).  Used by the durable store's request
        journal; nested fact tuples and a ``resume_from`` checkpoint
        survive the round trip."""
        from repro.robust.checkpoint import _to_payload, encode_value

        return {
            "program": self.program,
            "facts": {
                name: encode_value(list(rows)) for name, rows in self.facts.items()
            },
            "engine": self.engine,
            "seed": self.seed,
            "budget": (
                {
                    "wall_clock": self.budget.wall_clock,
                    "max_gamma_steps": self.budget.max_gamma_steps,
                    "max_rounds": self.budget.max_rounds,
                    "max_facts": self.budget.max_facts,
                    "max_memory_mb": self.budget.max_memory_mb,
                }
                if self.budget is not None
                else None
            ),
            "deadline": self.deadline,
            "klass": self.klass,
            "resume_from": (
                _to_payload(self.resume_from) if self.resume_from is not None else None
            ),
            "updates": list(self.updates) if self.updates is not None else None,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        """Rebuild a request journalled by :meth:`to_payload`."""
        from repro.robust.checkpoint import _from_payload, decode_value

        budget = payload.get("budget")
        resume_from = payload.get("resume_from")
        return cls(
            program=payload["program"],
            facts={
                name: list(decode_value(rows))
                for name, rows in payload.get("facts", {}).items()
            },
            engine=payload.get("engine", "rql"),
            seed=payload.get("seed"),
            budget=Budget(**budget) if budget is not None else None,
            deadline=payload.get("deadline"),
            klass=payload.get("klass"),
            resume_from=(
                _from_payload(resume_from) if resume_from is not None else None
            ),
            updates=(
                list(payload["updates"]) if payload.get("updates") is not None else None
            ),
        )


@dataclass
class QueryResponse:
    """The terminal account of one submitted request.

    Attributes:
        request_id: the service-assigned id (submission order).
        status: one of :data:`TERMINAL_STATUSES`.
        database: the computed model (``ok``) or the partial database
            snapshot (``degraded``/``cancelled``); ``None`` otherwise.
        partial: the :class:`~repro.robust.governor.PartialResult` of a
            ``degraded``/``cancelled`` stop.
        checkpoint: the resumable checkpoint of that stop — feed it back
            as ``QueryRequest.resume_from`` to continue.
        error: the exception for ``failed``/``shed``/``cancelled``
            (``Overloaded`` for shed requests; the final engine error for
            failures).
        attempts: execution attempts made (1 + retries).
        retries: transient-fault retries performed.
        latency_s: submit-to-terminal wall time in seconds.
        queue_s: time spent waiting in the admission queue.
        metrics: the request's private registry snapshot (engine counters,
            phase timers) — per-request observability regardless of what
            the service-wide registry aggregates.
        trace: the request's span/event records when the service traces.
    """

    request_id: int
    status: str
    database: Any = None
    partial: Any = None
    checkpoint: Any = None
    error: Optional[BaseException] = None
    attempts: int = 0
    retries: int = 0
    latency_s: float = 0.0
    queue_s: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace: Any = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a usable database (complete or
        degraded-but-partial)."""
        return self.status in (OK, DEGRADED)

    def summary(self) -> str:
        """One line for logs and the ``repro serve`` CLI."""
        base = f"request {self.request_id}: {self.status}"
        if self.retries:
            base += f" after {self.retries} retr{'y' if self.retries == 1 else 'ies'}"
        if self.status == OK and self.database is not None:
            base += f" ({self.database.total_facts()} facts"
        elif self.status in (DEGRADED, CANCELLED) and self.partial is not None:
            base += f" ({self.partial.database.total_facts()} facts so far"
        else:
            base += f" ({type(self.error).__name__ if self.error else 'no result'}"
        base += f", {self.latency_s * 1000:.1f} ms)"
        return base
