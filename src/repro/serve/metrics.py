"""The ``serve/`` metrics namespace: thread-safe service-wide telemetry.

The engine-side :class:`~repro.obs.metrics.MetricsRegistry` is
deliberately lock-free — one engine run, one thread.  A service is the
opposite: many workers complete requests concurrently and every
completion touches shared counters.  :class:`ServiceMetrics` wraps one
registry with a lock and owns the ``serve/`` namespace:

========================  =====================================================
counter                   meaning
========================  =====================================================
``serve/submitted``       submissions offered to the service
``serve/accepted``        submissions admitted to the queue
``serve/rejected``        shed at the door (queue full / dead-on-arrival)
``serve/circuit_open``    rejected by an open circuit breaker
``serve/shed``            shed at dequeue (deadline expired while queued)
``serve/ok``              complete results
``serve/degraded``        degraded results (partial + checkpoint)
``serve/failed``          permanent failures
``serve/cancelled``       cooperative cancellations
``serve/retries``         transient-fault retries across all requests
``serve/queue_depth``     gauge: current admission-queue depth
``serve/breakers_open``   gauge: breakers currently not closed
========================  =====================================================

plus the latency distributions ``serve/latency_s`` (submit → terminal)
and ``serve/queue_s`` (time spent queued), from which :meth:`stats`
derives p50/p99.  Per-request engine registries are merged in on
completion, so engine counters (γ firings, saturation facts, phase
times) aggregate fleet-wide under their usual names.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """A lock-guarded :class:`MetricsRegistry` owning one namespace.

    The default namespace is ``serve`` (the in-process
    :class:`~repro.serve.service.QueryService`); the sharded front door
    instantiates a second one under ``shard`` so process-topology
    counters (spawns, crashes, restarts, failovers, recoveries) never
    mix with per-request serving counters.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        namespace: str = "serve",
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        self._prefix = f"{namespace}/"
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.registry.inc(f"{self._prefix}{name}", amount)

    def gauge(self, name: str, value: Any) -> None:
        with self._lock:
            self.registry.set_counter(f"{self._prefix}{name}", value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.observe(f"{self._prefix}{name}", value)

    def merge_request(self, request_registry: MetricsRegistry) -> None:
        """Fold a finished request's private registry into the service's."""
        with self._lock:
            self.registry.merge(request_registry)

    def counter(self, name: str) -> Any:
        with self._lock:
            return self.registry.counter(f"{self._prefix}{name}")

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready view: every namespaced counter (prefix stripped)
        plus latency percentiles in milliseconds."""
        with self._lock:
            counters = {
                name[len(self._prefix):]: value
                for name, value in self.registry.counters.items()
                if name.startswith(self._prefix)
            }
            latency: Dict[str, Any] = {}
            for series, label in (
                (f"{self._prefix}latency_s", "latency_ms"),
                (f"{self._prefix}queue_s", "queue_ms"),
            ):
                for q, suffix in ((0.50, "p50"), (0.99, "p99")):
                    value = self.registry.quantile(series, q)
                    if value is not None:
                        latency[f"{label}_{suffix}"] = round(value * 1000.0, 3)
            return {"counters": counters, **latency}

    def snapshot(self) -> Dict[str, Any]:
        """The full underlying registry snapshot (service + merged
        per-request engine metrics)."""
        with self._lock:
            return self.registry.snapshot()
