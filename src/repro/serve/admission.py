"""Admission control: a bounded queue that sheds instead of growing.

An overloaded service has exactly two honest options: make the caller
wait a *bounded*, known amount, or tell them "no" immediately.  Queueing
unboundedly is the dishonest third option — latency grows without limit,
memory grows without limit, and by the time a request reaches a worker
its deadline has long passed, so the work is wasted on top of it.

:class:`AdmissionQueue` is a fixed-capacity FIFO with two shedding
points, both O(1):

* **at the door** — :meth:`offer` on a full queue raises
  :class:`~repro.serve.errors.Overloaded` immediately (no allocation, no
  waiting), carrying a ``retry_after`` hint computed from the current
  depth and an EWMA of recent service times: the earliest instant at
  which a retry could plausibly be admitted *and served*;
* **at the worker** — :meth:`take` discards entries whose deadline
  already passed while queued, handing them to a shed callback instead of
  a worker.  Executing them would produce an answer nobody is waiting
  for, at the price of delaying everyone behind them.

The queue itself stores opaque items plus an optional absolute deadline;
it knows nothing about requests or engines.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Tuple

from repro.serve.errors import Overloaded

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """A bounded, deadline-aware FIFO for the service's worker pool.

    Args:
        capacity: maximum queued entries; :meth:`offer` beyond it sheds.
        clock: monotonic time source (injectable for tests).
        default_service_s: seed for the service-time EWMA before any
            completion has been recorded.
    """

    #: EWMA decay for observed service times (~last 10 requests dominate).
    EWMA_ALPHA = 0.2

    #: After this much idle time the EWMA has decayed halfway back to the
    #: seed.  A service-time estimate is a statement about *current* load;
    #: after a quiet hour the last burst's timings say nothing about the
    #: next request, so the ``retry_after`` hint re-anchors on the seed
    #: instead of quoting stale congestion.
    IDLE_DECAY_HALF_LIFE_S = 60.0

    def __init__(
        self,
        capacity: int,
        clock: Callable[[], float] = time.monotonic,
        default_service_s: float = 0.05,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.default_service_s = default_service_s
        self._items: deque = deque()
        # Re-entrant: take() invokes the shed callback with the lock held,
        # and shed handlers legitimately read depth()/retry_after().
        self._lock = threading.RLock()
        self._not_empty = threading.Condition(self._lock)
        self._ewma_service_s = default_service_s
        self._ewma_updated_at = clock()
        #: Lifetime counters: admitted, shed at the door, shed at dequeue.
        self.admitted = 0
        self.rejected = 0
        self.expired = 0

    # -- producer side ---------------------------------------------------------

    def offer(self, item: Any, deadline: Optional[float] = None) -> None:
        """Enqueue *item* or shed in O(1).

        Raises:
            Overloaded: when the queue is at capacity, or *deadline* (an
                absolute :func:`time.monotonic` instant) has already
                passed — both with a ``retry_after`` hint.
        """
        now = self.clock()
        with self._lock:
            if deadline is not None and deadline <= now:
                self.rejected += 1
                raise Overloaded(
                    "request deadline already expired at submission",
                    retry_after=0.0,
                )
            if len(self._items) >= self.capacity:
                self.rejected += 1
                hint = self._retry_after_locked()
                raise Overloaded(
                    f"admission queue is full ({self.capacity} requests "
                    f"waiting); retry in ~{hint:.2f}s",
                    retry_after=hint,
                )
            self._items.append((item, deadline))
            self.admitted += 1
            self._not_empty.notify()

    # -- consumer side ---------------------------------------------------------

    def take(
        self,
        timeout: Optional[float] = None,
        on_shed: Optional[Callable[[Any], None]] = None,
    ) -> Optional[Any]:
        """Dequeue the next *live* item, or ``None`` on timeout.

        Entries whose deadline passed while they waited are not returned:
        each is handed to *on_shed* (so the service can complete its
        ticket with a typed ``Overloaded``) and skipped.
        """
        with self._not_empty:
            while True:
                while not self._items:
                    if not self._not_empty.wait(timeout):
                        return None
                item, deadline = self._items.popleft()
                if deadline is not None and deadline <= self.clock():
                    self.expired += 1
                    if on_shed is not None:
                        on_shed(item)
                    continue
                return item

    # -- load estimation -------------------------------------------------------

    def record_service_time(self, seconds: float) -> None:
        """Fold one completed request's execution time into the EWMA the
        ``retry_after`` hint is computed from."""
        with self._lock:
            self._decay_ewma_locked()
            self._ewma_service_s = (
                self.EWMA_ALPHA * seconds
                + (1.0 - self.EWMA_ALPHA) * self._ewma_service_s
            )

    def _decay_ewma_locked(self) -> None:
        """Pull the EWMA toward the seed by the idle time elapsed since
        the last observation (exponential, :data:`IDLE_DECAY_HALF_LIFE_S`
        half-life), and restart the idle clock."""
        now = self.clock()
        idle = now - self._ewma_updated_at
        self._ewma_updated_at = now
        if idle <= 0:
            return
        weight = 0.5 ** (idle / self.IDLE_DECAY_HALF_LIFE_S)
        self._ewma_service_s = (
            weight * self._ewma_service_s
            + (1.0 - weight) * self.default_service_s
        )

    def service_time_estimate(self) -> float:
        """The current (idle-decayed) EWMA service-time estimate."""
        with self._lock:
            self._decay_ewma_locked()
            return self._ewma_service_s

    def retry_after(self, workers: int = 1) -> float:
        """Estimated seconds until a newly shed caller could be admitted:
        current backlog × EWMA service time ÷ *workers*."""
        with self._lock:
            return self._retry_after_locked(workers)

    def _retry_after_locked(self, workers: int = 1) -> float:
        self._decay_ewma_locked()
        backlog = max(1, len(self._items))
        return max(0.01, backlog * self._ewma_service_s / max(1, workers))

    # -- shutdown --------------------------------------------------------------

    def drain(self) -> list:
        """Remove and return every queued item (deadline dropped), for a
        closing service to complete with a typed shutdown response rather
        than leaving their callers blocked forever."""
        with self._lock:
            items = [item for item, _deadline in self._items]
            self._items.clear()
            return items

    # -- introspection ---------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth()
