"""Typed rejections of the query service.

Every rejection the service issues is a first-class error carrying enough
structure for the caller to act mechanically: :class:`Overloaded` and
:class:`CircuitOpen` both carry ``retry_after`` (seconds), so a client
loop is ``except ServiceRejection as exc: sleep(exc.retry_after)`` — no
message parsing.  All service errors derive from
:class:`~repro.errors.ReproError`, keeping the library-wide contract
("every failure is a clean ``ReproError``") intact.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "ServiceError",
    "ServiceRejection",
    "Overloaded",
    "CircuitOpen",
    "ServiceClosed",
    "ShardDown",
    "ShardError",
]


class ServiceError(ReproError):
    """Base class for every error the query service raises itself
    (engine errors pass through unchanged)."""


class ServiceRejection(ServiceError):
    """A request the service refused to execute.  Rejections are *cheap*
    and *typed*: the work was never queued (or was shed unexecuted), and
    ``retry_after`` hints when a retry has a chance.

    Attributes:
        retry_after: suggested client backoff in seconds (0.0 when
            retrying immediately is reasonable).
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class Overloaded(ServiceRejection):
    """The admission queue is full — or the request's deadline expired
    while it waited — so the request was shed in O(1) instead of queueing
    unboundedly.  ``retry_after`` estimates when capacity frees up
    (queue depth × observed service time / workers)."""


class CircuitOpen(ServiceRejection):
    """The circuit breaker for this request's program class is open:
    recent requests of the same class failed consecutively, so new ones
    are rejected instantly until the breaker half-opens.

    Attributes:
        klass: the program class whose breaker rejected the request.
    """

    def __init__(self, message: str, retry_after: float = 0.0, klass: str = ""):
        super().__init__(message, retry_after=retry_after)
        self.klass = klass


class ServiceClosed(ServiceError):
    """The service has been shut down; no further submissions are
    accepted."""


class ShardDown(ServiceRejection):
    """Every shard that could serve this request is dead or restarting.

    Raised by the sharded front door when the routed shard (and every
    failover candidate) is unavailable — crashed past its restart budget,
    or mid-restart with failover disabled.  ``retry_after`` reflects the
    supervisor's next restart attempt.

    Attributes:
        shard_id: the shard the request was routed to.
    """

    def __init__(self, message: str, retry_after: float = 0.0, shard_id: int = -1):
        super().__init__(message, retry_after=retry_after)
        self.shard_id = shard_id


class ShardError(ServiceError):
    """An error that crossed a shard's process boundary but could not be
    mapped back to a known typed error — the worker-side type name and
    message are preserved in the text."""
