"""The resilient query service: a concurrent evaluation front end.

:class:`QueryService` turns the one-shot pipeline (compile → engine →
database) into a long-lived service that survives overload and injected
faults.  The moving parts, in request order:

1. **Admission** — :meth:`QueryService.submit` consults the request's
   per-program-class :class:`~repro.robust.breaker.CircuitBreaker`
   (open ⇒ typed :class:`~repro.serve.errors.CircuitOpen`) and offers the
   ticket to the bounded :class:`~repro.serve.admission.AdmissionQueue`
   (full ⇒ typed :class:`~repro.serve.errors.Overloaded`, O(1), with a
   retry-after hint).  Nothing about a rejected request is retained.
2. **Execution** — a fixed pool of worker threads takes tickets in FIFO
   order (shedding any whose deadline lapsed while queued) and evaluates
   each under its own :class:`~repro.robust.governor.RunGovernor`,
   deadline-clipped budget, per-request tracer and private metrics
   registry.
3. **Retries** — attempts failed by a *transient* fault (by default an
   injected chaos fault) are re-run under the service's
   :class:`~repro.robust.retry.RetryPolicy` — exponential backoff, full
   jitter seeded per request, capped by the delay budget and the
   request's deadline.  A seeded request replays the same γ draws on
   retry, so the healed result equals the fault-free one.
4. **Graceful degradation** — budget exhaustion is not an error at the
   service boundary: the response carries status ``degraded`` with the
   :class:`~repro.robust.governor.PartialResult` and its resumable
   checkpoint; submitting a follow-up request with
   ``resume_from=<checkpoint>`` continues the run where it stopped.
5. **Accounting** — every outcome feeds the breaker, the admission EWMA
   and the ``serve/`` metrics namespace; :meth:`health` and :meth:`stats`
   expose queue depth, breaker states, shed/retry counts and latency
   percentiles.

The invariant the soak suite pins down: **no request is ever lost** —
every submission either raises a typed rejection at the door or
terminates in exactly one of the
:data:`~repro.serve.request.TERMINAL_STATUSES`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import BudgetExceeded, Cancelled, ReproError
from repro.obs.tracer import Tracer
from repro.robust.breaker import CLOSED, CircuitBreaker
from repro.robust.governor import Budget, CancelToken, RunGovernor
from repro.robust.retry import RetryPolicy, is_transient
from repro.serve.admission import AdmissionQueue
from repro.serve.errors import CircuitOpen, Overloaded, ServiceClosed
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    CANCELLED,
    DEGRADED,
    FAILED,
    OK,
    SHED,
    QueryRequest,
    QueryResponse,
)

__all__ = ["QueryService", "Ticket"]


class _LiveEntry:
    """One live materialized view plus its coordination state: a lock
    serializing applies, and the batch ids already applied in this
    process (the durable journal extends the set across restarts)."""

    __slots__ = ("lock", "view", "applied")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.view: Any = None
        self.applied: set = set()


class Ticket:
    """The caller's handle on one submitted request.

    The service completes every admitted ticket exactly once; the caller
    blocks on :meth:`response` (or polls :attr:`done`) and may
    :meth:`cancel` cooperatively at any time — the running engine stops
    at its next governor tick and the ticket resolves with status
    ``cancelled`` and a resumable partial result.
    """

    def __init__(self, request_id: int, request: QueryRequest, submitted_at: float):
        self.request_id = request_id
        self.request = request
        self.submitted_at = submitted_at
        #: Absolute monotonic deadline, set by the service at admission.
        self.deadline: Optional[float] = None
        self.token = CancelToken()
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cooperative cancellation (observed at the running
        engine's next tick; a still-queued ticket resolves when a worker
        picks it up and sees the token)."""
        self.token.cancel(reason)

    def response(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the ticket resolves and return the response.

        Raises:
            TimeoutError: when *timeout* elapses first (the request keeps
                running; call again to keep waiting).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still running after {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _complete(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()


class QueryService:
    """A worker pool evaluating (program, facts, engine, budget) requests.

    Args:
        workers: worker-thread count.
        queue_capacity: admission-queue bound; submissions beyond it shed.
        retry: transient-fault :class:`RetryPolicy` (``max_attempts=1``
            disables retrying).
        transient: exception classifier for retries; defaults to
            "injected chaos faults only".
        failure_threshold / reset_timeout: per-class circuit-breaker
            tuning (see :class:`~repro.robust.breaker.CircuitBreaker`).
        default_budget: budget applied to requests that carry none.
        trace: record per-request span trees (returned on each response).
        seed: service-level seed; the retry-jitter rng of request *n* is
            seeded ``(seed, n)`` so a soak run's backoff schedule is
            reproducible.
        clock: monotonic time source (injectable for tests).
        store: optional :class:`~repro.durable.store.CheckpointStore`.
            With one attached, every admitted request is journalled, its
            run streams crash-safe checkpoints at the durability cadence,
            and terminal requests are marked done — a restarted service
            opened on the same store reports the survivors via
            :meth:`recover`.  Request ids are seeded past every id the
            store has ever journalled, so restarts never collide.
        durability: the checkpoint cadence
            (:class:`~repro.durable.policy.DurabilityPolicy`); defaults
            to the policy's own default when a *store* is attached.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_capacity: int = 64,
        retry: RetryPolicy | None = None,
        transient: Callable[[BaseException], bool] = is_transient,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        default_budget: Budget | None = None,
        trace: bool = False,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        store: Any = None,
        durability: Any = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.durability = durability
        self.retry = retry if retry is not None else RetryPolicy()
        self.transient = transient
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.default_budget = default_budget
        self.trace = trace
        self.seed = seed
        self.clock = clock
        self.metrics = ServiceMetrics()
        self.queue = AdmissionQueue(queue_capacity, clock=clock)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        # Live materialized views, keyed (engine, program sha256, seed);
        # see QueryRequest.updates.
        self._views: Dict[Any, _LiveEntry] = {}
        self._views_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_id = store.next_numeric_rid() if store is not None else 0
        self._inflight = 0
        self._closed = False
        self._stop = threading.Event()
        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ------------------------------------------------------------

    def submit(
        self, request: QueryRequest, request_id: Optional[int] = None
    ) -> Ticket:
        """Admit *request* or reject it in O(1).

        Args:
            request_id: assign this numeric id instead of the next fresh
                one.  Used by recovery (a resubmitted run keeps its
                journalled id, so its WAL records stay one chain) and by
                shard workers executing on behalf of a front door that
                already numbered the request.  The internal counter jumps
                past it, so fresh ids never collide.

        Raises:
            ServiceClosed: after :meth:`close`.
            CircuitOpen: the request's program class is tripped.
            Overloaded: the queue is full or the deadline is already dead.
        """
        if self._closed:
            raise ServiceClosed("query service is closed to new submissions")
        self.metrics.inc("submitted")
        breaker = self._breaker(request.breaker_class())
        if not breaker.allow():
            self.metrics.inc("circuit_open")
            raise CircuitOpen(
                f"circuit breaker for program class "
                f"{request.breaker_class()!r} is open",
                retry_after=breaker.retry_after(),
                klass=request.breaker_class(),
            )
        now = self.clock()
        with self._id_lock:
            if request_id is None:
                request_id = self._next_id
                self._next_id += 1
            else:
                self._next_id = max(self._next_id, request_id + 1)
        ticket = Ticket(request_id, request, submitted_at=now)
        if request.deadline is not None:
            ticket.deadline = now + request.deadline
        if self.store is not None:
            # Journal before offering: once the caller holds a ticket, the
            # request is recoverable even if this process dies immediately.
            self.store.journal_request(str(request_id), request.to_payload())
        try:
            self.queue.offer(ticket, deadline=ticket.deadline)
        except Overloaded:
            self.metrics.inc("rejected")
            # The breaker granted this request (possibly consuming a
            # half-open probe slot), but it never ran — hand the slot back.
            breaker.release_probe()
            if self.store is not None:
                # Rejected at the door: the caller was told, nothing ran,
                # nothing to recover.
                self.store.mark_done(str(request_id))
            raise
        self.metrics.inc("accepted")
        self.metrics.gauge("queue_depth", self.queue.depth())
        return ticket

    def evaluate(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait: returns the response for usable outcomes
        (``ok``/``degraded``/``cancelled``), re-raises the typed error for
        ``failed``/``shed`` ones.  Admission rejections raise from
        :meth:`submit` directly."""
        response = self.submit(request).response(timeout)
        if response.status in (FAILED, SHED) and response.error is not None:
            raise response.error
        return response

    # -- worker side -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            ticket = self.queue.take(timeout=0.05, on_shed=self._shed)
            if ticket is None:
                continue
            self.metrics.gauge("queue_depth", self.queue.depth())
            with self._id_lock:
                self._inflight += 1
            try:
                self._execute(ticket)
            except Exception as exc:  # pragma: no cover - backstop: a bug in
                # the service itself must not strand the ticket (the caller
                # would block forever) or kill the worker thread.
                if not ticket.done:
                    self.metrics.inc(FAILED)
                    ticket._complete(
                        QueryResponse(
                            request_id=ticket.request_id,
                            status=FAILED,
                            error=exc,
                            latency_s=self.clock() - ticket.submitted_at,
                        )
                    )
            finally:
                with self._id_lock:
                    self._inflight -= 1

    def _shed(self, ticket: Ticket) -> None:
        """Complete a ticket whose deadline expired while it queued."""
        self.metrics.inc("shed")
        self._breaker(ticket.request.breaker_class()).release_probe()
        now = self.clock()
        if self.store is not None:
            self.store.mark_done(str(ticket.request_id))
        ticket._complete(
            QueryResponse(
                request_id=ticket.request_id,
                status=SHED,
                error=Overloaded(
                    "deadline expired while the request was queued",
                    retry_after=self.queue.retry_after(len(self._workers)),
                ),
                latency_s=now - ticket.submitted_at,
                queue_s=now - ticket.submitted_at,
            )
        )

    def _execute(self, ticket: Ticket) -> None:
        request = ticket.request
        started = self.clock()
        queue_s = started - ticket.submitted_at
        breaker = self._breaker(request.breaker_class())
        jitter_rng = random.Random(f"{self.seed}:{ticket.request_id}")
        attempts = 0
        retries = 0
        tracer = Tracer(enabled=self.trace)

        def note_retry(attempt: int, exc: BaseException, delay: float) -> None:
            nonlocal retries
            retries += 1
            self.metrics.inc("retries")
            tracer.event(
                "retry", attempt=attempt, error=type(exc).__name__, delay_s=delay
            )

        def attempt() -> Any:
            nonlocal attempts
            attempts += 1
            return self._run_once(request, ticket, tracer)

        status = FAILED
        database = partial = checkpoint = None
        error: Optional[BaseException] = None
        try:
            database = self.retry.call(
                attempt,
                transient=self.transient,
                rng=jitter_rng,
                on_retry=note_retry,
                deadline=ticket.deadline,
                clock=self.clock,
            )
            status = OK
        except BudgetExceeded as exc:
            # Budget exhaustion is a *degraded response*, not a failure:
            # the caller gets everything the run computed plus the means
            # to continue it.
            status = DEGRADED
            partial = exc.partial
            checkpoint = getattr(exc.partial, "checkpoint", None)
            database = getattr(exc.partial, "database", None)
            error = exc
        except Cancelled as exc:
            status = CANCELLED
            partial = exc.partial
            checkpoint = getattr(exc.partial, "checkpoint", None)
            database = getattr(exc.partial, "database", None)
            error = exc
        except ReproError as exc:
            status = FAILED
            error = exc
        except Exception as exc:  # pragma: no cover - defensive: no request
            status = FAILED  # may take a worker down with it
            error = exc

        if status in (OK, DEGRADED):
            breaker.record_success()
        elif status == FAILED:
            breaker.record_failure()
        else:  # a cancellation says nothing about the program's health
            breaker.release_probe()

        now = self.clock()
        service_s = now - started
        self.queue.record_service_time(service_s)
        self.metrics.inc(status)
        self.metrics.observe("latency_s", now - ticket.submitted_at)
        self.metrics.observe("queue_s", queue_s)
        self.metrics.merge_request(tracer.registry)
        if self.store is not None:
            # The outcome (including a degraded/cancelled checkpoint) is
            # about to be delivered to the caller — nothing left to
            # recover.  Retire the id *before* completing the ticket so a
            # client that sees the response never finds its own request
            # still pending in the store.
            self.store.mark_done(str(ticket.request_id))
        ticket._complete(
            QueryResponse(
                request_id=ticket.request_id,
                status=status,
                database=database,
                partial=partial,
                checkpoint=checkpoint,
                error=error,
                attempts=attempts,
                retries=retries,
                latency_s=now - ticket.submitted_at,
                queue_s=queue_s,
                metrics=tracer.registry.snapshot(),
                trace=tracer.records if self.trace else None,
            )
        )

    def _run_once(self, request: QueryRequest, ticket: Ticket, tracer: Tracer) -> Any:
        """One evaluation attempt under a fresh governor (a governor is
        single-run state; every retry and every resume gets its own)."""
        from repro.core.compiler import _as_database, _make_engine, compile_program
        from repro.robust.checkpoint import restore

        budget = request.budget or self.default_budget or Budget()
        if ticket.deadline is not None:
            remaining = max(0.001, ticket.deadline - self.clock())
            wall = (
                remaining
                if budget.wall_clock is None
                else min(budget.wall_clock, remaining)
            )
            budget = Budget(
                wall_clock=wall,
                max_gamma_steps=budget.max_gamma_steps,
                max_rounds=budget.max_rounds,
                max_facts=budget.max_facts,
                max_memory_mb=budget.max_memory_mb,
            )
        if request.updates is not None:
            with tracer.span(
                "request",
                phase="serve",
                request_id=ticket.request_id,
                engine=request.engine,
                klass=request.breaker_class(),
                live=True,
            ):
                return self._apply_updates(request, ticket, tracer)
        writer = None
        if self.store is not None:
            from repro.durable.policy import DurableWriter

            writer = DurableWriter(
                self.store, str(ticket.request_id), self.durability
            )
        governor = RunGovernor(budget, token=ticket.token, durability=writer)
        with tracer.span(
            "request",
            phase="serve",
            request_id=ticket.request_id,
            engine=request.engine,
            klass=request.breaker_class(),
        ):
            if request.resume_from is not None:
                cp = request.resume_from
                compiled = compile_program(request.program, engine=cp.engine)
                engine, db = restore(
                    cp, compiled.program, governor=governor, tracer=tracer
                )
                for name, rows in request.facts.items():
                    db.assert_all(name, [tuple(row) for row in rows])
            else:
                compiled = compile_program(request.program, engine=request.engine)
                rng = (
                    random.Random(request.seed) if request.seed is not None else None
                )
                engine = _make_engine(
                    request.engine,
                    compiled.program,
                    rng,
                    tracer=tracer,
                    governor=governor,
                )
                db = _as_database({k: list(v) for k, v in request.facts.items()})
            return engine.run(db)

    def _apply_updates(self, request: QueryRequest, ticket: Ticket, tracer: Tracer) -> Any:
        """Serve a live-view request: apply its update batch to the
        ``(engine, program, seed)`` view — creating (or, on a durable
        store, recovering) the view on first touch — and return a copy
        of the maintained model.

        Applies are serialized per view; the batch id is derived from
        the request id, so in-service retries and crash-recovery
        resubmission are exactly-once.  A repair that dies mid-way
        rebuilds the view from its EDB (durable views reopen from the
        journal) before the error propagates, so the next request sees
        consistent state.
        """
        import hashlib

        from repro.incremental import LiveView, MaterializedView, UpdateBatch, UpdateOp

        digest = hashlib.sha256(request.program.encode("utf-8")).hexdigest()
        seed = request.seed if request.seed is not None else 0
        key = (request.engine, digest, seed)
        with self._views_lock:
            entry = self._views.get(key)
            if entry is None:
                entry = _LiveEntry()
                self._views[key] = entry
        with entry.lock:
            if entry.view is None:
                if self.store is not None:
                    entry.view = LiveView.open(
                        self.store,
                        f"view-{digest[:12]}-{request.engine}-{seed}",
                        source=request.program,
                        engine=request.engine,
                        seed=seed,
                    )
                    entry.applied |= entry.view._applied_ids
                else:
                    entry.view = MaterializedView(
                        request.program, engine=request.engine, seed=seed
                    )
            ops = [
                UpdateOp("+", name, tuple(row))
                for name, rows in sorted(request.facts.items())
                for row in rows
            ]
            ops.extend(UpdateOp.parse(str(text)) for text in request.updates)
            batch = UpdateBatch.of(ops, batch_id=f"req-{ticket.request_id}")
            result = None
            if ops and batch.batch_id not in entry.applied:
                try:
                    result = entry.view.apply(batch)
                except BaseException:
                    # LiveView reopens itself from the journal; the plain
                    # view rebuilds from its (already mutated) EDB.
                    rebuild = getattr(entry.view, "rebuild", None)
                    if rebuild is not None:
                        rebuild()
                    raise
                entry.applied.add(batch.batch_id)
            self.metrics.inc("live_batches")
            if result is not None:
                registry = tracer.registry
                registry.inc("incremental/batches")
                registry.inc("incremental/facts_invalidated", result.invalidated)
                registry.inc("incremental/facts_rederived", result.rederived)
                registry.inc("incremental/units_recomputed", result.units_recomputed)
                registry.inc("incremental/fast_path_resumes", result.fast_path_resumes)
                tracer.event(
                    "live-apply",
                    batch_id=batch.batch_id,
                    ops=len(batch),
                    invalidated=result.invalidated,
                    rederived=result.rederived,
                    fast_path=result.fast_path_resumes,
                )
            return entry.view.db.copy()

    # -- recovery ---------------------------------------------------------------

    def recover(self, resubmit: bool = True) -> Dict[str, Any]:
        """Report — and by default resubmit — the runs a previous process
        journalled but never finished.

        A run is recoverable when its request was journalled and no
        ``done`` record followed (the process died before delivering the
        outcome).  Resubmission rebuilds the request from the journal; a
        run that reached at least one durable checkpoint is resumed from
        its newest one (``resume_from``), so a seeded request completes
        to the byte-identical model the uninterrupted run would have
        produced.  A numeric journalled id is reused verbatim (the rerun
        journals and completes under the same id, so the WAL stays one
        chain per request); a non-numeric id gets a fresh one and the old
        id is retired — either way recovery is at-least-once, never
        silent loss.

        Returns ``{journalled_id: Ticket}`` when *resubmit* is true,
        ``{journalled_id: QueryRequest}`` otherwise (the store is then
        left untouched).  Without a store this is an empty dict.
        """
        if self.store is None:
            return {}
        recovered: Dict[str, Any] = {}
        for rid, run in sorted(self.store.pending().items()):
            if run.request is None:
                # Checkpoints without a journalled request (a bare-store
                # writer, e.g. the CLI) are not the service's to rerun.
                continue
            request = QueryRequest.from_payload(run.request)
            if run.checkpoint_payload is not None:
                request.resume_from = self.store.latest_checkpoint(rid)
            if not resubmit:
                recovered[rid] = request
                continue
            numeric = int(rid) if rid.isdigit() else None
            ticket = self.submit(request, request_id=numeric)
            self.metrics.inc("recovered")
            if numeric is None:
                # The rerun lives under a fresh id; retire the old one.
                self.store.mark_done(rid)
            recovered[rid] = ticket
        return recovered

    # -- breakers ---------------------------------------------------------------

    def _breaker(self, klass: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(klass)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    clock=self.clock,
                )
                self._breakers[klass] = breaker
            return breaker

    # -- introspection ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness + load in one cheap call (no engine work)."""
        depth = self.queue.depth()
        with self._breakers_lock:
            breakers = {k: b.state for k, b in self._breakers.items()}
        open_breakers = sum(1 for state in breakers.values() if state != CLOSED)
        self.metrics.gauge("breakers_open", open_breakers)
        if self._closed:
            status = "closed"
        elif depth >= self.queue.capacity:
            status = "saturated"
        else:
            status = "ok"
        return {
            "status": status,
            "workers": len(self._workers),
            "inflight": self._inflight,
            "queue_depth": depth,
            "queue_capacity": self.queue.capacity,
            "breakers": breakers,
        }

    def stats(self) -> Dict[str, Any]:
        """The ``serve/`` counters, latency percentiles, queue counters
        and per-class breaker snapshots."""
        stats = self.metrics.stats()
        stats["queue"] = {
            "admitted": self.queue.admitted,
            "rejected": self.queue.rejected,
            "expired": self.queue.expired,
            "depth": self.queue.depth(),
        }
        with self._breakers_lock:
            stats["breakers"] = {
                k: b.snapshot() for k, b in self._breakers.items()
            }
        return stats

    # -- lifecycle ---------------------------------------------------------------

    def close(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; optionally drain what was admitted.

        With ``wait`` the call blocks (up to *timeout*) until the queue
        empties and in-flight requests finish, so every admitted ticket
        resolves with its real outcome.  Without it — or when the wait
        times out — workers stop after their current request and every
        still-queued ticket is completed with a typed shutdown response
        (status ``shed``, :class:`~repro.serve.errors.ServiceClosed`), so
        a caller blocked in :meth:`Ticket.response` always wakes up.
        """
        self._closed = True
        if wait:
            deadline = self.clock() + timeout
            while (self.queue.depth() > 0 or self._inflight > 0) and (
                self.clock() < deadline
            ):
                time.sleep(0.005)
        self._stop.set()
        for thread in self._workers:
            thread.join(timeout=5.0)
        # Workers are gone; whatever is still queued (close(wait=False),
        # or the drain timed out) would otherwise strand its caller.
        for ticket in self.queue.drain():
            if ticket.done:
                continue
            self.metrics.inc("shed")
            self._breaker(ticket.request.breaker_class()).release_probe()
            if self.store is not None:
                # The caller is being told "not run" — nothing to recover.
                self.store.mark_done(str(ticket.request_id))
            ticket._complete(
                QueryResponse(
                    request_id=ticket.request_id,
                    status=SHED,
                    error=ServiceClosed(
                        "query service closed before this request ran"
                    ),
                    latency_s=self.clock() - ticket.submitted_at,
                    queue_s=self.clock() - ticket.submitted_at,
                )
            )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
