"""Fingerprint routing: which shard owns which program class.

The sharded front door routes every request by its
:meth:`~repro.serve.request.QueryRequest.breaker_class` — the caller's
explicit class, or ``engine:<sha256(program)[:8]>`` — so all requests for
one program land on one worker process.  That placement is what makes
sharding *better* than a round-robin pool, not just wider: the owning
shard's :class:`~repro.core.plans.PlanCache` stays hot for the program,
and its circuit breaker accumulates an honest per-program failure history
instead of each process seeing a diluted sample.

Routing is a pure function of ``(class, shard count)`` — no table, no
coordination — so the front door, a restarted front door, and a test
oracle all agree on placement.  :func:`failover_order` extends it to a
deterministic preference list: the owning shard first, then the others in
ring order, which the front door walks when the owner is down and
failover is enabled.
"""

from __future__ import annotations

import hashlib
from typing import List

__all__ = ["route", "failover_order", "wal_slot", "WAL_SLOTS"]

#: The replica slot suffixes of one logical shard: the ``"a"`` slot is
#: the bare ``shard-<k>`` directory (PR 8's layout, so an unreplicated
#: deployment upgrades in place), the ``"b"`` slot is ``shard-<k>-b``.
#: Which slot holds the *primary* changes over time — every promotion
#: swaps the roles — but the pair is fixed, so recovery and the rid
#: counter always know where to look.
WAL_SLOTS = ("a", "b")


def wal_slot(shard_id: int, slot: str) -> str:
    """The WAL directory name of replica *slot* of logical shard
    *shard_id*: ``shard-<k>`` for slot ``"a"``, ``shard-<k>-b`` for slot
    ``"b"``.  A pure function, like :func:`route`, so every process
    derives the same layout."""
    if slot not in WAL_SLOTS:
        raise ValueError(f"unknown WAL slot {slot!r}; expected one of {WAL_SLOTS}")
    base = f"shard-{shard_id}"
    return base if slot == "a" else f"{base}-b"


def route(klass: str, shards: int) -> int:
    """The owning shard of program class *klass* among *shards* workers.

    Stable across processes and runs (sha256, not :func:`hash`, which is
    salted per interpreter).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    digest = hashlib.sha256(klass.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shards


def failover_order(klass: str, shards: int) -> List[int]:
    """Every shard in preference order: the owner, then the ring walked
    upward from it.  Deterministic, so retries and restarts route the
    same way."""
    primary = route(klass, shards)
    return [(primary + offset) % shards for offset in range(shards)]
