"""The ``repro serve`` subcommand: run a workload file through the service.

::

    python -m repro serve workload.json --workers 4 --stats

The workload file is JSON — either a list of request objects, or an
object with optional ``defaults`` (merged under each request) and a
``requests`` list.  Each request object understands:

``program``         inline Datalog source text
``program_file``    path to a program file (exclusive with ``program``)
``facts``           ``{pred: [[row], ...]}`` inline, or ``{pred: "file.csv"}``
``engine``          engine name (default ``rql``)
``seed``            rng seed for the γ draws
``deadline``        seconds from submission after which the request is shed
``timeout`` / ``max_steps`` / ``max_facts``   per-request budget
``klass``           circuit-breaker class override
``repeat``          submit this request N times (default 1)
``updates``         list of ``"+pred(a, 1)"`` / ``"-pred(a, 1)"`` update op
                    strings — targets the live materialized view of the
                    program instead of a from-scratch run (requires
                    ``--live``; an empty list is a pure read of the view)

All requests are submitted concurrently (admission control applies: a
full queue sheds with a typed ``Overloaded``), then awaited; one summary
line prints per request plus an aggregate tail.  Exit status 0 iff every
request ended ``ok`` or ``degraded``; 1 otherwise.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.robust.governor import Budget
from repro.serve.errors import ServiceRejection
from repro.serve.request import QueryRequest
from repro.serve.service import QueryService

__all__ = ["serve_main", "build_serve_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run a JSON workload of evaluation requests through the "
            "resilient query service (see docs/serving.md)."
        ),
    )
    parser.add_argument("workload", help="path to the workload JSON file")
    parser.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve through N worker processes behind the fingerprint-"
            "routing front door instead of one in-process thread pool; "
            "--workers then means threads per shard (default: 0 = "
            "unsharded)"
        ),
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --shards and --durable-dir: run N hot standbys per "
            "shard (only N=1 is supported); the supervisor promotes a "
            "warm standby under a fencing token instead of parking a "
            "crash-looping shard as failed (default: 0 = unreplicated)"
        ),
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help="admission queue bound; submissions beyond it shed (default: 64)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per request for transient faults (default: 3)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="service seed (reproducible retry jitter; default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="overall wait for all responses (default: 60)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print service stats and health as JSON after the summary",
    )
    parser.add_argument(
        "--durable-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal admitted requests into a crash-safe checkpoint store "
            "at DIR; on startup, runs a previous process left unfinished "
            "are recovered and resubmitted (see docs/durability.md)"
        ),
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help=(
            "allow workload entries with an 'updates' key: such requests "
            "mutate the live materialized view of their program instead "
            "of solving from scratch (see docs/incremental.md)"
        ),
    )
    return parser


def _parse_cell(cell: str) -> Any:
    cell = cell.strip()
    for caster in (int, float):
        try:
            return caster(cell)
        except ValueError:
            continue
    return cell


def _load_fact_spec(spec: Any, base: Path) -> List[Tuple[Any, ...]]:
    """One predicate's facts: an inline list of rows, or a CSV path."""
    if isinstance(spec, str):
        rows: List[Tuple[Any, ...]] = []
        with open(base / spec, newline="") as handle:
            for row in csv.reader(handle):
                if row:
                    rows.append(tuple(_parse_cell(cell) for cell in row))
        return rows
    return [tuple(row) for row in spec]


def _build_request(entry: Dict[str, Any], base: Path, live: bool = False) -> QueryRequest:
    if "updates" in entry and not live:
        raise ReproError(
            "workload entry has an 'updates' key but the service was not "
            "started with --live; pass --live to enable live-view updates"
        )
    if "program_file" in entry:
        program = (base / entry["program_file"]).read_text()
    elif "program" in entry:
        program = entry["program"]
    else:
        raise ReproError(
            "workload request needs either 'program' (inline source) or "
            "'program_file' (path)"
        )
    facts = {
        name: _load_fact_spec(spec, base)
        for name, spec in entry.get("facts", {}).items()
    }
    budget = None
    if any(k in entry for k in ("timeout", "max_steps", "max_facts")):
        budget = Budget(
            wall_clock=entry.get("timeout"),
            max_gamma_steps=entry.get("max_steps"),
            max_rounds=entry.get("max_steps"),
            max_facts=entry.get("max_facts"),
        )
    return QueryRequest(
        program=program,
        facts=facts,
        engine=entry.get("engine", "rql"),
        seed=entry.get("seed"),
        budget=budget,
        deadline=entry.get("deadline"),
        klass=entry.get("klass"),
        updates=(
            [str(op) for op in entry["updates"]]
            if entry.get("updates") is not None
            else None
        ),
    )


def _load_workload(path: str) -> List[Dict[str, Any]]:
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, list):
        defaults: Dict[str, Any] = {}
        entries = payload
    else:
        defaults = payload.get("defaults", {})
        entries = payload.get("requests", [])
    if not entries:
        raise ReproError(f"workload {path!r} contains no requests")
    expanded: List[Dict[str, Any]] = []
    for entry in entries:
        merged = {**defaults, **entry}
        repeat = int(merged.pop("repeat", 1))
        expanded.extend(dict(merged) for _ in range(repeat))
    return expanded


def serve_main(argv: Sequence[str] | None = None, out=None) -> int:
    """The ``repro serve`` subcommand; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_serve_parser().parse_args(argv)
    try:
        entries = _load_workload(args.workload)
        base = Path(args.workload).resolve().parent
        requests = [_build_request(entry, base, live=args.live) for entry in entries]
    except (ReproError, OSError, json.JSONDecodeError, TypeError) as exc:
        print(f"error: cannot load workload: {exc}", file=sys.stderr)
        return 1

    from repro.robust.retry import RetryPolicy

    store = None
    failures = 0
    if args.shards > 0:
        from repro.serve.supervisor import ShardedQueryService

        if args.replicas and not args.durable_dir:
            print(
                "error: --replicas requires --durable-dir (the standby "
                "replays the primary's shipped WAL)",
                file=sys.stderr,
            )
            return 1
        # Shard workers own (and recover) their private WAL directories
        # under --durable-dir themselves.
        service: Any = ShardedQueryService(
            shards=args.shards,
            workers_per_shard=args.workers,
            queue_capacity=args.queue_capacity,
            seed=args.seed,
            durable_dir=args.durable_dir or None,
            replicas=args.replicas,
        )
    else:
        if args.replicas:
            print(
                "error: --replicas requires --shards (replication pairs "
                "shard worker processes)",
                file=sys.stderr,
            )
            return 1
        if args.durable_dir:
            from repro.durable import CheckpointStore

            store = CheckpointStore(args.durable_dir)
        service = QueryService(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            seed=args.seed,
            store=store,
        )
    try:
        tickets: List[Optional[Any]] = []
        if store is not None:
            recovered = service.recover()
            if recovered:
                print(
                    f"recovered {len(recovered)} unfinished run(s) from "
                    f"{args.durable_dir}: {', '.join(sorted(recovered))}",
                    file=out,
                )
                tickets.extend(recovered.values())
        elif args.shards > 0 and args.durable_dir:
            replayed = service.metrics.counter("recovered")
            if replayed:
                print(
                    f"shards recovered {replayed} unfinished run(s) from "
                    f"{args.durable_dir}",
                    file=out,
                )
        for index, request in enumerate(requests):
            try:
                tickets.append(service.submit(request))
            except ServiceRejection as exc:
                failures += 1
                tickets.append(None)
                print(
                    f"request {index}: rejected ({type(exc).__name__}: {exc}; "
                    f"retry in ~{exc.retry_after:.2f}s)",
                    file=out,
                )
        for ticket in tickets:
            if ticket is None:
                continue
            try:
                response = ticket.response(timeout=args.timeout)
            except TimeoutError as exc:
                failures += 1
                print(f"request {ticket.request_id}: timed out ({exc})", file=out)
                continue
            if not response.ok:
                failures += 1
            print(response.summary(), file=out)
    finally:
        service.close()
        if store is not None:
            store.close()

    total = len(tickets)
    print(
        f"\n{total - failures}/{total} requests ok or degraded "
        f"({failures} failed/rejected)",
        file=out,
    )
    if args.stats:
        print(json.dumps(service.stats(), indent=2, default=str), file=out)
        print(json.dumps(service.health(), indent=2, default=str), file=out)
    return 0 if failures == 0 else 1
