"""The sharded front door and its crash supervisor.

:class:`ShardedQueryService` is the process-level analogue of
:class:`~repro.serve.service.QueryService`: callers submit
:class:`~repro.serve.request.QueryRequest`\\ s and get
:class:`~repro.serve.service.Ticket`\\ s back, but the work runs in N
worker **processes** (:mod:`repro.serve.shard`), routed by program
fingerprint (:mod:`repro.serve.routing`) so each shard's plan cache and
failure history stay hot for the programs it owns.

The robustness core is the :class:`Supervisor` — one thread driving a
per-shard state machine::

    STARTING --(ready+recovered)--> UP
    UP  --(missed heartbeats)-----> SUSPECT --(more misses: kill)--> DOWN
    UP / SUSPECT --(process died)-> DOWN
    DOWN --(backoff elapsed)------> STARTING   (same WAL shard)
    DOWN --(restart budget spent)-> FAILED
    UP  --(close())---------------> STOPPED

Each tick it drains shard messages (completing caller tickets from
``response`` payloads), pings live shards, declares a shard dead on a
process exit or hung after ``miss_limit`` consecutive unanswered pings
(hung workers are SIGKILLed — a stuck interpreter cannot be reasoned
with), and schedules restarts under **bounded exponential backoff**
stretched by a per-shard :class:`~repro.robust.breaker.CircuitBreaker`
(crash = failure; surviving ``stable_after`` seconds = success), so a
crash-looping shard backs off instead of burning CPU on spawn loops.  A
shard that exhausts ``max_restarts`` consecutive restarts is FAILED: its
in-flight requests re-route to a live shard when ``failover`` is on,
else complete with a typed :class:`~repro.serve.errors.ShardDown`.

Restart recovery is the zero-loss half (full argument in
:mod:`repro.serve.shard`): a restarted worker reopens the same WAL
directory, re-runs every journalled-not-done request from its newest
durable checkpoint, and reports the replayed rids; the supervisor then
*resends* any in-flight rid the shard did not recover — exactly the
requests that died unjournalled in the pipe or were retired as done
before their response crossed.

Shard-lifecycle trace events (``shard-spawn``, ``shard-ready``,
``shard-recovered``, ``shard-suspect``, ``shard-crash``,
``shard-restart``, ``shard-failed``, ``shard-stable``, ``shard-stopped``)
are emitted through the service's tracer when tracing is on; process
topology counters live under the ``shard/`` metrics namespace.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer
from repro.robust.breaker import CircuitBreaker
from repro.robust.faults import FaultPlan
from repro.serve.errors import ServiceClosed, ShardDown
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    FAILED,
    SHED,
    QueryRequest,
    QueryResponse,
)
from repro.serve.routing import failover_order
from repro.serve.service import Ticket
from repro.serve.shard import ShardConfig, ShardHandle, decode_response

__all__ = [
    "ShardedQueryService",
    "Supervisor",
    "STARTING",
    "UP",
    "SUSPECT",
    "DOWN",
    "FAILED_STATE",
    "STOPPED",
]

STARTING = "starting"
UP = "up"
SUSPECT = "suspect"
DOWN = "down"
FAILED_STATE = "failed"
STOPPED = "stopped"


@dataclass
class _Pending:
    """One in-flight request the front door still owes an answer for."""

    ticket: Ticket
    shard_id: int
    payload: Dict[str, Any]
    resends: int = 0


@dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    handle: ShardHandle
    breaker: CircuitBreaker
    state: str = STARTING
    pid: Optional[int] = None
    ping_seq: int = 0
    missed_pongs: int = 0
    restarts: int = 0
    lifetime_restarts: int = 0
    restart_due: float = 0.0
    became_up_at: float = 0.0
    stable: bool = False
    last_depth: int = 0
    last_inflight: int = 0


class _RemoteTicket(Ticket):
    """A ticket whose cancel() crosses the process boundary."""

    def __init__(self, service: "ShardedQueryService", *args: Any):
        super().__init__(*args)
        self._service = service

    def cancel(self, reason: str = "cancelled by caller") -> None:
        super().cancel(reason)
        self._service._forward_cancel(self.request_id)


class ShardedQueryService:
    """N worker processes behind one fingerprint-routing front door.

    Args:
        shards: worker-process count.
        workers_per_shard: worker threads inside each shard's inner
            :class:`~repro.serve.service.QueryService`.
        queue_capacity: each shard's inner admission bound.
        seed: base seed; shard *k* runs its inner service with
            ``seed + k`` so retry jitter never synchronizes across shards.
        durable_dir: root directory for the per-shard WAL stores
            (``<durable_dir>/shard-<k>``); ``None`` serves non-durably
            (restarts re-run in-flight work from the retained payloads
            instead of checkpoints).
        fsync / every_seconds: each shard store's fsync policy and
            checkpoint cadence.
        heartbeat_interval: supervisor tick (ping cadence), seconds.
        miss_limit: consecutive unanswered pings before a shard is
            declared hung and killed (``miss_limit // 2`` marks SUSPECT).
        restart_backoff / max_backoff: exponential restart delay bounds.
        max_restarts: consecutive restarts (without a stable interval)
            before the shard is FAILED.
        stable_after: seconds a restarted shard must stay up before its
            breaker records success and the restart counter resets.
        failover: route around dead shards (new submissions) and re-route
            a FAILED shard's in-flight work to live shards; off, callers
            get typed :class:`ShardDown` rejections instead.
        failure_threshold / reset_timeout: per-shard breaker tuning.
        default_budget_wall_clock: wall-clock budget for requests
            carrying none (applied inside the shards).
        trace: emit shard-lifecycle trace events.
        fault_plans / crash_after: fault injection installed inside every
            spawned worker (chaos tests; see
            :data:`repro.robust.faults.SHARD_SITES`).
        start_timeout: how long the constructor blocks for the fleet to
            come up (:meth:`wait_ready`); ``0`` returns immediately.
    """

    def __init__(
        self,
        shards: int = 2,
        workers_per_shard: int = 1,
        queue_capacity: int = 64,
        seed: int = 0,
        durable_dir: Optional[str] = None,
        fsync: str = "always",
        every_seconds: float = 0.05,
        heartbeat_interval: float = 0.05,
        miss_limit: int = 40,
        restart_backoff: float = 0.2,
        max_backoff: float = 5.0,
        max_restarts: int = 5,
        stable_after: float = 1.0,
        failover: bool = True,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        default_budget_wall_clock: Optional[float] = None,
        trace: bool = False,
        fault_plans: Tuple[FaultPlan, ...] = (),
        crash_after: Optional[int] = None,
        start_timeout: float = 30.0,
        clock: Any = time.monotonic,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.durable_dir = os.fspath(durable_dir) if durable_dir else None
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.restart_backoff = restart_backoff
        self.max_backoff = max_backoff
        self.max_restarts = max_restarts
        self.stable_after = stable_after
        self.failover = failover
        self.clock = clock
        self.metrics = ServiceMetrics(namespace="shard")
        self.tracer = Tracer(enabled=trace)
        self._ctx = multiprocessing.get_context("spawn")
        self._pending: Dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._closed = False
        self._closing = False
        self._next_id = self._seed_rid_counter()
        self._shards: List[_ShardState] = []
        for k in range(shards):
            config = ShardConfig(
                workers=workers_per_shard,
                queue_capacity=queue_capacity,
                seed=seed + k,
                durable_root=self.durable_dir,
                fsync=fsync,
                every_seconds=every_seconds,
                default_budget_wall_clock=default_budget_wall_clock,
                fault_plans=tuple(fault_plans),
                crash_after=crash_after,
            )
            handle = ShardHandle(shard_id=k, config=config, ctx=self._ctx)
            breaker = CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                clock=clock,
            )
            self._shards.append(_ShardState(handle=handle, breaker=breaker))
        for state in self._shards:
            self._spawn(state)
        self.supervisor = Supervisor(self)
        self.supervisor.start()
        if start_timeout:
            self.wait_ready(start_timeout)

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every non-failed shard is UP (spawn + WAL replay
        take real time under the spawn start method); ``True`` when the
        fleet is fully live within *timeout*."""
        deadline = self.clock() + timeout
        while self.clock() < deadline:
            states = {s.state for s in self._shards}
            if states <= {UP, FAILED_STATE, STOPPED} and UP in states:
                return True
            time.sleep(0.01)
        return False

    # -- submission ------------------------------------------------------------

    def submit(self, request: QueryRequest) -> Ticket:
        """Route *request* to the owning shard (or a live failover) and
        return the caller's ticket.

        Raises:
            ServiceClosed: after :meth:`close`.
            ShardDown: the owning shard — and, with failover, every other
                shard — is not accepting work right now.
        """
        if self._closed or self._closing:
            raise ServiceClosed("sharded service is closed to new submissions")
        self.metrics.inc("submitted")
        klass = request.breaker_class()
        order = failover_order(klass, self.shards)
        target: Optional[_ShardState] = None
        for position, shard_id in enumerate(order):
            state = self._shards[shard_id]
            if state.state == UP:
                target = state
                if position > 0:
                    self.metrics.inc("failover")
                break
            if not self.failover:
                break
        if target is None:
            primary = self._shards[order[0]]
            hint = max(0.0, primary.restart_due - self.clock())
            self.metrics.inc("rejected")
            raise ShardDown(
                f"shard {order[0]} (owner of class {klass!r}) is "
                f"{primary.state} and no live shard can take the request",
                retry_after=hint or self.heartbeat_interval,
                shard_id=order[0],
            )
        now = self.clock()
        with self._pending_lock:
            rid = self._next_id
            self._next_id += 1
        ticket = _RemoteTicket(self, rid, request, now)
        if request.deadline is not None:
            ticket.deadline = now + request.deadline
        payload = request.to_payload()
        with self._pending_lock:
            self._pending[rid] = _Pending(
                ticket=ticket, shard_id=target.handle.shard_id, payload=payload
            )
        # A failed send is not an error: the supervisor will observe the
        # dead pipe and the retained payload is resent after restart.
        target.handle.send(("submit", rid, payload))
        self.metrics.inc("accepted")
        self.metrics.gauge("pending", len(self._pending))
        return ticket

    def evaluate(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait; re-raises the typed error of ``failed``/
        ``shed`` outcomes, mirroring
        :meth:`~repro.serve.service.QueryService.evaluate`."""
        response = self.submit(request).response(timeout)
        if response.status in (FAILED, SHED) and response.error is not None:
            raise response.error
        return response

    def _forward_cancel(self, rid: int) -> None:
        with self._pending_lock:
            entry = self._pending.get(rid)
        if entry is not None:
            self._shards[entry.shard_id].handle.send(("cancel", rid))

    # -- lifecycle -------------------------------------------------------------

    def close(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally), stop every shard, and resolve every ticket.

        No caller is left blocked: tickets the shards never answered are
        completed with a typed shutdown response, exactly like the
        in-process service's close.
        """
        if self._closed:
            return
        self._closing = True
        deadline = self.clock() + timeout
        if wait:
            while self._pending and self.clock() < deadline:
                time.sleep(0.01)
        for state in self._shards:
            if state.handle.alive():
                state.handle.send(("close",))
        for state in self._shards:
            if state.handle.process is not None:
                state.handle.process.join(
                    max(0.1, min(5.0, deadline - self.clock()))
                )
        self.supervisor.stop()
        for state in self._shards:
            state.handle.kill()
            state.state = STOPPED
        self._closed = True
        with self._pending_lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for rid, entry in leftovers:
            if entry.ticket.done:
                continue
            self.metrics.inc("shed")
            entry.ticket._complete(
                QueryResponse(
                    request_id=rid,
                    status=SHED,
                    error=ServiceClosed(
                        "sharded service closed before this request completed"
                    ),
                    latency_s=self.clock() - entry.ticket.submitted_at,
                )
            )

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- introspection ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        live = sum(1 for s in self._shards if s.state == UP)
        if self._closed:
            status = "closed"
        elif live == 0:
            status = "down"
        elif live < self.shards:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "shards": self.shards,
            "live": live,
            "pending": len(self._pending),
            "states": {s.handle.shard_id: s.state for s in self._shards},
        }

    def stats(self) -> Dict[str, Any]:
        """The ``shard/`` counters plus a per-shard topology snapshot."""
        stats = self.metrics.stats()
        stats["shards"] = {
            s.handle.shard_id: {
                "state": s.state,
                "pid": s.pid,
                "generation": s.handle.generation,
                "restarts": s.lifetime_restarts,
                "breaker": s.breaker.state,
                "depth": s.last_depth,
                "inflight": s.last_inflight,
            }
            for s in self._shards
        }
        stats["pending"] = len(self._pending)
        return stats

    # -- internals ---------------------------------------------------------------

    def _seed_rid_counter(self) -> int:
        """Start the global rid counter past every id any shard WAL has
        ever journalled, so restarted front doors never reuse one."""
        if self.durable_dir is None:
            return 0
        from repro.durable import CheckpointStore
        from repro.durable.recovery import RecoveryManager

        ceiling = -1
        for _sid, root in CheckpointStore.shard_roots(self.durable_dir).items():
            recovered = RecoveryManager(root).recover()
            for rid in list(recovered.pending) + list(recovered.done):
                try:
                    ceiling = max(ceiling, int(rid))
                except ValueError:
                    continue
        return ceiling + 1

    def _spawn(self, state: _ShardState) -> None:
        state.handle.spawn()
        state.state = STARTING
        state.pid = state.handle.process.pid
        state.missed_pongs = 0
        state.stable = False
        self.metrics.inc("spawns")
        self.tracer.event(
            "shard-spawn",
            shard=state.handle.shard_id,
            pid=state.pid,
            generation=state.handle.generation,
        )


class Supervisor(threading.Thread):
    """The single thread that keeps the shard fleet honest: heartbeats,
    message draining, crash detection, bounded restarts, failover."""

    def __init__(self, service: ShardedQueryService):
        super().__init__(name="repro-shard-supervisor", daemon=True)
        self.service = service
        # Not named _stop: threading.Thread has a private _stop() method
        # the interpreter itself calls on join.
        self._halt = threading.Event()

    def stop(self, join_timeout: float = 5.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(join_timeout)

    def run(self) -> None:
        while not self._halt.wait(self.service.heartbeat_interval):
            for state in self.service._shards:
                try:
                    self._tick(state)
                except Exception:  # pragma: no cover - the supervisor
                    # must survive anything one shard's bookkeeping throws;
                    # a dead supervisor means no restarts ever again.
                    pass

    # -- one shard, one tick ----------------------------------------------------

    def _tick(self, state: _ShardState) -> None:
        service = self.service
        now = service.clock()
        self._drain(state)
        if state.state in (STARTING, UP, SUSPECT) and not state.handle.alive():
            self._on_crash(state, f"exit code {state.handle.exitcode}")
            return
        if state.state in (UP, SUSPECT):
            state.ping_seq += 1
            state.missed_pongs += 1
            state.handle.send(("ping", state.ping_seq))
            if state.missed_pongs >= service.miss_limit:
                # A hung interpreter cannot be reasoned with.
                service.tracer.event(
                    "shard-hung",
                    shard=state.handle.shard_id,
                    missed=state.missed_pongs,
                )
                state.handle.kill()
                self._on_crash(state, f"hung ({state.missed_pongs} missed pings)")
                return
            if (
                state.state == UP
                and state.missed_pongs >= max(2, service.miss_limit // 2)
            ):
                state.state = SUSPECT
                service.tracer.event(
                    "shard-suspect",
                    shard=state.handle.shard_id,
                    missed=state.missed_pongs,
                )
        if state.state == UP and not state.stable:
            if now - state.became_up_at >= service.stable_after:
                state.stable = True
                state.restarts = 0
                state.breaker.record_success()
                service.tracer.event("shard-stable", shard=state.handle.shard_id)
        if (
            state.state == DOWN
            and not service._closing
            and now >= state.restart_due
        ):
            self._restart(state)

    def _drain(self, state: _ShardState) -> None:
        service = self.service
        while state.handle.poll():
            message = state.handle.recv()
            if message is None:
                return
            kind = message[0]
            if kind == "ready":
                state.pid = message[2]
                service.tracer.event(
                    "shard-ready", shard=state.handle.shard_id, pid=state.pid
                )
            elif kind == "recovered":
                self._reconcile(state, set(message[1]))
            elif kind == "pong":
                state.missed_pongs = 0
                state.last_depth = message[2]
                state.last_inflight = message[3]
                if state.state == SUSPECT:
                    state.state = UP
            elif kind == "response":
                self._complete(message[1], message[2])
            elif kind == "bye":
                state.state = STOPPED
                service.tracer.event(
                    "shard-stopped", shard=state.handle.shard_id
                )

    def _reconcile(self, state: _ShardState, recovered: set) -> None:
        """The restarted shard told us which rids its WAL replay is
        re-running; resend every other in-flight rid it owns — those died
        in the pipe (never journalled) or finished without their response
        crossing (journalled done)."""
        service = self.service
        shard_id = state.handle.shard_id
        if recovered:
            service.metrics.inc("recovered", len(recovered))
            service.tracer.event(
                "shard-recovered", shard=shard_id, runs=len(recovered)
            )
        with service._pending_lock:
            owned = [
                (rid, entry)
                for rid, entry in service._pending.items()
                if entry.shard_id == shard_id and rid not in recovered
            ]
        for rid, entry in owned:
            entry.resends += 1
            service.metrics.inc("resent")
            state.handle.send(("submit", rid, entry.payload))
        state.state = UP
        state.became_up_at = service.clock()
        state.missed_pongs = 0

    def _complete(self, rid: int, payload: Dict[str, Any]) -> None:
        service = self.service
        with service._pending_lock:
            entry = service._pending.pop(rid, None)
        if entry is None:
            return  # a duplicate ack after a resend race; first answer won
        response = decode_response(rid, payload)
        service.metrics.inc(response.status)
        service.metrics.inc("responses")
        service.metrics.observe("latency_s", response.latency_s)
        service.metrics.gauge("pending", len(service._pending))
        entry.ticket._complete(response)

    def _on_crash(self, state: _ShardState, reason: str) -> None:
        service = self.service
        state.state = DOWN
        state.stable = False
        state.restarts += 1
        state.lifetime_restarts += 1
        state.breaker.record_failure()
        service.metrics.inc("crashes")
        service.tracer.event(
            "shard-crash",
            shard=state.handle.shard_id,
            reason=reason,
            consecutive=state.restarts,
        )
        if state.handle._outbox is not None:
            state.handle._outbox.put(None)  # retire the generation's sender
            state.handle._outbox = None
        if state.handle.conn is not None:
            try:
                state.handle.conn.close()
            except OSError:
                pass
            state.handle.conn = None
        if state.restarts > service.max_restarts:
            self._fail(state)
            return
        backoff = min(
            service.restart_backoff * (2 ** (state.restarts - 1)),
            service.max_backoff,
        )
        state.restart_due = service.clock() + max(
            backoff, state.breaker.retry_after()
        )

    def _restart(self, state: _ShardState) -> None:
        self.service.metrics.inc("restarts")
        self.service.tracer.event(
            "shard-restart",
            shard=state.handle.shard_id,
            attempt=state.restarts,
        )
        self.service._spawn(state)

    def _fail(self, state: _ShardState) -> None:
        """Restart budget exhausted: the shard stays dead.  Its in-flight
        work re-routes to a live shard (failover) or completes with a
        typed ShardDown."""
        service = self.service
        state.state = FAILED_STATE
        service.metrics.inc("failed_shards")
        service.tracer.event(
            "shard-failed",
            shard=state.handle.shard_id,
            restarts=state.lifetime_restarts,
        )
        shard_id = state.handle.shard_id
        with service._pending_lock:
            owned = [
                (rid, entry)
                for rid, entry in service._pending.items()
                if entry.shard_id == shard_id
            ]
        alternates = [s for s in service._shards if s.state == UP]
        for rid, entry in owned:
            if service.failover and alternates:
                target = alternates[rid % len(alternates)]
                with service._pending_lock:
                    entry.shard_id = target.handle.shard_id
                entry.resends += 1
                service.metrics.inc("failover")
                target.handle.send(("submit", rid, entry.payload))
                continue
            with service._pending_lock:
                service._pending.pop(rid, None)
            service.metrics.inc(FAILED)
            entry.ticket._complete(
                QueryResponse(
                    request_id=rid,
                    status=FAILED,
                    error=ShardDown(
                        f"shard {shard_id} exceeded its restart budget "
                        f"({service.max_restarts}) and was taken out of service",
                        shard_id=shard_id,
                    ),
                    latency_s=service.clock() - entry.ticket.submitted_at,
                )
            )
