"""The sharded front door and its crash supervisor.

:class:`ShardedQueryService` is the process-level analogue of
:class:`~repro.serve.service.QueryService`: callers submit
:class:`~repro.serve.request.QueryRequest`\\ s and get
:class:`~repro.serve.service.Ticket`\\ s back, but the work runs in N
worker **processes** (:mod:`repro.serve.shard`), routed by program
fingerprint (:mod:`repro.serve.routing`) so each shard's plan cache and
failure history stay hot for the programs it owns.

The robustness core is the :class:`Supervisor` — one thread driving a
per-shard state machine::

    STARTING --(ready+recovered)--> UP
    UP  --(missed heartbeats)-----> SUSPECT --(more misses: kill)--> DOWN
    UP / SUSPECT --(process died)-> DOWN
    DOWN --(backoff elapsed)------> STARTING   (same WAL shard)
    DOWN --(restart budget spent)-> FAILED
    UP  --(close())---------------> STOPPED

Each tick it drains shard messages (completing caller tickets from
``response`` payloads), pings live shards, declares a shard dead on a
process exit or hung after ``miss_limit`` consecutive unanswered pings
(hung workers are SIGKILLed — a stuck interpreter cannot be reasoned
with), and schedules restarts under **bounded exponential backoff**
stretched by a per-shard :class:`~repro.robust.breaker.CircuitBreaker`
(crash = failure; surviving ``stable_after`` seconds = success), so a
crash-looping shard backs off instead of burning CPU on spawn loops.  A
shard that exhausts ``max_restarts`` consecutive restarts is FAILED: its
in-flight requests re-route to a live shard when ``failover`` is on,
else complete with a typed :class:`~repro.serve.errors.ShardDown`.
With ``replicas=1`` a warm standby is promoted at that transition
instead, and a standby that is *not yet* warm earns the primary
``promotion_grace`` further restarts (the standby syncs through the
primary, so only a restart can ever warm it) before FAILED truly lands.

Restart recovery is the zero-loss half (full argument in
:mod:`repro.serve.shard`): a restarted worker reopens the same WAL
directory, re-runs every journalled-not-done request from its newest
durable checkpoint, and reports the replayed rids; the supervisor then
*resends* any in-flight rid the shard did not recover — exactly the
requests that died unjournalled in the pipe or were retired as done
before their response crossed.

With ``replicas=1`` every logical shard is a **primary + hot standby**
pair (``docs/serving.md`` § Replicated shards).  The primary ships each
durable WAL record up its pipe as it fsyncs it; the supervisor relays
the stream to the standby, which replays it into the shard's *other*
WAL slot (:func:`~repro.serve.routing.wal_slot`).  A fresh standby
catches up by **anti-entropy**: it asks for the primary's segment
manifest, fetches only missing/mismatched segments (verified against
the manifest CRCs), and reports whether any local bytes had to be
discarded (``repl-diverged``).  When the crash-loop detector would park
a shard as FAILED, a *warm* standby is instead **promoted** under a
monotonic fencing token — published to the shard's fence file first,
then stamped durably into the promoted WAL before a single request is
served — and the retained-not-recovered requests are resent exactly as
after a restart; a syncing or diverged standby is never promoted.  The
zombie ex-primary is fenced twice over: its pipe is closed (its sends
fail) and any later publish attempt sees the newer fence token on disk
and refuses (:class:`~repro.errors.StoreFenced` semantics, reported as
``("fenced", ...)``).

Shard-lifecycle trace events (``shard-spawn``, ``shard-ready``,
``shard-recovered``, ``shard-suspect``, ``shard-crash``,
``shard-restart``, ``shard-failed``, ``shard-stable``, ``shard-stopped``,
and with replication ``standby-spawn``, ``standby-warm``,
``standby-promote``, ``repl-diverged``, ``shard-fenced``) are emitted
through the service's tracer when tracing is on; process topology
counters live under the ``shard/`` metrics namespace.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.durable.replication import (
    fence_path,
    read_fence_token,
    write_fence_token,
)
from repro.obs.tracer import Tracer
from repro.robust.breaker import CircuitBreaker
from repro.robust.faults import FaultPlan
from repro.serve.errors import ServiceClosed, ShardDown
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    FAILED,
    SHED,
    QueryRequest,
    QueryResponse,
)
from repro.serve.routing import WAL_SLOTS, failover_order, wal_slot
from repro.serve.service import Ticket
from repro.serve.shard import ShardConfig, ShardHandle, decode_response

__all__ = [
    "ShardedQueryService",
    "Supervisor",
    "STARTING",
    "UP",
    "SUSPECT",
    "DOWN",
    "FAILED_STATE",
    "STOPPED",
]

STARTING = "starting"
UP = "up"
SUSPECT = "suspect"
DOWN = "down"
FAILED_STATE = "failed"
STOPPED = "stopped"


@dataclass
class _Pending:
    """One in-flight request the front door still owes an answer for."""

    ticket: Ticket
    shard_id: int
    payload: Dict[str, Any]
    resends: int = 0


@dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one logical shard (the primary
    handle plus, under ``replicas=1``, its hot-standby handle)."""

    handle: ShardHandle
    breaker: CircuitBreaker
    state: str = STARTING
    pid: Optional[int] = None
    ping_seq: int = 0
    missed_pongs: int = 0
    restarts: int = 0
    lifetime_restarts: int = 0
    restart_due: float = 0.0
    became_up_at: float = 0.0
    stable: bool = False
    last_depth: int = 0
    last_inflight: int = 0
    #: Which WAL slot the *primary* currently serves from ("a"/"b");
    #: every promotion swaps it.
    slot: str = "a"
    #: The newest fencing token this shard has been promoted under.
    fence_token: int = 0
    standby: Optional[ShardHandle] = None
    #: "none" / "starting" / "syncing" / "warm" / "down"
    standby_state: str = "none"
    standby_pid: Optional[int] = None
    #: Ships are relayed only after the manifest reply crossed — the
    #: manifest's position in the primary's stream is the exact boundary
    #: between records it covers and records the standby must apply live.
    standby_attached: bool = False
    standby_ping_seq: int = 0
    standby_missed: int = 0
    standby_restart_due: float = 0.0
    standby_diverged: bool = False
    shipped_seq: int = 0
    standby_applied: int = 0


class _RemoteTicket(Ticket):
    """A ticket whose cancel() crosses the process boundary."""

    def __init__(self, service: "ShardedQueryService", *args: Any):
        super().__init__(*args)
        self._service = service

    def cancel(self, reason: str = "cancelled by caller") -> None:
        super().cancel(reason)
        self._service._forward_cancel(self.request_id)


class ShardedQueryService:
    """N worker processes behind one fingerprint-routing front door.

    Args:
        shards: worker-process count.
        workers_per_shard: worker threads inside each shard's inner
            :class:`~repro.serve.service.QueryService`.
        queue_capacity: each shard's inner admission bound.
        seed: base seed; shard *k* runs its inner service with
            ``seed + k`` so retry jitter never synchronizes across shards.
        durable_dir: root directory for the per-shard WAL stores
            (``<durable_dir>/shard-<k>``); ``None`` serves non-durably
            (restarts re-run in-flight work from the retained payloads
            instead of checkpoints).
        replicas: ``1`` gives every shard a hot standby in its other WAL
            slot, fed by live WAL shipping, promoted under a fencing
            token when the primary exhausts its restart budget (requires
            ``durable_dir``); ``0`` (default) is PR 8's single-worker
            shard.
        fsync / every_seconds: each shard store's fsync policy and
            checkpoint cadence.
        heartbeat_interval: supervisor tick (ping cadence), seconds.
        miss_limit: consecutive unanswered pings before a shard is
            declared hung and killed (``miss_limit // 2`` marks SUSPECT).
        restart_backoff / max_backoff: exponential restart delay bounds.
        max_restarts: consecutive restarts (without a stable interval)
            before the shard is FAILED.
        promotion_grace: replicated shards only — extra consecutive
            restarts granted *past* ``max_restarts`` while the standby
            is not yet warm.  The primary is the standby's anti-entropy
            source, so parking the shard the instant its budget runs
            out would discard a replica that is seconds from
            promotable and can never warm without it; the supervisor
            restarts instead and promotes on a later crash.  Only when
            the grace is spent too is the shard FAILED.
        stable_after: seconds a restarted shard must stay up before its
            breaker records success and the restart counter resets.
        failover: route around dead shards (new submissions) and re-route
            a FAILED shard's in-flight work to live shards; off, callers
            get typed :class:`ShardDown` rejections instead.
        failure_threshold / reset_timeout: per-shard breaker tuning.
        default_budget_wall_clock: wall-clock budget for requests
            carrying none (applied inside the shards).
        trace: emit shard-lifecycle trace events.
        fault_plans / crash_after: fault injection installed inside every
            spawned worker (chaos tests; see
            :data:`repro.robust.faults.SHARD_SITES`).
        standby_fault_plans: when not ``None``, standbys install these
            plans instead of ``fault_plans`` — pass ``()`` to scope chaos
            to primaries (a ``wal.fsync`` exit plan would otherwise kill
            every standby at its first applied record too, and there
            would never be a warm standby to promote).
        start_timeout: how long the constructor blocks for the fleet to
            come up (:meth:`wait_ready`); ``0`` returns immediately.
        pipe_batch: coalesce pipe messages into per-pass batches on both
            pipe ends (default on; the throughput micro-bench flips it).
    """

    def __init__(
        self,
        shards: int = 2,
        workers_per_shard: int = 1,
        queue_capacity: int = 64,
        seed: int = 0,
        durable_dir: Optional[str] = None,
        replicas: int = 0,
        fsync: str = "always",
        every_seconds: float = 0.05,
        heartbeat_interval: float = 0.05,
        miss_limit: int = 40,
        restart_backoff: float = 0.2,
        max_backoff: float = 5.0,
        max_restarts: int = 5,
        promotion_grace: int = 4,
        stable_after: float = 1.0,
        failover: bool = True,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        default_budget_wall_clock: Optional[float] = None,
        trace: bool = False,
        fault_plans: Tuple[FaultPlan, ...] = (),
        standby_fault_plans: Optional[Tuple[FaultPlan, ...]] = None,
        crash_after: Optional[int] = None,
        start_timeout: float = 30.0,
        clock: Any = time.monotonic,
        pipe_batch: bool = True,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas not in (0, 1):
            raise ValueError("replicas must be 0 or 1 (one hot standby)")
        if replicas and not durable_dir:
            raise ValueError(
                "replicas=1 needs durable_dir: the standby replays the "
                "primary's shipped WAL, and there is no WAL without one"
            )
        self.shards = shards
        self.replicas = replicas
        self.durable_dir = os.fspath(durable_dir) if durable_dir else None
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.restart_backoff = restart_backoff
        self.max_backoff = max_backoff
        self.max_restarts = max_restarts
        self.promotion_grace = promotion_grace
        self.stable_after = stable_after
        self.failover = failover
        self.standby_fault_plans = standby_fault_plans
        self.clock = clock
        self.metrics = ServiceMetrics(namespace="shard")
        self.tracer = Tracer(enabled=trace)
        self._ctx = multiprocessing.get_context("spawn")
        self._pending: Dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._closed = False
        self._closing = False
        self._next_id = self._seed_rid_counter()
        self._shards: List[_ShardState] = []
        for k in range(shards):
            slot, token = self._startup_slot(k)
            config = ShardConfig(
                workers=workers_per_shard,
                queue_capacity=queue_capacity,
                seed=seed + k,
                durable_root=self.durable_dir,
                fsync=fsync,
                every_seconds=every_seconds,
                default_budget_wall_clock=default_budget_wall_clock,
                fault_plans=tuple(fault_plans),
                crash_after=crash_after,
                pipe_batch=pipe_batch,
            )
            handle = ShardHandle(shard_id=k, config=config, ctx=self._ctx)
            breaker = CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                clock=clock,
            )
            self._shards.append(
                _ShardState(
                    handle=handle, breaker=breaker, slot=slot, fence_token=token
                )
            )
        for state in self._shards:
            self._spawn(state)
            if self.replicas:
                self._spawn_standby(state)
        self.supervisor = Supervisor(self)
        self.supervisor.start()
        if start_timeout:
            self.wait_ready(start_timeout)

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every non-failed shard is UP (spawn + WAL replay
        take real time under the spawn start method); ``True`` when the
        fleet is fully live within *timeout*."""
        deadline = self.clock() + timeout
        while self.clock() < deadline:
            states = {s.state for s in self._shards}
            if states <= {UP, FAILED_STATE, STOPPED} and UP in states:
                return True
            time.sleep(0.01)
        return False

    # -- submission ------------------------------------------------------------

    def submit(self, request: QueryRequest) -> Ticket:
        """Route *request* to the owning shard (or a live failover) and
        return the caller's ticket.

        Raises:
            ServiceClosed: after :meth:`close`.
            ShardDown: the owning shard — and, with failover, every other
                shard — is not accepting work right now.
        """
        if self._closed or self._closing:
            raise ServiceClosed("sharded service is closed to new submissions")
        self.metrics.inc("submitted")
        klass = request.breaker_class()
        order = failover_order(klass, self.shards)
        target: Optional[_ShardState] = None
        for position, shard_id in enumerate(order):
            state = self._shards[shard_id]
            if state.state == UP:
                target = state
                if position > 0:
                    self.metrics.inc("failover")
                break
            if not self.failover:
                break
        if target is None:
            primary = self._shards[order[0]]
            hint = max(0.0, primary.restart_due - self.clock())
            self.metrics.inc("rejected")
            raise ShardDown(
                f"shard {order[0]} (owner of class {klass!r}) is "
                f"{primary.state} and no live shard can take the request",
                retry_after=hint or self.heartbeat_interval,
                shard_id=order[0],
            )
        now = self.clock()
        with self._pending_lock:
            rid = self._next_id
            self._next_id += 1
        ticket = _RemoteTicket(self, rid, request, now)
        if request.deadline is not None:
            ticket.deadline = now + request.deadline
        payload = request.to_payload()
        with self._pending_lock:
            self._pending[rid] = _Pending(
                ticket=ticket, shard_id=target.handle.shard_id, payload=payload
            )
        # A failed send is not an error: the supervisor will observe the
        # dead pipe and the retained payload is resent after restart.
        target.handle.send(("submit", rid, payload))
        self.metrics.inc("accepted")
        self.metrics.gauge("pending", len(self._pending))
        return ticket

    def evaluate(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait; re-raises the typed error of ``failed``/
        ``shed`` outcomes, mirroring
        :meth:`~repro.serve.service.QueryService.evaluate`."""
        response = self.submit(request).response(timeout)
        if response.status in (FAILED, SHED) and response.error is not None:
            raise response.error
        return response

    def _forward_cancel(self, rid: int) -> None:
        with self._pending_lock:
            entry = self._pending.get(rid)
        if entry is not None:
            self._shards[entry.shard_id].handle.send(("cancel", rid))

    # -- lifecycle -------------------------------------------------------------

    def close(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally), stop every shard, and resolve every ticket.

        No caller is left blocked: tickets the shards never answered are
        completed with a typed shutdown response, exactly like the
        in-process service's close.
        """
        if self._closed:
            return
        self._closing = True
        deadline = self.clock() + timeout
        if wait:
            while self._pending and self.clock() < deadline:
                time.sleep(0.01)
        for state in self._shards:
            if state.handle.alive():
                state.handle.send(("close",))
            if state.standby is not None and state.standby.alive():
                state.standby.send(("close",))
        for state in self._shards:
            if state.handle.process is not None:
                state.handle.process.join(
                    max(0.1, min(5.0, deadline - self.clock()))
                )
        self.supervisor.stop()
        for state in self._shards:
            state.handle.kill()
            if state.standby is not None:
                state.standby.kill()
                state.standby_state = "none"
            state.state = STOPPED
        self._closed = True
        with self._pending_lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for rid, entry in leftovers:
            if entry.ticket.done:
                continue
            self.metrics.inc("shed")
            entry.ticket._complete(
                QueryResponse(
                    request_id=rid,
                    status=SHED,
                    error=ServiceClosed(
                        "sharded service closed before this request completed"
                    ),
                    latency_s=self.clock() - entry.ticket.submitted_at,
                )
            )

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- introspection ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        live = sum(1 for s in self._shards if s.state == UP)
        if self._closed:
            status = "closed"
        elif live == 0:
            status = "down"
        elif live < self.shards:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "shards": self.shards,
            "live": live,
            "pending": len(self._pending),
            "states": {s.handle.shard_id: s.state for s in self._shards},
        }

    def stats(self) -> Dict[str, Any]:
        """The ``shard/`` counters plus a per-shard topology snapshot
        (with ``replicas=1``: the serving slot, fencing token, standby
        state, and the replication lag in records)."""
        stats = self.metrics.stats()
        stats["shards"] = {
            s.handle.shard_id: {
                "state": s.state,
                "pid": s.pid,
                "generation": s.handle.generation,
                "restarts": s.lifetime_restarts,
                "breaker": s.breaker.state,
                "depth": s.last_depth,
                "inflight": s.last_inflight,
                "slot": s.slot,
                "fence_token": s.fence_token,
                "standby_state": s.standby_state,
                "replication_lag_records": max(
                    0, s.shipped_seq - s.standby_applied
                ),
            }
            for s in self._shards
        }
        stats["pending"] = len(self._pending)
        return stats

    # -- internals ---------------------------------------------------------------

    def _seed_rid_counter(self) -> int:
        """Start the global rid counter past every id any shard WAL has
        ever journalled — both replica slots of every shard, because a
        stale ex-primary slot can hold ids the promoted log does not."""
        if self.durable_dir is None:
            return 0
        from repro.durable.recovery import RecoveryManager

        ceiling = -1
        try:
            names = os.listdir(self.durable_dir)
        except FileNotFoundError:
            names = []
        for name in sorted(names):
            root = os.path.join(self.durable_dir, name)
            if not name.startswith("shard-") or not os.path.isdir(root):
                continue
            try:
                recovered = RecoveryManager(root).recover()
            except Exception:
                # A corrupt stale slot is anti-entropy's problem (it gets
                # rebuilt from the primary), not a reason to refuse to
                # start the front door.
                continue
            for rid in list(recovered.pending) + list(recovered.done):
                try:
                    ceiling = max(ceiling, int(rid))
                except ValueError:
                    continue
        return ceiling + 1

    def _startup_slot(self, shard_id: int) -> Tuple[str, int]:
        """Which WAL slot last served as shard *shard_id*'s primary, and
        under which fencing token: the slot holding the newest durable
        ``fence`` stamp wins (slot "a" on a fresh directory or a tie —
        an unreplicated PR 8 layout restarts unchanged)."""
        if self.durable_dir is None:
            return "a", 0
        from repro.durable.recovery import RecoveryManager

        slot, token = "a", 0
        for candidate in WAL_SLOTS:
            root = os.path.join(self.durable_dir, wal_slot(shard_id, candidate))
            if not os.path.isdir(root):
                continue
            try:
                stamped = RecoveryManager(root).recover().fence_token
            except Exception:
                continue  # a corrupt slot never gets to be the primary
            if stamped > token:
                slot, token = candidate, stamped
        token = max(token, read_fence_token(fence_path(self.durable_dir, shard_id)))
        return slot, token

    def _primary_config(self, state: _ShardState) -> ShardConfig:
        shard_id = state.handle.shard_id
        if self.durable_dir is None:
            return dataclasses.replace(state.handle.config, role="primary")
        return dataclasses.replace(
            state.handle.config,
            role="primary",
            wal_name=wal_slot(shard_id, state.slot),
            replicate=self.replicas > 0,
            fence_token=state.fence_token,
            fence_file=fence_path(self.durable_dir, shard_id),
        )

    def _spawn(self, state: _ShardState) -> None:
        # Refresh the spawn config every time: the serving slot and the
        # fence token move on promotion, and the worker must open the
        # right WAL under the right token.
        state.handle.config = self._primary_config(state)
        state.handle.spawn()
        state.state = STARTING
        state.pid = state.handle.process.pid
        state.missed_pongs = 0
        state.stable = False
        state.shipped_seq = 0
        state.standby_attached = False
        self.metrics.inc("spawns")
        self.tracer.event(
            "shard-spawn",
            shard=state.handle.shard_id,
            pid=state.pid,
            generation=state.handle.generation,
            slot=state.slot,
        )

    def _spawn_standby(self, state: _ShardState) -> None:
        """Start (or restart) the shard's standby in the *other* WAL
        slot; it catches up via anti-entropy before going warm."""
        shard_id = state.handle.shard_id
        other = WAL_SLOTS[1] if state.slot == WAL_SLOTS[0] else WAL_SLOTS[0]
        # ``replicate`` stays armed (from _primary_config): the standby
        # loop ignores it, but the in-process promotion flip reuses this
        # config — a promoted primary must ship to *its* fresh standby.
        config = dataclasses.replace(
            self._primary_config(state),
            role="standby",
            wal_name=wal_slot(shard_id, other),
        )
        if self.standby_fault_plans is not None:
            config = dataclasses.replace(
                config, fault_plans=tuple(self.standby_fault_plans)
            )
        if state.standby is None:
            state.standby = ShardHandle(
                shard_id=shard_id, config=config, ctx=self._ctx
            )
        else:
            state.standby.config = config
        state.standby.spawn()
        state.standby_state = "starting"
        state.standby_attached = False
        state.standby_applied = 0
        state.standby_missed = 0
        state.standby_diverged = False
        self.metrics.inc("standby_spawns")
        self.tracer.event(
            "standby-spawn",
            shard=shard_id,
            pid=state.standby.process.pid,
            slot=other,
        )


class Supervisor(threading.Thread):
    """The single thread that keeps the shard fleet honest: heartbeats,
    message draining, crash detection, bounded restarts, failover."""

    def __init__(self, service: ShardedQueryService):
        super().__init__(name="repro-shard-supervisor", daemon=True)
        self.service = service
        # Not named _stop: threading.Thread has a private _stop() method
        # the interpreter itself calls on join.
        self._halt = threading.Event()

    def stop(self, join_timeout: float = 5.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(join_timeout)

    def run(self) -> None:
        while not self._halt.wait(self.service.heartbeat_interval):
            for state in self.service._shards:
                try:
                    self._tick(state)
                except Exception:  # pragma: no cover - the supervisor
                    # must survive anything one shard's bookkeeping throws;
                    # a dead supervisor means no restarts ever again.
                    pass

    # -- one shard, one tick ----------------------------------------------------

    def _tick(self, state: _ShardState) -> None:
        self._tick_primary(state)
        if self.service.replicas:
            self._tick_standby(state)

    def _tick_primary(self, state: _ShardState) -> None:
        service = self.service
        now = service.clock()
        self._drain(state)
        if state.state in (STARTING, UP, SUSPECT) and not state.handle.alive():
            self._on_crash(state, f"exit code {state.handle.exitcode}")
            return
        if state.state in (UP, SUSPECT):
            state.ping_seq += 1
            state.missed_pongs += 1
            state.handle.send(("ping", state.ping_seq))
            if state.missed_pongs >= service.miss_limit:
                # A hung interpreter cannot be reasoned with.
                service.tracer.event(
                    "shard-hung",
                    shard=state.handle.shard_id,
                    missed=state.missed_pongs,
                )
                state.handle.kill()
                self._on_crash(state, f"hung ({state.missed_pongs} missed pings)")
                return
            if (
                state.state == UP
                and state.missed_pongs >= max(2, service.miss_limit // 2)
            ):
                state.state = SUSPECT
                service.tracer.event(
                    "shard-suspect",
                    shard=state.handle.shard_id,
                    missed=state.missed_pongs,
                )
        if state.state == UP and not state.stable:
            if now - state.became_up_at >= service.stable_after:
                state.stable = True
                state.restarts = 0
                state.breaker.record_success()
                service.tracer.event("shard-stable", shard=state.handle.shard_id)
        if (
            state.state == DOWN
            and not service._closing
            and now >= state.restart_due
        ):
            self._restart(state)

    def _drain(self, state: _ShardState) -> None:
        service = self.service
        while state.handle.poll():
            message = state.handle.recv()
            if message is None:
                return
            kind = message[0]
            if kind == "ready":
                state.pid = message[2]
                service.tracer.event(
                    "shard-ready", shard=state.handle.shard_id, pid=state.pid
                )
            elif kind == "recovered":
                self._reconcile(state, set(message[1]))
            elif kind == "pong":
                state.missed_pongs = 0
                if isinstance(message[3], int):  # a standby's last pong
                    state.last_depth = message[2]  # ends up here right
                    state.last_inflight = message[3]  # after promotion
                if state.state == SUSPECT:
                    state.state = UP
            elif kind == "response":
                self._complete(message[1], message[2])
            elif kind in ("ship", "ship-compact"):
                state.shipped_seq = message[1]
                service.metrics.inc("repl_shipped")
                if state.standby is not None and state.standby_attached:
                    state.standby.send(message)
            elif kind == "manifest":
                # The manifest's place in the primary's stream is the
                # exact covered/uncovered boundary: everything shipped
                # after it is the suffix the standby must apply live.
                if state.standby is not None:
                    state.standby.send(message)
                    state.standby_attached = True
            elif kind == "segment":
                if state.standby is not None:
                    state.standby.send(message)
            elif kind == "fenced":
                service.metrics.inc("fenced")
                service.tracer.event(
                    "shard-fenced",
                    shard=state.handle.shard_id,
                    token=message[1],
                    held=message[2],
                )
            elif kind == "bye":
                state.state = STOPPED
                service.tracer.event(
                    "shard-stopped", shard=state.handle.shard_id
                )

    # -- the standby ------------------------------------------------------------

    def _tick_standby(self, state: _ShardState) -> None:
        service = self.service
        if service._closing or state.state in (STOPPED, FAILED_STATE):
            return
        now = service.clock()
        if state.standby is None or state.standby.process is None:
            self.service._spawn_standby(state)
            return
        self._drain_standby(state)
        if not state.standby.alive():
            if state.standby_state != "down":
                state.standby_state = "down"
                state.standby_attached = False
                state.standby.kill()  # reap + retire the sender thread
                state.standby_restart_due = now + service.restart_backoff
                service.tracer.event(
                    "standby-down", shard=state.handle.shard_id
                )
            elif now >= state.standby_restart_due:
                service._spawn_standby(state)
            return
        if state.standby_state in ("syncing", "warm"):
            state.standby_ping_seq += 1
            state.standby_missed += 1
            state.standby.send(("ping", state.standby_ping_seq))
            if state.standby_missed >= service.miss_limit:
                # A hung standby is as useless as a hung primary.
                state.standby.kill()
                state.standby_state = "down"
                state.standby_attached = False
                state.standby_restart_due = now + service.restart_backoff
                service.tracer.event(
                    "standby-down",
                    shard=state.handle.shard_id,
                    reason="hung",
                )

    def _drain_standby(self, state: _ShardState) -> None:
        service = self.service
        standby = state.standby
        while standby.poll():
            message = standby.recv()
            if message is None:
                return
            kind = message[0]
            if kind == "ready":
                state.standby_pid = message[2]
            elif kind == "sync-request":
                state.standby_state = "syncing"
                state.handle.send(("manifest",))
            elif kind == "fetch":
                state.handle.send(message)
            elif kind == "standby-state":
                state.standby_state = message[1]
                state.standby_diverged = bool(message[2])
                if message[2]:
                    service.metrics.inc("repl_diverged")
                    service.tracer.event(
                        "repl-diverged", shard=state.handle.shard_id
                    )
                service.tracer.event(
                    "standby-warm",
                    shard=state.handle.shard_id,
                    diverged=bool(message[2]),
                )
            elif kind == "pong":
                state.standby_missed = 0
                state.standby_applied = message[2]
                if message[3] in ("syncing", "warm"):
                    state.standby_state = message[3]
                service.metrics.gauge(
                    f"replication_lag_records_{state.handle.shard_id}",
                    max(0, state.shipped_seq - state.standby_applied),
                )

    def _promote(self, state: _ShardState) -> bool:
        """Promote the shard's standby to primary under a fresh fencing
        token; ``False`` when there is nothing safe to promote (no
        standby, dead, or still syncing — a replica that has not proven
        itself byte-identical to the manifest is never promoted)."""
        service = self.service
        standby = state.standby
        if (
            not service.replicas
            or standby is None
            or not standby.alive()
            or state.standby_state != "warm"
        ):
            return False
        shard_id = state.handle.shard_id
        token = state.fence_token + 1
        # Fence first, promote second: the token is on disk before the
        # new primary serves, so the zombie's next publish check loses
        # even if it somehow outruns its closed pipe.
        write_fence_token(fence_path(service.durable_dir, shard_id), token)
        state.handle.kill()
        old_slot = state.slot
        state.slot = WAL_SLOTS[1] if old_slot == WAL_SLOTS[0] else WAL_SLOTS[0]
        state.fence_token = token
        standby.send(("promote", token))
        standby.config = service._primary_config(state)
        state.handle = standby
        state.pid = state.standby_pid
        state.standby = None
        state.standby_state = "none"
        state.standby_attached = False
        state.standby_pid = None
        state.shipped_seq = 0
        state.standby_applied = 0
        state.state = STARTING
        state.missed_pongs = 0
        state.restarts = 0
        state.stable = False
        service.metrics.inc("promotions")
        service.tracer.event(
            "standby-promote",
            shard=shard_id,
            token=token,
            slot=state.slot,
        )
        # A fresh standby rebuilds the dead primary's slot via
        # anti-entropy on the next tick (_tick_standby sees None).
        return True

    def _reconcile(self, state: _ShardState, recovered: set) -> None:
        """The restarted shard told us which rids its WAL replay is
        re-running; resend every other in-flight rid it owns — those died
        in the pipe (never journalled) or finished without their response
        crossing (journalled done)."""
        service = self.service
        shard_id = state.handle.shard_id
        if recovered:
            service.metrics.inc("recovered", len(recovered))
            service.tracer.event(
                "shard-recovered", shard=shard_id, runs=len(recovered)
            )
        with service._pending_lock:
            owned = [
                (rid, entry)
                for rid, entry in service._pending.items()
                if entry.shard_id == shard_id and rid not in recovered
            ]
        for rid, entry in owned:
            entry.resends += 1
            service.metrics.inc("resent")
            state.handle.send(("submit", rid, entry.payload))
        state.state = UP
        state.became_up_at = service.clock()
        state.missed_pongs = 0

    def _complete(self, rid: int, payload: Dict[str, Any]) -> None:
        service = self.service
        with service._pending_lock:
            entry = service._pending.pop(rid, None)
        if entry is None:
            return  # a duplicate ack after a resend race; first answer won
        response = decode_response(rid, payload)
        service.metrics.inc(response.status)
        service.metrics.inc("responses")
        service.metrics.observe("latency_s", response.latency_s)
        service.metrics.gauge("pending", len(service._pending))
        entry.ticket._complete(response)

    def _on_crash(self, state: _ShardState, reason: str) -> None:
        service = self.service
        state.state = DOWN
        state.stable = False
        state.restarts += 1
        state.lifetime_restarts += 1
        state.breaker.record_failure()
        service.metrics.inc("crashes")
        service.tracer.event(
            "shard-crash",
            shard=state.handle.shard_id,
            reason=reason,
            consecutive=state.restarts,
        )
        if state.handle._outbox is not None:
            state.handle._outbox.put(None)  # retire the generation's sender
            state.handle._outbox = None
        if state.handle.conn is not None:
            try:
                state.handle.conn.close()
            except OSError:
                pass
            state.handle.conn = None
        if state.restarts > service.max_restarts:
            # The crash-loop detector would park the shard — promotion
            # is exactly this transition done better: a warm standby
            # takes over the shard instead of the shard going dark.
            if self._promote(state):
                return
            if (
                not service.replicas
                or state.restarts
                > service.max_restarts + service.promotion_grace
            ):
                self._fail(state)
                return
            # The standby exists but is not warm (dead, starting, or
            # mid-sync) — and it syncs *through* the primary, so
            # failing the shard now would strand a replica that is
            # seconds from promotable.  Defer: restart the primary
            # (re-arming anti-entropy) and promote on a later crash.
            service.metrics.inc("promote_deferred")
            service.tracer.event(
                "promote-deferred",
                shard=state.handle.shard_id,
                standby=state.standby_state,
                restarts=state.restarts,
            )
        backoff = min(
            service.restart_backoff * (2 ** (state.restarts - 1)),
            service.max_backoff,
        )
        state.restart_due = service.clock() + max(
            backoff, state.breaker.retry_after()
        )

    def _restart(self, state: _ShardState) -> None:
        self.service.metrics.inc("restarts")
        self.service.tracer.event(
            "shard-restart",
            shard=state.handle.shard_id,
            attempt=state.restarts,
        )
        self.service._spawn(state)
        if self.service.replicas and state.standby is not None:
            # The restarted primary may recover fsynced records that were
            # never shipped; a stale standby would silently lag behind a
            # log it half-mirrors.  Rebuild it via anti-entropy instead.
            state.standby.kill()
            state.standby_state = "down"
            state.standby_attached = False
            state.standby_restart_due = self.service.clock()

    def _fail(self, state: _ShardState) -> None:
        """Restart budget exhausted: the shard stays dead.  Its in-flight
        work re-routes to a live shard (failover) or completes with a
        typed ShardDown."""
        service = self.service
        state.state = FAILED_STATE
        if state.standby is not None:
            state.standby.kill()
            state.standby_state = "none"
        service.metrics.inc("failed_shards")
        service.tracer.event(
            "shard-failed",
            shard=state.handle.shard_id,
            restarts=state.lifetime_restarts,
        )
        shard_id = state.handle.shard_id
        with service._pending_lock:
            owned = [
                (rid, entry)
                for rid, entry in service._pending.items()
                if entry.shard_id == shard_id
            ]
        alternates = [s for s in service._shards if s.state == UP]
        for rid, entry in owned:
            if service.failover and alternates:
                target = alternates[rid % len(alternates)]
                with service._pending_lock:
                    entry.shard_id = target.handle.shard_id
                entry.resends += 1
                service.metrics.inc("failover")
                target.handle.send(("submit", rid, entry.payload))
                continue
            with service._pending_lock:
                service._pending.pop(rid, None)
            service.metrics.inc(FAILED)
            entry.ticket._complete(
                QueryResponse(
                    request_id=rid,
                    status=FAILED,
                    error=ShardDown(
                        f"shard {shard_id} exceeded its restart budget "
                        f"({service.max_restarts}) and was taken out of service",
                        shard_id=shard_id,
                    ),
                    latency_s=service.clock() - entry.ticket.submitted_at,
                )
            )
