"""Specification-level optimisation over choice models.

Section 7 poses the conclusion's central question with the *naive*
matching program: the minimum-cost maximal matching is specified as a
post-condition (``opt_matching(C) <- a_matching(C), least(C)``) over all
choice models, and the open problem is when that specification can be
compiled into the greedy program of Example 7 ("propagation of extrema
predicates into recursion", matroid theory as the likely tool).

This module implements the *specification side* exactly: enumerate the
choice models (via :func:`repro.semantics.choice_models.enumerate_choice_models`)
and return the ones optimising an objective over a designated predicate.
Exponential, but it is the ground truth the greedy engines can be
measured against — the test suite uses it to exhibit both directions of
the matroid story:

* on a partition matroid (one choice FD), the greedy model *is* a
  specification optimum;
* on the matroid intersection (Example 7's two FDs), greedy can miss it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

from repro.core.compiler import FactsInput
from repro.datalog.program import Program
from repro.semantics.choice_models import enumerate_choice_models
from repro.storage.database import Database

__all__ = ["optimal_choice_models", "model_objective"]

Objective = Callable[[Database], Any]


def model_objective(
    predicate: str, arity: int, cost_position: int, skip_stage_zero: bool = True
) -> Objective:
    """Objective: sum of one column of a predicate over the model.

    Args:
        predicate: relation to aggregate.
        arity: its arity.
        cost_position: index of the summed argument.
        skip_stage_zero: ignore facts whose *last* argument is 0 (the
            conventional exit facts of stage programs).
    """

    def objective(db: Database) -> Any:
        total = 0
        for fact in db.facts(predicate, arity):
            if skip_stage_zero and isinstance(fact[-1], int) and fact[-1] == 0:
                continue
            total += fact[cost_position]
        return total

    return objective


def optimal_choice_models(
    source: Union[str, Program],
    facts: FactsInput = None,
    objective: Objective | None = None,
    maximize: bool = False,
    max_steps: int = 100_000,
) -> Tuple[Any, List[Database]]:
    """All choice models attaining the optimal objective value.

    This is the paper's post-condition semantics, computed by brute
    force: ``least(C)`` over ``a_matching(C)`` is
    ``optimal_choice_models(matching_program, facts, objective)`` with
    the cost-sum objective.

    Returns:
        ``(best_value, models)`` — every enumerated model whose objective
        equals the optimum.  ``(None, [])`` when the program has no model
        (cannot happen for choice programs, by Lemma 3).

    Raises:
        EvaluationError: if enumeration exceeds *max_steps*.
    """
    if objective is None:
        raise ValueError("an objective is required")
    models = enumerate_choice_models(source, facts=facts, max_steps=max_steps)
    best: Optional[Any] = None
    chosen: List[Database] = []
    for model in models:
        value = objective(model)
        key = -value if maximize else value
        best_key = None if best is None else (-best if maximize else best)
        if best_key is None or key < best_key:
            best = value
            chosen = [model]
        elif key == best_key:
            chosen.append(model)
    return best, chosen
