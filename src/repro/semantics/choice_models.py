"""Exhaustive enumeration of choice models.

Lemma 1 / Theorem 2 state that the (stage-)choice fixpoint procedures are
*non-deterministically complete*: every stable model is produced by some
instantiation of the one-consequence operator γ.  This module mechanises
that statement for small instances by branching the fixpoint over every
eligible γ candidate (depth-first, with the database and the memoized
choice state cloned at each branch) and collecting the distinct final
models.

Intended for testing and for exploring the model space of a program —
the search is exponential in the number of γ steps, so keep instances
small.

Example::

    models = enumerate_choice_models(
        "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).",
        facts={"takes": [("andy", "engl"), ("mark", "engl"),
                         ("ann", "math"), ("mark", "math")]},
    )
    len(models)   # 3 — the paper's M1, M2, M3
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple, Union

from repro.core.compiler import FactsInput, _as_database
from repro.core.stage_analysis import CliqueReport
from repro.core.stage_engine import BasicStageEngine, StageCliqueState
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.unify import ground_term
from repro.errors import EvaluationError
from repro.storage.database import Database

__all__ = ["enumerate_choice_models"]

ModelKey = FrozenSet


def enumerate_choice_models(
    source: Union[str, Program],
    facts: FactsInput = None,
    limit: int | None = None,
    max_steps: int = 100_000,
) -> List[Database]:
    """All choice models (stable models) of *source* over *facts*.

    Args:
        source: program text or a parsed :class:`Program`.
        facts: extensional database (mapping or :class:`Database`).
        limit: stop after this many distinct models (``None`` = all).
        max_steps: safety valve on the total number of γ branches explored.

    Raises:
        EvaluationError: if *max_steps* is exhausted before the search
            completes (the result would be incomplete).
    """
    program = parse_program(source) if isinstance(source, str) else source
    program.check_safety()
    enumerator = _Enumerator(program, limit, max_steps)
    enumerator.search(_as_database(facts))
    return enumerator.models


class _Enumerator:
    """DFS over γ choices, clique by clique."""

    def __init__(self, program: Program, limit: int | None, max_steps: int):
        # The engine instance supplies analysis, candidate enumeration and
        # the quiesce machinery; its rng is never exercised because the
        # DFS enumerates candidates instead of drawing them.
        self.engine = BasicStageEngine(program, check_safety=False)
        self.limit = limit
        self.max_steps = max_steps
        self.steps = 0
        self.models: List[Database] = []
        self._seen: set = set()

    # -- driver ------------------------------------------------------------------

    def search(self, db: Database) -> None:
        for name, facts in self.engine.program.ground_facts().items():
            db.assert_all(name, facts)
        self._run_cliques(0, db)

    def _done(self) -> bool:
        return self.limit is not None and len(self.models) >= self.limit

    def _record(self, db: Database) -> None:
        key = frozenset(
            (pred, frozenset(facts)) for pred, facts in db.as_dict().items()
        )
        if key not in self._seen:
            self._seen.add(key)
            self.models.append(db)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise EvaluationError(
                f"enumerate_choice_models exceeded max_steps={self.max_steps}; "
                "the model space is too large to enumerate exhaustively"
            )

    def _run_cliques(self, index: int, db: Database) -> None:
        if self._done():
            return
        reports = self.engine.analysis.reports
        while index < len(reports) and reports[index].kind == "plain":
            self.engine._run_plain_clique(reports[index], db)
            index += 1
        if index == len(reports):
            self._record(db)
            return
        report = reports[index]
        if report.kind == "choice":
            self._branch_choice_clique(report, index, db)
        else:
            state = self.engine._prepare(report, db)
            state.absorb(self.engine._quiesce(state, db, seeds=None))
            self._branch_stage_clique(index, state, db)

    # -- choice cliques --------------------------------------------------------------

    def _branch_choice_clique(self, report: CliqueReport, index: int, db: Database) -> None:
        """DFS over the γ candidates of a stage-less choice clique.

        The clique is executed through a synthetic
        :class:`StageCliqueState` with every choice rule treated as an
        exit rule, which gives us cloning and absorb for free.
        """
        from repro.core.engine_base import ChoiceMemo

        clique = report.clique
        choice_rules = [r for r in clique.rules if r.choice_goals]
        flat_rules = [r for r in clique.rules if not r.choice_goals]
        state = StageCliqueState(
            report,
            next_rules=[],
            flat_rules=[r for r in flat_rules if not r.extrema_goals],
            param_rules=[],
            exit_choice_rules=choice_rules,
            memos={id(r): ChoiceMemo(r) for r in choice_rules},
            w_memos={},
        )
        from repro.core.clique_eval import evaluate_rule_once, saturate

        saturate(state.flat_rules, clique.predicates, db)
        for rule in flat_rules:
            if rule.extrema_goals:
                evaluate_rule_once(rule, db)
        for rule in choice_rules:
            memo = state.memos[id(rule)]
            for fact in db.facts(*rule.head.key):
                memo.absorb_head_fact(fact)
        self._branch_stage_clique(index, state, db)

    # -- stage cliques ------------------------------------------------------------------

    def _branch_stage_clique(
        self, index: int, state: StageCliqueState, db: Database
    ) -> None:
        if self._done():
            return
        self._tick()
        branches: List[Tuple[object, object]] = []
        for rule in state.exit_choice_rules:
            memo = state.memos[id(rule)]
            for subst in self.engine._eligible_choice_candidates(rule, memo, db):
                branches.append((rule, subst))
        for rule in state.next_rules:
            for subst in self.engine._next_candidates(rule, state, db):
                branches.append((rule, subst))
        if not branches:
            self._run_cliques(index + 1, db)
            return
        for rule, subst in branches:
            if self._done():
                return
            child_db = db.copy()
            child_state = state.clone()
            self._fire(rule, subst, child_state, child_db)
            self._branch_stage_clique(index, child_state, child_db)

    def _fire(self, rule, subst, state: StageCliqueState, db: Database) -> None:
        memo = state.memos[id(rule)]
        memo.commit(subst)
        fact = tuple(ground_term(arg, subst) for arg in rule.head.args)
        db.relation(rule.head.pred, rule.head.arity).add(fact)
        if rule in state.next_rules:
            state.w_memos[id(rule)].add(
                self.engine._w_tuple(rule, fact, state)
            )
            state.stage += 1
        else:
            pos = state.report.stage_positions.get(rule.head.key)
            if pos is not None and isinstance(fact[pos], int):
                state.stage = max(state.stage, fact[pos])
        state.absorb({rule.head.key: [fact]})
        produced = self.engine._quiesce(state, db, seeds={rule.head.key: [fact]})
        state.absorb(produced)
