"""Model-theoretic machinery: stable models, choice-model enumeration and
the well-founded semantics.

This subpackage is the validation layer of the reproduction: the engines
in :mod:`repro.core` *compute* one choice model; the functions here
*verify* (Gelfond–Lifschitz) and *enumerate* them, mechanising Theorem 1
("every set of facts produced by the Choice Fixpoint is a stable model")
and the completeness statements of Lemmas 1–2 on concrete programs.
"""

from repro.semantics.choice_models import enumerate_choice_models
from repro.semantics.optimize import model_objective, optimal_choice_models
from repro.semantics.stable import (
    complete_model,
    is_stable_model,
    least_model,
    verify_engine_output,
)
from repro.semantics.wellfounded import well_founded_model

__all__ = [
    "complete_model",
    "enumerate_choice_models",
    "model_objective",
    "optimal_choice_models",
    "is_stable_model",
    "least_model",
    "verify_engine_output",
    "well_founded_model",
]
