"""Well-founded semantics via the alternating fixpoint.

The paper contrasts choice programs with the well-founded semantics of
[Van Gelder–Ross–Schlipf]: a choice program typically has *no total*
well-founded model — the mutual negation between ``chosen`` and
``diffChoice`` leaves those atoms undefined — which is precisely why
stable models (several of them) are the right semantics for ``choice``.
This module implements the classical alternating fixpoint so the test
suite can exhibit that contrast:

* ``K`` (true facts) — least model with negation evaluated against the
  current overestimate;
* ``U`` (possible facts) — least model with negation evaluated against
  the current underestimate;

iterated from ``U0`` = "all negations succeed" until both stabilise.
Facts in ``U - K`` are *undefined*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.datalog.program import Program
from repro.semantics.stable import least_model
from repro.storage.database import Database

__all__ = ["WellFoundedModel", "well_founded_model"]

PredicateKey = Tuple[str, int]


@dataclass
class WellFoundedModel:
    """Result of the alternating fixpoint.

    Attributes:
        true: the well-founded true facts (including the extensional ones).
        possible: the overestimate; facts in ``possible`` but not ``true``
            are undefined.
    """

    true: Database
    possible: Database

    @property
    def is_total(self) -> bool:
        """Whether no fact is undefined (two-valued well-founded model)."""
        return self.true == self.possible

    def undefined_facts(self) -> Dict[PredicateKey, FrozenSet]:
        """The undefined facts, keyed by predicate."""
        result: Dict[PredicateKey, FrozenSet] = {}
        for key in self.possible.predicates():
            true_facts = frozenset(self.true.facts(*key))
            possible_facts = frozenset(self.possible.facts(*key))
            undefined = possible_facts - true_facts
            if undefined:
                result[key] = undefined
        return result


def well_founded_model(program: Program, edb: Database) -> WellFoundedModel:
    """Compute the well-founded model of a meta-goal-free program.

    The program may use negation arbitrarily (no stratification needed);
    extrema/choice/next must have been rewritten away first
    (:func:`repro.core.rewriting.rewrite_program`).
    """
    empty = Database()
    over = least_model(program, edb, neg_db=empty)
    while True:
        under = least_model(program, edb, neg_db=over)
        new_over = least_model(program, edb, neg_db=under)
        if new_over == over:
            return WellFoundedModel(true=under, possible=over)
        over = new_over
