"""Stable-model checking via the Gelfond–Lifschitz transform.

Given a candidate model ``M`` of a (rewritten) negative program ``P``,
the GL transform deletes every rule whose negative goals are falsified by
``M`` and strips the surviving negative goals; ``M`` is *stable* iff it
is the least model of the resulting positive program.

Operationally we never ground the program: the least model of the reduct
is computed by a fixpoint where positive goals read from the growing set
``T`` and negative goals (and negated conjunctions) are evaluated against
the fixed candidate ``M`` — the ``neg_db`` mode of
:meth:`repro.datalog.plans.PlanCache.consequences`.  ``T`` converges to
the least model of the reduct; stability is ``T == M``.

:func:`verify_engine_output` packages the full Theorem 1 check: rewrite
the original program (next → choice → extrema), complete the engine's
output with the ``chosen$i``/``diffChoice$i`` predicates, and run the GL
test.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core.rewriting import (
    CHOSEN_PREFIX,
    DIFFCHOICE_PREFIX,
    rewrite_program,
)
from repro.datalog.plans import PlanCache
from repro.datalog.program import Program
from repro.storage.database import Database

__all__ = ["least_model", "is_stable_model", "complete_model", "verify_engine_output"]

PredicateKey = Tuple[str, int]


def least_model(program: Program, edb: Database, neg_db: Database | None = None) -> Database:
    """Least fixpoint of *program* over *edb*, with negated goals read
    from *neg_db* (the GL-reduct evaluation when *neg_db* is the candidate
    model).

    *edb* is copied; the input is not mutated.
    """
    db = edb.copy()
    for name, facts in program.ground_facts().items():
        db.assert_all(name, facts)
    rules = program.proper_rules()
    plans = PlanCache()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            relation = db.relation(rule.head.pred, rule.head.arity)
            for fact in list(plans.consequences(rule, db, neg_db=neg_db)):
                if relation.add(fact):
                    changed = True
    return db


def is_stable_model(program: Program, model: Database) -> bool:
    """Whether *model* is a stable model of the meta-goal-free *program*.

    The extensional part of *model* (predicates never defined by a rule or
    fact of *program*) is taken as given; everything else must be exactly
    reproduced by the least model of the GL reduct.

    The reduct of a *wrong* candidate can be infinite (``next``-expanded
    programs increment stages forever once the memoized blocks are gone),
    so the fixpoint aborts as soon as it derives a fact outside *model* —
    at that point instability is already decided.
    """
    defined: Set[PredicateKey] = {rule.head.key for rule in program.rules}
    db = Database()
    for key in model.predicates():
        if key not in defined:
            rel = db.relation(*key)
            for fact in model.facts(*key):
                rel.add(fact)
    for name, facts in program.ground_facts().items():
        for fact in facts:
            if fact not in model.relation(name, len(fact)):
                return False
        db.assert_all(name, facts)
    rules = program.proper_rules()
    plans = PlanCache()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            relation = db.relation(rule.head.pred, rule.head.arity)
            model_relation = model.relation(rule.head.pred, rule.head.arity)
            for fact in list(plans.consequences(rule, db, neg_db=model)):
                if fact not in model_relation:
                    return False
                if relation.add(fact):
                    changed = True
    return db == model


def complete_model(program: Program, db: Database) -> Tuple[Program, Database]:
    """Rewrite *program* and complete the engine output *db* with the
    auxiliary ``chosen$i`` / ``diffChoice$i`` facts.

    The rewriting includes the predicate-wide-FD completion rules
    ``chosen$i(V) <- head``, so every chosen fact is recoverable from the
    head facts the engine materialised; the ``diffChoice$i`` facts then
    follow from the chosen ones by their (positive-bodied) defining rules.

    Returns:
        ``(rewritten_program, completed_model)`` — the input database is
        not mutated.
    """
    rewritten = rewrite_program(program)
    model = db.copy()
    # Stratified completion: first the positive chosen$i <- head completion
    # rules (every chosen fact of an engine run fired the top rule, so it
    # is recoverable from the heads), then the positive diffChoice$i rules.
    # The guarded "chosen$i <- body, not diffChoice$i" rules are *not* used
    # here — they are what the GL check exercises.
    chosen_completions = [
        rule
        for rule in rewritten.proper_rules()
        if rule.head.pred.startswith(CHOSEN_PREFIX) and not rule.negative
    ]
    diff_rules = [
        rule
        for rule in rewritten.proper_rules()
        if rule.head.pred.startswith(DIFFCHOICE_PREFIX)
    ]
    plans = PlanCache()
    for group in (chosen_completions, diff_rules):
        changed = True
        while changed:
            changed = False
            for rule in group:
                relation = model.relation(rule.head.pred, rule.head.arity)
                for fact in list(plans.consequences(rule, model, neg_db=model)):
                    if relation.add(fact):
                        changed = True
    return rewritten, model


def verify_engine_output(program: Program, db: Database) -> bool:
    """The mechanised Theorem 1 check: is the engine's output a stable
    model of the rewritten program?

    Example::

        db = solve_program(PRIM, facts=..., seed=0)
        assert verify_engine_output(parse_program(PRIM), db)
    """
    rewritten, model = complete_model(program, db)
    return is_stable_model(rewritten, model)
